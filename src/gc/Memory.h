//===- gc/Memory.h - Regions, memories, and memory types -------*- C++ -*-===//
///
/// \file
/// The allocation-semantics state (§6, Fig 2 bottom):
///
///   R ::= {ℓ1 ↦ v1, ..., ℓn ↦ vn}                 regions
///   M ::= {cd ↦ Rcd, ν1 ↦ R1, ..., νn ↦ Rn}       memories
///   Υ ::= {ℓ1 : σ1, ..., ℓn : σn}                  region types
///   Ψ ::= {cd : Υcd, ν1 : Υ1, ..., νn : Υn}        memory types
///
/// Ψ is the typing witness for M; the machine maintains it incrementally
/// (see Machine.cpp) so the dynamic soundness harness can re-establish
/// ⊢ (M, e) after every step. Regions carry a soft capacity that drives
/// `ifgc ρ e1 e2` ("if ρ is full"): allocation beyond capacity is allowed
/// (the collector itself must be able to allocate), but `ifgc` reports full.
///
/// Two heap layouts share this interface (DESIGN.md §3.12):
///
///  * Compact (default): every cell is additionally encoded as a 64-bit
///    tagged word (HeapWord.h) in a flat per-region buffer, with region
///    names resolved through a dense region-id table instead of hashing the
///    symbol. Collectors and the VM write words directly; `Cells` entries
///    are then decoded lazily (and cached) the first time a consumer needs
///    the `const Value *` view. The invariant is Cells.size() ==
///    Words.size(), with `Cells[i]` authoritative when non-null and
///    `Words[i]` authoritative when Cells[i] is null (word 0 = no value).
///  * Legacy (`-DSCAV_HEAP_LEGACY=ON`, or SCAV_HEAP_LAYOUT=legacy): the
///    original pointer-per-cell representation, kept as the differential
///    oracle. Words/Aux/Boxed stay empty.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_MEMORY_H
#define SCAV_GC_MEMORY_H

#include "gc/HeapWord.h"
#include "gc/Term.h"

#include <cassert>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

namespace scav::gc {

class GcContext;

/// Which cell representation a Memory uses. Pipelines that differential-test
/// the two run one Machine per layout over the same program.
enum class HeapLayout { Compact, Legacy };

/// Process default: Compact unless built with -DSCAV_HEAP_LEGACY=ON; the
/// SCAV_HEAP_LAYOUT environment variable ("compact"/"legacy") overrides
/// either build default. Sampled once.
HeapLayout defaultHeapLayout();

/// A region R: a dense bump-allocated cell array (offset = index). Regions
/// are only ever freed wholesale (`only`), never cell by cell, so a vector
/// models the paper's region arenas faithfully — including O(1) bulk free.
struct RegionData {
  std::vector<const Value *> Cells;
  /// Compact layout: the tagged-word image of each cell, parallel to Cells
  /// (Words.size() == Cells.size() always). Empty under Legacy.
  std::vector<uint64_t> Words;
  /// Compact layout: child words of Pair/InlAux/InrAux cells.
  std::vector<uint64_t> Aux;
  /// Compact layout: side table for pointer-rich cells (Box words).
  std::vector<const Value *> Boxed;
  /// Compact layout: this region's dense id (index into Memory::ById).
  uint32_t Id = 0;
  /// Compact layout: conservative (never under-counting) number of cells
  /// whose Words entry is set but whose Cells entry has not been decoded
  /// yet. Zero means every cell is visible through Cells, so decodeRegion
  /// is O(1) — consumers that need the pointer view (checkers, fuzzers)
  /// call it unconditionally.
  uint32_t Undecoded = 0;
  /// Soft capacity in cells; 0 means unlimited (never "full").
  uint32_t Capacity = 0;
  /// Total cells ever allocated here.
  uint64_t TotalAllocated = 0;
  /// The machine's only-epoch at creation time; the heap-growth policy
  /// resizes only regions born in the current collection cycle (the
  /// to-spaces), so long-lived regions keep their trigger capacity.
  uint64_t Epoch = 0;
  /// Mutation stamp, bumped by every put/fill/update. A consumer that
  /// remembers the stamp can skip an untouched region in O(1).
  uint64_t Version = 0;
  /// Offsets overwritten in place (fill/update), in order. Fresh cells are
  /// not logged — consumers detect them from Cells.size() growth. The log
  /// is cleared by its consumer (the incremental checker's capture step);
  /// in unchecked runs it is bounded by DirtyLogCap: on overflow the log is
  /// dropped and DirtyOverflow set, which consumers must treat as
  /// "every established offset may be dirty" (full-region resync).
  std::vector<uint32_t> DirtyLog;
  bool DirtyOverflow = false;

  /// Cap on DirtyLog entries before falling back to the overflow flag.
  /// Collectors `fill` every copied cell, so checked collection windows can
  /// legitimately log thousands of offsets; 64Ki keeps those exact while
  /// bounding unchecked runs to 256KiB of log per region.
  static constexpr size_t DirtyLogCap = 1u << 16;

  void logDirty(uint32_t Off) {
    if (DirtyOverflow)
      return;
    if (DirtyLog.size() >= DirtyLogCap) {
      DirtyLog.clear();
      DirtyLog.shrink_to_fit();
      DirtyOverflow = true;
      return;
    }
    DirtyLog.push_back(Off);
  }

  /// Consumer-side drain: forget everything logged so far.
  void clearDirty() {
    DirtyLog.clear();
    DirtyOverflow = false;
  }
};

/// A region type Υ (dense, parallel to RegionData).
struct RegionType {
  std::vector<const Type *> Cells;
  /// Mutation stamp / in-place overwrite log, exactly as in RegionData.
  /// In normal operation Ψ cells are only ever *extended* (recordPut at
  /// fresh offsets) or rewritten wholesale (widen/only, which the machine
  /// journals as region events), so the log stays nearly empty: the only
  /// machine-originated entries are out-of-order defineCode filling a
  /// reserved null pad in cd. Every other entry is external Ψ surgery —
  /// which is precisely what the incremental checker needs to hear about,
  /// and `set` logs *every* write at an established offset (null pad or
  /// not) so no Version bump below Cells.size() can bypass the log.
  /// Capped like RegionData's (overflow ⇒ consumers resync the region).
  uint64_t Version = 0;
  std::vector<uint32_t> DirtyLog;
  bool DirtyOverflow = false;

  void logDirty(uint32_t Off) {
    if (DirtyOverflow)
      return;
    if (DirtyLog.size() >= RegionData::DirtyLogCap) {
      DirtyLog.clear();
      DirtyLog.shrink_to_fit();
      DirtyOverflow = true;
      return;
    }
    DirtyLog.push_back(Off);
  }

  void clearDirty() {
    DirtyLog.clear();
    DirtyOverflow = false;
  }
};

/// A memory type Ψ.
class MemoryType {
public:
  /// Single-lookup access to Υ = Ψ(ν), or nullptr if ν ∉ Dom(Ψ). Callers
  /// that used to pair hasRegion() with find() go through this instead.
  RegionType *region(Symbol S) {
    auto It = Regions.find(S);
    return It == Regions.end() ? nullptr : &It->second;
  }
  const RegionType *region(Symbol S) const {
    auto It = Regions.find(S);
    return It == Regions.end() ? nullptr : &It->second;
  }

  /// \returns the cell type Ψ(ν.ℓ), or nullptr if absent.
  const Type *lookup(Address A) const {
    const RegionType *R = region(A.R.sym());
    if (!R)
      return nullptr;
    const auto &Cs = R->Cells;
    return A.Offset < Cs.size() ? Cs[A.Offset] : nullptr;
  }

  void set(Address A, const Type *T) {
    RegionType &R = Regions[A.R.sym()];
    auto &Cs = R.Cells;
    if (A.Offset >= Cs.size())
      // size_t arithmetic: Offset + 1 must not wrap when Offset is the
      // largest representable uint32_t.
      Cs.resize(size_t(A.Offset) + 1, nullptr);
    else
      // In-place write at an existing offset — log it even when the slot
      // was a null pad, so every Version bump below Cells.size() is
      // visible in DirtyLog (fresh entries are found from Cells.size()
      // growth instead).
      R.logDirty(A.Offset);
    Cs[A.Offset] = T;
    ++R.Version;
  }

  bool hasRegion(Symbol S) const { return Regions.find(S) != Regions.end(); }
  void addRegion(Symbol S) { Regions.try_emplace(S); }
  void removeRegion(Symbol S) { Regions.erase(S); }

  /// Dom(Ψ) as a RegionSet of region names.
  RegionSet domain() const {
    RegionSet Out;
    for (const auto &[S, _] : Regions)
      Out.insert(Region::name(S));
    return Out;
  }

  /// Keyed by region-name symbol. An unordered map: Ψ's region set is
  /// iterated only to build sorted RegionSets (domain()) or for
  /// order-insensitive bulk updates (widen, only, state checking), never in
  /// a way whose *order* is semantically relevant — O(1) lookup matters on
  /// the per-put hot path.
  std::unordered_map<Symbol, RegionType, SymbolHash> Regions;
};

/// A memory M. Always contains cd.
class Memory {
public:
  /// \p Ctx decodes compact words back into Values; passing nullptr (the
  /// mirror subject and standalone unit tests do) forces Legacy regardless
  /// of \p Layout, since a word heap without a context cannot be read back.
  explicit Memory(Symbol CdSym, HeapLayout Layout = HeapLayout::Legacy,
                  GcContext *Ctx = nullptr)
      : Ctx(Ctx), Layout(Ctx ? Layout : HeapLayout::Legacy), CdSym(CdSym) {
    addRegion(CdSym, 0);
  }

  // Decoded-cell caches hold interior pointers (ById, and the collectors
  // keep RegionData references across a whole copy) — a Memory never moves
  // or duplicates.
  Memory(const Memory &) = delete;
  Memory &operator=(const Memory &) = delete;

  HeapLayout layout() const { return Layout; }
  bool compact() const { return Layout == HeapLayout::Compact; }

  /// Allocates a fresh region named \p S with the given soft capacity.
  void addRegion(Symbol S, uint32_t Capacity) {
    RegionData &R = Regions[S];
    R.Capacity = Capacity;
    if (compact()) {
      R.Id = ensureRegionId(S);
      ById[R.Id] = &R;
    }
  }

  bool hasRegion(Symbol S) const { return regionImpl(S) != nullptr; }

  RegionData *region(Symbol S) {
    return const_cast<RegionData *>(regionImpl(S));
  }
  const RegionData *region(Symbol S) const { return regionImpl(S); }

  /// Stores \p V at a fresh offset in region \p S; returns the address.
  /// Fails (nullopt) if the region does not exist or its offset space is
  /// exhausted: offsets are uint32_t, and silently wrapping past 2³² cells
  /// would alias live cells. The machine turns the failure into a stuck
  /// state rather than corrupting memory. A null \p V reserves the slot
  /// but still counts it as allocated (the Cheney copier's reserve step).
  std::optional<Address> put(Symbol S, const Value *V) {
    RegionData *R = region(S);
    if (!R)
      return std::nullopt;
    if (R->Cells.size() >= std::numeric_limits<uint32_t>::max())
      return std::nullopt;
    uint32_t Off = static_cast<uint32_t>(R->Cells.size());
    if (compact())
      // Encode before push_back: encodeValue may grow Aux/Boxed but never
      // Words. Eager store keeps machine-written cells always decoded.
      R->Words.push_back(V ? encodeValue(*R, V) : heapword::Hole);
    R->Cells.push_back(V);
    ++R->TotalAllocated;
    ++R->Version;
    if (S != CdSym)
      ++LiveData;
    return Address{Region::name(S), Off};
  }

  /// Compact fast path: appends an already-encoded word to \p R (which must
  /// be \p S's RegionData). The Cells entry stays null until decoded.
  std::optional<Address> putWord(RegionData &R, Symbol S, uint64_t W) {
    assert(compact() && "putWord is compact-only");
    if (R.Cells.size() >= std::numeric_limits<uint32_t>::max())
      return std::nullopt;
    uint32_t Off = static_cast<uint32_t>(R.Cells.size());
    R.Words.push_back(W);
    R.Cells.push_back(nullptr);
    if (W != heapword::Hole)
      ++R.Undecoded;
    ++R.TotalAllocated;
    ++R.Version;
    if (S != CdSym)
      ++LiveData;
    return Address{Region::name(S), Off};
  }

  /// Reserves an uncounted slot (reserveCode's two-phase cd init): extends
  /// the region by one null cell and stamps Version, without touching
  /// TotalAllocated/liveDataCells. \returns the new offset.
  uint32_t reserveSlot(Symbol S) {
    RegionData *R = region(S);
    assert(R && "reserveSlot into a missing region");
    assert(R->Cells.size() < std::numeric_limits<uint32_t>::max());
    uint32_t Off = static_cast<uint32_t>(R->Cells.size());
    if (compact())
      R->Words.push_back(heapword::Hole);
    R->Cells.push_back(nullptr);
    ++R->Version;
    return Off;
  }

  /// Bulk-appends \p Vs at fresh offsets in region \p S (one Version bump).
  /// The parallel collector's serial epilogue installs each worker's copied
  /// cells this way; like put, fresh cells are not dirty-logged — consumers
  /// see them from Cells.size() growth.
  bool appendCells(Symbol S, const std::vector<const Value *> &Vs) {
    RegionData *R = region(S);
    if (!R)
      return false;
    if (R->Cells.size() + Vs.size() >= std::numeric_limits<uint32_t>::max())
      return false;
    if (compact())
      for (const Value *V : Vs)
        R->Words.push_back(V ? encodeValue(*R, V) : heapword::Hole);
    R->Cells.insert(R->Cells.end(), Vs.begin(), Vs.end());
    R->TotalAllocated += Vs.size();
    ++R->Version;
    if (S != CdSym)
      LiveData += Vs.size();
    return true;
  }

  /// Compact bulk append of already-encoded words (the parallel compact
  /// copy's epilogue; word aux/box indices must already be rebased into
  /// \p R's tables). One Version bump, fresh cells not dirty-logged.
  bool appendWords(RegionData &R, Symbol S, const std::vector<uint64_t> &Ws) {
    assert(compact() && "appendWords is compact-only");
    if (R.Cells.size() + Ws.size() >= std::numeric_limits<uint32_t>::max())
      return false;
    R.Words.insert(R.Words.end(), Ws.begin(), Ws.end());
    R.Cells.resize(R.Words.size(), nullptr);
    R.Undecoded += static_cast<uint32_t>(Ws.size());
    R.TotalAllocated += Ws.size();
    ++R.Version;
    if (S != CdSym)
      LiveData += Ws.size();
    return true;
  }

  /// \returns the value stored at \p A, or nullptr. Compact cells written
  /// as raw words are decoded (and the decode cached) on first read.
  const Value *get(Address A) const {
    const RegionData *R = regionImpl(A.R.sym());
    if (!R || A.Offset >= R->Cells.size())
      return nullptr;
    const Value *V = R->Cells[A.Offset];
    if (V || Layout == HeapLayout::Legacy)
      return V;
    return R->Words[A.Offset] == heapword::Hole ? nullptr
                                                : decodeCell(*R, A.Offset);
  }

  /// Fills a reserved (nullptr) slot; used by the Cheney copier and
  /// defineCode-style two-phase initialization.
  bool fill(Address A, const Value *V) {
    RegionData *R = region(A.R.sym());
    if (!R || A.Offset >= R->Cells.size())
      return false;
    if (compact())
      R->Words[A.Offset] = V ? encodeValue(*R, V) : heapword::Hole;
    R->Cells[A.Offset] = V;
    ++R->Version;
    R->logDirty(A.Offset);
    return true;
  }

  /// Compact Cheney fast path: fill with an already-encoded word. Same
  /// stamps as fill (Version + dirty log); the decode is left lazy.
  bool fillWord(RegionData &R, Address A, uint64_t W) {
    assert(compact() && "fillWord is compact-only");
    if (A.Offset >= R.Words.size())
      return false;
    R.Words[A.Offset] = W;
    if (R.Cells[A.Offset])
      R.Cells[A.Offset] = nullptr;
    if (W != heapword::Hole)
      ++R.Undecoded;
    ++R.Version;
    R.logDirty(A.Offset);
    return true;
  }

  /// Overwrites the cell at \p A (used by `set`); returns false if absent.
  bool update(Address A, const Value *V) {
    RegionData *R = region(A.R.sym());
    if (!R || A.Offset >= R->Cells.size())
      return false;
    if (!R->Cells[A.Offset] &&
        (Layout == HeapLayout::Legacy ||
         R->Words[A.Offset] == heapword::Hole))
      return false;
    if (compact())
      R->Words[A.Offset] = encodeValue(*R, V);
    R->Cells[A.Offset] = V;
    ++R->Version;
    R->logDirty(A.Offset);
    return true;
  }

  /// Compact `set` fast path: overwrite an established cell with an
  /// already-encoded word (the VM skips materializing the source value).
  bool updateWord(RegionData &R, Address A, uint64_t W) {
    assert(compact() && "updateWord is compact-only");
    if (A.Offset >= R.Words.size())
      return false;
    if (!R.Cells[A.Offset] && R.Words[A.Offset] == heapword::Hole)
      return false;
    R.Words[A.Offset] = W;
    R.Cells[A.Offset] = nullptr;
    ++R.Undecoded;
    ++R.Version;
    R.logDirty(A.Offset);
    return true;
  }

  /// `only ∆`: drops every region not in \p Keep (cd always survives).
  /// \returns the number of regions reclaimed.
  size_t restrictTo(const RegionSet &Keep) {
    size_t Reclaimed = 0;
    for (auto It = Regions.begin(); It != Regions.end();) {
      if (It->first == CdSym || Keep.contains(Region::name(It->first))) {
        ++It;
        continue;
      }
      LiveData -= It->second.Cells.size();
      if (compact())
        ById[It->second.Id] = nullptr;
      It = Regions.erase(It);
      ++Reclaimed;
    }
    return Reclaimed;
  }

  /// "ρ is full" for ifgc: at least Capacity cells live (0 = never full).
  bool isFull(Symbol S) const {
    const RegionData *R = regionImpl(S);
    if (!R || R->Capacity == 0)
      return false;
    return R->Cells.size() >= R->Capacity;
  }

  /// Encodes \p V as a tagged word targeting region \p R (children land in
  /// R's Aux/Boxed tables). Total: shapes that don't fit inline are boxed.
  uint64_t encodeValue(RegionData &R, const Value *V);

  /// Decodes one word of \p R back into a Value (allocating in Ctx).
  const Value *decodeWord(const RegionData &R, uint64_t W) const;

  /// Decodes and caches Cells[Off]; \p Off must hold a non-Hole word.
  /// Const but caching (mutator-thread only): decode never stamps Version
  /// or the dirty log — it changes the representation, not the state.
  const Value *decodeCell(const RegionData &R, uint32_t Off) const;

  /// Makes every cell of \p R visible through Cells. O(1) when nothing is
  /// undecoded (eager machine writes keep it so outside collections).
  void decodeRegion(const RegionData &R) const;

  /// decodeRegion over every region — consumers that walk Cells directly
  /// (checkers, fuzz victim enumeration) call this first. Must run before
  /// any GcContext::Scope those consumers open: decoded values are cached
  /// in Cells and must not be allocated under a scope that rolls back.
  void decodeAll() const {
    if (Layout == HeapLayout::Legacy)
      return;
    for (const auto &[S, R] : Regions)
      decodeRegion(R);
  }

  /// Compact layout: live RegionData for a dense region id, or nullptr if
  /// the id is unassigned or its region was reclaimed. The VM's word frame
  /// slots and Addr words resolve their region this way — one vector index
  /// instead of a symbol hash.
  RegionData *regionById(uint32_t Id) {
    return Id < ById.size() ? ById[Id] : nullptr;
  }
  const RegionData *regionById(uint32_t Id) const {
    return Id < ById.size() ? ById[Id] : nullptr;
  }

  /// Re-targets an encoded word from \p Src into \p Dst without decoding:
  /// region-independent payloads (Int, Addr, InlAddr, InrAddr) copy
  /// verbatim, Pair/InlAux/InrAux subtrees are copied into Dst's Aux table,
  /// Box payloads are re-boxed. Within one region the word is returned
  /// unchanged — aux entries are immutable once written, so two cells
  /// sharing a subtree is sound.
  uint64_t transcodeWord(const RegionData &Src, uint64_t W, RegionData &Dst);

  /// Dense region-id for \p S, assigning one if needed. Ids persist across
  /// the region's death (IdToSym is append-only), so stale words still
  /// name the right symbol; re-adding a name reuses its id.
  uint32_t ensureRegionId(Symbol S) {
    uint32_t Sid = S.id();
    if (Sid >= SymToId.size())
      SymToId.resize(size_t(Sid) + 1, InvalidId);
    uint32_t Id = SymToId[Sid];
    if (Id == InvalidId) {
      Id = static_cast<uint32_t>(IdToSym.size());
      IdToSym.push_back(S);
      ById.push_back(nullptr);
      SymToId[Sid] = Id;
    }
    return Id;
  }

  /// Symbol for a dense region id (total for ids handed out here).
  Symbol regionIdSymbol(uint32_t Id) const { return IdToSym[Id]; }

  Symbol cdSym() const { return CdSym; }

  size_t numRegions() const { return Regions.size(); }

  /// Live cells across all regions except cd. O(1): a running counter
  /// maintained by put/appendCells/restrictTo (the only paths that grow or
  /// drop data-region cells) — it is read from the per-step trace counter
  /// track, where an O(regions) sum was measurable.
  size_t liveDataCells() const { return LiveData; }

  /// Keyed by region-name symbol. Unordered on purpose (see MemoryType):
  /// iteration sites (restrictTo, liveDataCells, heap growth, the native
  /// collector's keep-set, state checking) are all order-insensitive, and
  /// `only`'s scan plus the per-put region lookup are hot (E5). The map
  /// stays the owner even under Compact — its node-stable addresses are
  /// what ById points at; compact lookups just bypass the hashing.
  std::unordered_map<Symbol, RegionData, SymbolHash> Regions;

private:
  static constexpr uint32_t InvalidId =
      std::numeric_limits<uint32_t>::max();

  /// Layout-dispatched lookup: dense table under Compact, hash under
  /// Legacy. ById entries are nulled by restrictTo, so a hit is live.
  const RegionData *regionImpl(Symbol S) const {
    if (Layout == HeapLayout::Compact) {
      uint32_t Sid = S.id();
      if (Sid >= SymToId.size())
        return nullptr;
      uint32_t Id = SymToId[Sid];
      return Id == InvalidId ? nullptr : ById[Id];
    }
    auto It = Regions.find(S);
    return It == Regions.end() ? nullptr : &It->second;
  }

  uint64_t boxValue(RegionData &R, const Value *V);

  GcContext *Ctx;
  HeapLayout Layout;
  Symbol CdSym;
  /// Running liveDataCells() counter (cells in non-cd regions).
  size_t LiveData = 0;
  /// Compact: Symbol::id() → dense region id (InvalidId = none yet).
  std::vector<uint32_t> SymToId;
  /// Compact: dense region id → symbol. Append-only.
  std::vector<Symbol> IdToSym;
  /// Compact: dense region id → live RegionData (null once dropped).
  std::vector<RegionData *> ById;
};

} // namespace scav::gc

#endif // SCAV_GC_MEMORY_H
