//===- gc/StateCheck.h - Machine-state well-formedness ---------*- C++ -*-===//
///
/// \file
/// Re-establishes the paper's well-formed machine state judgment on live
/// machine states:
///
///   Def 6.3 (λGC, λGC-gen):    ⊢ M : Ψ   Ψ; Dom(Ψ); ·; ·; · ⊢ e
///   Def 7.1 (λGC-forw):        M̄ ⊆ M    ⊢ M̄ : Ψ    Ψ; Dom(Ψ); ... ⊢ e
///
/// This is the executable form of the soundness theorems: the harness calls
/// checkState after every machine step (type preservation, Props 6.4 / 7.2
/// / 8.1) and asserts that an accepted non-halt state can step (progress,
/// Props 6.5 / 7.3 / 8.2).
///
/// For λGC-forw the restriction M̄ is computed as the set of cells reachable
/// from the current term (plus all of cd), exactly the "sufficient subset"
/// Def 7.1 asks for: after `widen`, dead mutator objects may not match the
/// collector-view Ψ, and the paper's own proof discards them.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_STATECHECK_H
#define SCAV_GC_STATECHECK_H

#include "gc/Machine.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scav::gc {

/// Unordered address set: reachability and the Def 7.1 restriction are pure
/// membership problems, so hashing beats the ordered std::set it replaced;
/// callers that need a deterministic order sort explicitly.
using AddressSet = std::unordered_set<Address, AddressHash>;

struct StateCheckOptions {
  /// Re-check every code body in cd. Expensive; the harness does it once
  /// per program (cd is immutable) and then disables it.
  bool CheckCodeRegion = true;
  /// Use the Def 7.1 reachable restriction M̄ ⊆ M instead of checking every
  /// cell. Required for λGC-forw states between `widen` and `only`.
  bool RestrictToReachable = false;
};

struct StateCheckResult {
  bool Ok = true;
  std::string Error;

  static StateCheckResult failure(std::string Msg) {
    return StateCheckResult{false, std::move(Msg)};
  }
};

/// Collects every address literal in a term / value. Shared subtrees are
/// visited once per call (values and terms alias heavily under the
/// sharing-preserving collectors and the interned-substitution machine).
void collectAddresses(const Term *E, AddressSet &Out);
void collectAddresses(const Value *V, AddressSet &Out);

/// The set of cells reachable from the current term through memory.
/// The buffer-taking forms are the hot-path variants: \p Out is cleared and
/// refilled (its hash-table capacity survives) and \p Work is the caller's
/// reusable worklist buffer — per-step checking would otherwise pay a fresh
/// AddressSet allocation per call. The (term, memory) form is the
/// primitive; the Machine forms wrap the machine's current closed term.
void reachableCells(const Term *E, const Memory &Mem, AddressSet &Out,
                    std::vector<Address> &Work);
void reachableCells(const Machine &M, AddressSet &Out,
                    std::vector<Address> &Work);
AddressSet reachableCells(const Machine &M);

/// Checks ⊢ (M, e) for the machine's current state.
StateCheckResult checkState(Machine &M, const StateCheckOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Check subjects
//===----------------------------------------------------------------------===//

/// What the incremental checker actually needs from the thing it checks: a
/// typed state (memory + Ψ + current term) plus the delta journal / dirty
/// log contract. The live Machine satisfies it directly (MachineSubject);
/// the async pipeline satisfies it with a checker-thread-owned *mirror*
/// rebuilt from capture deltas (AsyncCheck.h), which is what lets
/// IncrementalStateCheck run off-thread without ever touching live machine
/// state.
class CheckSubject {
public:
  virtual ~CheckSubject() = default;

  /// Context check transients are allocated in (and whose symbol table
  /// names regions). For a mirror this is an *observer* context sharing
  /// the machine's SymbolTable but nothing else.
  virtual GcContext &context() = 0;
  virtual LanguageLevel level() const = 0;

  /// Mutable access: the checker is the consumer of the per-region dirty
  /// logs (it clears them as it reads them).
  virtual Memory &memory() = 0;
  virtual const Memory &memory() const = 0;
  virtual MemoryType &psi() = 0;
  virtual const MemoryType &psi() const = 0;

  /// The closed current term, or null when there is none (halted). May
  /// allocate in context() (environment forcing).
  virtual const Term *currentTerm() const = 0;

  virtual bool typeTrackingOk() const = 0;
  virtual std::string typeTrackingError() const = 0;

  // Delta journal (same contract as Machine's: absolute indices, single
  // consumer, consumer trims).
  virtual void enableDeltaJournal() = 0;
  virtual uint64_t journalEnd() const = 0;
  virtual const DeltaEvent &journalEvent(uint64_t AbsIdx) const = 0;
  virtual void trimJournal(uint64_t UpToAbs) = 0;
};

/// The trivial subject: a live Machine, checked synchronously on the
/// mutator thread.
class MachineSubject final : public CheckSubject {
public:
  explicit MachineSubject(Machine &M) : M(M) {}

  GcContext &context() override { return M.context(); }
  LanguageLevel level() const override { return M.level(); }
  Memory &memory() override { return M.memory(); }
  const Memory &memory() const override { return M.memory(); }
  MemoryType &psi() override { return M.psi(); }
  const MemoryType &psi() const override { return M.psi(); }
  const Term *currentTerm() const override { return M.currentTerm(); }
  bool typeTrackingOk() const override { return M.typeTrackingOk(); }
  std::string typeTrackingError() const override {
    return M.typeTrackingError();
  }
  void enableDeltaJournal() override { M.enableDeltaJournal(); }
  uint64_t journalEnd() const override { return M.journalEnd(); }
  const DeltaEvent &journalEvent(uint64_t AbsIdx) const override {
    return M.journalEvent(AbsIdx);
  }
  void trimJournal(uint64_t UpToAbs) override { M.trimJournal(UpToAbs); }

private:
  Machine &M;
};

/// Checks ⊢ (M, e) for an arbitrary subject — a live machine (the Machine
/// overload wraps it in a MachineSubject and calls this), or a loaded
/// post-mortem snapshot (gc/Snapshot.h). Same body, same deterministic
/// diagnostics: given equal subject state and equal context fresh-name
/// bookkeeping, the verdict text is byte-identical.
StateCheckResult checkState(CheckSubject &S, const StateCheckOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Incremental checking
//===----------------------------------------------------------------------===//

struct IncrementalCheckOptions {
  /// Check cd code bodies once, at attach (the first check()). Later cd
  /// writes (defineCode) are re-checked with the same setting.
  bool CheckCodeRegion = true;
  /// Def 7.1's reachable restriction M̄ ⊆ M (λGC-forw): unreachable
  /// non-cd cells are allowed to be ill-typed.
  bool RestrictToReachable = false;
  /// Safety net: every N check() calls, drop every cached fact and
  /// re-validate the whole state from scratch (also refreshes the exact
  /// reachable set). 0 = never; the journal/dirty-log contract is then the
  /// only line of defense against out-of-band mutation that forgot to call
  /// Machine::invalidatePutTypeCache.
  uint32_t ResyncEvery = 0;
};

struct IncrementalCheckStats {
  uint64_t Checks = 0;
  /// Cell judgments actually (re)run, cumulative. The headline: with a warm
  /// cache this is O(cells written since the last check), not O(heap).
  uint64_t CellsValidated = 0;
  /// Judgments served from the shared (value, type) success memo.
  uint64_t CellJudgmentCacheHits = 0;
  uint64_t JournalEventsConsumed = 0;
  /// Whole-region invalidations (widen / only / external Ψ writes).
  uint64_t RegionInvalidations = 0;
  /// Cached judgments poisoned because a region they depend on was
  /// widened or dropped.
  uint64_t DependentInvalidations = 0;
  /// Exact reachability recomputations (lazy: only when a failing or
  /// known-bad cell might be reachable).
  uint64_t ReachExactRecomputes = 0;
  uint64_t FullResyncs = 0;
  size_t CachedFacts = 0; ///< Live per-cell facts after the last check.

  /// Publishes every counter under "checker.*" in the shared registry
  /// (schema in DESIGN.md §3.9).
  void exportTo(support::MetricsRegistry &Reg) const {
    Reg.setCounter("checker.checks", Checks);
    Reg.setCounter("checker.cells_validated", CellsValidated);
    Reg.setCounter("checker.judgment_cache_hits", CellJudgmentCacheHits);
    Reg.setCounter("checker.journal_events", JournalEventsConsumed);
    Reg.setCounter("checker.region_invalidations", RegionInvalidations);
    Reg.setCounter("checker.dependent_invalidations", DependentInvalidations);
    Reg.setCounter("checker.reach_exact_recomputes", ReachExactRecomputes);
    Reg.setCounter("checker.full_resyncs", FullResyncs);
    Reg.setGauge("checker.cached_facts", static_cast<double>(CachedFacts));
  }
};

/// Incremental ⊢ (M, e): caches per-cell judgments Ψ ⊢ M(a) : Ψ(a) and
/// re-validates only state dirtied since the last check() — cells written
/// by put/set/fill (per-region dirty logs, Memory.h), regions touched by
/// widen/only/external mutation (the machine's delta journal), plus the
/// term judgment at the new redex. The full checkState stays the oracle:
/// verdicts must agree on every state both can see.
///
/// Invalidation rules (DESIGN.md §3.7):
///  * a cell write dirties exactly that cell — address typing reads Ψ, not
///    memory, so other cached judgments are unaffected;
///  * `widen` poisons the from-region's facts and every fact whose
///    judgment depends on that region (per-region dependents index);
///  * `only` erases dropped regions' facts and poisons their dependents —
///    a surviving reachable cell that still mentions a dropped address must
///    re-fail exactly as the full checker fails it;
///  * Ψ/Δ growth (put, let region) never invalidates a cached success
///    (weakening), which is what makes the steady state O(delta).
///
/// Under RestrictToReachable, reachability is maintained conservatively: a
/// superset of the truly-reachable cells, grown from each validated write's
/// embedded addresses (closed through memory) and shrunk only by exact
/// recomputation. The superset is never used to accept a cell the full
/// checker would reject — it only *skips* failures that are definitely
/// unreachable; a failure inside the superset triggers an exact
/// recomputation which decides, and cells that failed while unreachable
/// are remembered (KnownBad) and re-tried if the superset ever grows to
/// include them.
///
/// One instance per subject: attaching enables the subject's delta journal
/// and the checker consumes (and trims) the per-region dirty logs. Wherever
/// multiple violations could be reported, iteration is explicitly ordered
/// by (region symbol id, offset), so the verdict — and its exact text — is
/// a function of the subject state alone, not of hash-map iteration order.
/// That is what lets the async checker (running this engine over a mirror)
/// promise byte-identical diagnostics to a synchronous run.
class IncrementalStateCheck {
public:
  explicit IncrementalStateCheck(Machine &M,
                                 IncrementalCheckOptions Opts = {});
  /// Checks an arbitrary subject (not owned; must outlive the checker).
  explicit IncrementalStateCheck(CheckSubject &S,
                                 IncrementalCheckOptions Opts = {});

  /// Re-establishes ⊢ (M, e). The first call is a full check that builds
  /// the caches; steady-state calls are O(delta + term).
  StateCheckResult check();

  /// Drops every cached fact; the next check() re-validates from scratch.
  void invalidateAll() { NeedResync = true; }

  const IncrementalCheckStats &stats() const { return Stats; }

private:
  struct RegionCursor {
    uint64_t MemVersion = 0;
    uint64_t PsiVersion = 0;
    size_t MemCells = 0; ///< Cells already seen (size-growth cursor).
  };
  struct CellFact {
    const Value *V;
    const Type *T;
  };

  StateCheckResult runCheck();
  StateCheckResult resync();
  StateCheckResult drainJournal();
  void collectDirty();
  StateCheckResult validateDirty();
  /// One cell; returns false (filling \p Err) only when the whole check
  /// must fail — a tolerated Def 7.1 failure lands in KnownBad instead.
  bool validateCell(Address A, std::string &Err);
  StateCheckResult checkRegionDomains();
  StateCheckResult checkTermJudgment();
  void recordDeps(Address A, const Value *V, const Type *T);
  void addToReachable(Address A, const Value *V);
  void recomputeExactReachable();
  void invalidateRegion(Symbol S, bool Dropped);
  void syncCursors();

  /// Set only by the legacy Machine& constructor; declared before M so the
  /// reference can bind to it.
  std::unique_ptr<MachineSubject> OwnedSubject;
  CheckSubject &M; ///< The subject under check (historically the machine).
  IncrementalCheckOptions Opts;
  IncrementalCheckStats Stats;
  Symbol CdS;

  DiagEngine Diags;
  TypeChecker Checker;
  CheckEnv Env;

  bool Attached = false;
  bool NeedResync = false;
  /// Whether cd code bodies are re-checked for cells validated right now:
  /// Opts.CheckCodeRegion at attach and for freshly defined code, false
  /// during periodic resyncs (matching the per-step oracle's settings).
  bool CheckCodeNow = false;
  /// ReachPlus is exactly the reachable set as of this check() call — set
  /// by recomputeExactReachable, avoids back-to-back recomputations.
  bool ExactThisCheck = false;
  uint64_t JournalCursor = 0;
  /// Fresh-name counter for the "c" namespace every check() runs under
  /// (GcContext::FreshScope): checker-minted symbols are spelled
  /// `Base$c<n>` and can never collide with — or perturb the numbering of —
  /// the machine's own `Base$<n>` mints. Persisted across checks so the
  /// engine's own mints stay collision-free with themselves.
  uint64_t EngineFreshCtr = 0;

  std::unordered_map<Symbol, RegionCursor, SymbolHash> Cursors;
  /// Cached successful judgments, by address. Values/types are
  /// machine-owned (arena) pointers, so entries are plain data — safe to
  /// keep across the GcContext::Scope each check runs under.
  std::unordered_map<Address, CellFact, AddressHash> Facts;
  /// Region → addresses whose cached judgment consulted that region
  /// (through an embedded address, a region mention in the cell type, or
  /// an embedded annotation type). Append-only between invalidations;
  /// stale entries are filtered by re-validation.
  std::unordered_map<Symbol, std::vector<Address>, SymbolHash> Dependents;
  /// Shared (value, type) success memo across cells: distinct addresses
  /// holding the same hash-consed value/type pair (common under the
  /// sharing-preserving collectors) validate once.
  CellJudgmentCache JudgmentMemo;

  /// Conservative superset of the reachable cells (RestrictToReachable
  /// only). Exact right after attach/resync/recompute; grows from deltas.
  AddressSet ReachPlus;
  bool ReachGrew = false;
  /// Cells that failed their judgment while (conservatively) unreachable —
  /// Def 7.1 garbage, tolerated but watched.
  AddressSet KnownBad;

  // Scratch buffers (persist to amortize allocation — the satellite point
  // of the reachableCells overload).
  AddressSet DirtySet;
  AddressSet ReachScratch;
  std::vector<Address> WorkScratch;
};

} // namespace scav::gc

#endif // SCAV_GC_STATECHECK_H
