//===- gc/StateCheck.h - Machine-state well-formedness ---------*- C++ -*-===//
///
/// \file
/// Re-establishes the paper's well-formed machine state judgment on live
/// machine states:
///
///   Def 6.3 (λGC, λGC-gen):    ⊢ M : Ψ   Ψ; Dom(Ψ); ·; ·; · ⊢ e
///   Def 7.1 (λGC-forw):        M̄ ⊆ M    ⊢ M̄ : Ψ    Ψ; Dom(Ψ); ... ⊢ e
///
/// This is the executable form of the soundness theorems: the harness calls
/// checkState after every machine step (type preservation, Props 6.4 / 7.2
/// / 8.1) and asserts that an accepted non-halt state can step (progress,
/// Props 6.5 / 7.3 / 8.2).
///
/// For λGC-forw the restriction M̄ is computed as the set of cells reachable
/// from the current term (plus all of cd), exactly the "sufficient subset"
/// Def 7.1 asks for: after `widen`, dead mutator objects may not match the
/// collector-view Ψ, and the paper's own proof discards them.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_STATECHECK_H
#define SCAV_GC_STATECHECK_H

#include "gc/Machine.h"

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scav::gc {

/// Unordered address set: reachability and the Def 7.1 restriction are pure
/// membership problems, so hashing beats the ordered std::set it replaced;
/// callers that need a deterministic order sort explicitly.
using AddressSet = std::unordered_set<Address, AddressHash>;

struct StateCheckOptions {
  /// Re-check every code body in cd. Expensive; the harness does it once
  /// per program (cd is immutable) and then disables it.
  bool CheckCodeRegion = true;
  /// Use the Def 7.1 reachable restriction M̄ ⊆ M instead of checking every
  /// cell. Required for λGC-forw states between `widen` and `only`.
  bool RestrictToReachable = false;
};

struct StateCheckResult {
  bool Ok = true;
  std::string Error;

  static StateCheckResult failure(std::string Msg) {
    return StateCheckResult{false, std::move(Msg)};
  }
};

/// Collects every address literal in a term / value. Shared subtrees are
/// visited once per call (values and terms alias heavily under the
/// sharing-preserving collectors and the interned-substitution machine).
void collectAddresses(const Term *E, AddressSet &Out);
void collectAddresses(const Value *V, AddressSet &Out);

/// The set of cells reachable from the current term through memory.
/// The two-argument form is the hot-path variant: \p Out is cleared and
/// refilled (its hash-table capacity survives) and \p Work is the caller's
/// reusable worklist buffer — per-step checking would otherwise pay a fresh
/// AddressSet allocation per call.
void reachableCells(const Machine &M, AddressSet &Out,
                    std::vector<Address> &Work);
AddressSet reachableCells(const Machine &M);

/// Checks ⊢ (M, e) for the machine's current state.
StateCheckResult checkState(Machine &M, const StateCheckOptions &Opts = {});

//===----------------------------------------------------------------------===//
// Incremental checking
//===----------------------------------------------------------------------===//

struct IncrementalCheckOptions {
  /// Check cd code bodies once, at attach (the first check()). Later cd
  /// writes (defineCode) are re-checked with the same setting.
  bool CheckCodeRegion = true;
  /// Def 7.1's reachable restriction M̄ ⊆ M (λGC-forw): unreachable
  /// non-cd cells are allowed to be ill-typed.
  bool RestrictToReachable = false;
  /// Safety net: every N check() calls, drop every cached fact and
  /// re-validate the whole state from scratch (also refreshes the exact
  /// reachable set). 0 = never; the journal/dirty-log contract is then the
  /// only line of defense against out-of-band mutation that forgot to call
  /// Machine::invalidatePutTypeCache.
  uint32_t ResyncEvery = 0;
};

struct IncrementalCheckStats {
  uint64_t Checks = 0;
  /// Cell judgments actually (re)run, cumulative. The headline: with a warm
  /// cache this is O(cells written since the last check), not O(heap).
  uint64_t CellsValidated = 0;
  /// Judgments served from the shared (value, type) success memo.
  uint64_t CellJudgmentCacheHits = 0;
  uint64_t JournalEventsConsumed = 0;
  /// Whole-region invalidations (widen / only / external Ψ writes).
  uint64_t RegionInvalidations = 0;
  /// Cached judgments poisoned because a region they depend on was
  /// widened or dropped.
  uint64_t DependentInvalidations = 0;
  /// Exact reachability recomputations (lazy: only when a failing or
  /// known-bad cell might be reachable).
  uint64_t ReachExactRecomputes = 0;
  uint64_t FullResyncs = 0;
  size_t CachedFacts = 0; ///< Live per-cell facts after the last check.

  /// Publishes every counter under "checker.*" in the shared registry
  /// (schema in DESIGN.md §3.9).
  void exportTo(support::MetricsRegistry &Reg) const {
    Reg.setCounter("checker.checks", Checks);
    Reg.setCounter("checker.cells_validated", CellsValidated);
    Reg.setCounter("checker.judgment_cache_hits", CellJudgmentCacheHits);
    Reg.setCounter("checker.journal_events", JournalEventsConsumed);
    Reg.setCounter("checker.region_invalidations", RegionInvalidations);
    Reg.setCounter("checker.dependent_invalidations", DependentInvalidations);
    Reg.setCounter("checker.reach_exact_recomputes", ReachExactRecomputes);
    Reg.setCounter("checker.full_resyncs", FullResyncs);
    Reg.setGauge("checker.cached_facts", static_cast<double>(CachedFacts));
  }
};

/// Incremental ⊢ (M, e): caches per-cell judgments Ψ ⊢ M(a) : Ψ(a) and
/// re-validates only state dirtied since the last check() — cells written
/// by put/set/fill (per-region dirty logs, Memory.h), regions touched by
/// widen/only/external mutation (the machine's delta journal), plus the
/// term judgment at the new redex. The full checkState stays the oracle:
/// verdicts must agree on every state both can see.
///
/// Invalidation rules (DESIGN.md §3.7):
///  * a cell write dirties exactly that cell — address typing reads Ψ, not
///    memory, so other cached judgments are unaffected;
///  * `widen` poisons the from-region's facts and every fact whose
///    judgment depends on that region (per-region dependents index);
///  * `only` erases dropped regions' facts and poisons their dependents —
///    a surviving reachable cell that still mentions a dropped address must
///    re-fail exactly as the full checker fails it;
///  * Ψ/Δ growth (put, let region) never invalidates a cached success
///    (weakening), which is what makes the steady state O(delta).
///
/// Under RestrictToReachable, reachability is maintained conservatively: a
/// superset of the truly-reachable cells, grown from each validated write's
/// embedded addresses (closed through memory) and shrunk only by exact
/// recomputation. The superset is never used to accept a cell the full
/// checker would reject — it only *skips* failures that are definitely
/// unreachable; a failure inside the superset triggers an exact
/// recomputation which decides, and cells that failed while unreachable
/// are remembered (KnownBad) and re-tried if the superset ever grows to
/// include them.
///
/// One instance per machine: attaching enables the machine's delta journal
/// and the checker consumes (and trims) the per-region dirty logs.
class IncrementalStateCheck {
public:
  explicit IncrementalStateCheck(Machine &M,
                                 IncrementalCheckOptions Opts = {});

  /// Re-establishes ⊢ (M, e). The first call is a full check that builds
  /// the caches; steady-state calls are O(delta + term).
  StateCheckResult check();

  /// Drops every cached fact; the next check() re-validates from scratch.
  void invalidateAll() { NeedResync = true; }

  const IncrementalCheckStats &stats() const { return Stats; }

private:
  struct RegionCursor {
    uint64_t MemVersion = 0;
    uint64_t PsiVersion = 0;
    size_t MemCells = 0; ///< Cells already seen (size-growth cursor).
  };
  struct CellFact {
    const Value *V;
    const Type *T;
  };

  StateCheckResult runCheck();
  StateCheckResult resync();
  StateCheckResult drainJournal();
  void collectDirty();
  StateCheckResult validateDirty();
  /// One cell; returns false (filling \p Err) only when the whole check
  /// must fail — a tolerated Def 7.1 failure lands in KnownBad instead.
  bool validateCell(Address A, std::string &Err);
  StateCheckResult checkRegionDomains();
  StateCheckResult checkTermJudgment();
  void recordDeps(Address A, const Value *V, const Type *T);
  void addToReachable(Address A, const Value *V);
  void recomputeExactReachable();
  void invalidateRegion(Symbol S, bool Dropped);
  void syncCursors();

  Machine &M;
  IncrementalCheckOptions Opts;
  IncrementalCheckStats Stats;
  Symbol CdS;

  DiagEngine Diags;
  TypeChecker Checker;
  CheckEnv Env;

  bool Attached = false;
  bool NeedResync = false;
  /// Whether cd code bodies are re-checked for cells validated right now:
  /// Opts.CheckCodeRegion at attach and for freshly defined code, false
  /// during periodic resyncs (matching the per-step oracle's settings).
  bool CheckCodeNow = false;
  /// ReachPlus is exactly the reachable set as of this check() call — set
  /// by recomputeExactReachable, avoids back-to-back recomputations.
  bool ExactThisCheck = false;
  uint64_t JournalCursor = 0;

  std::unordered_map<Symbol, RegionCursor, SymbolHash> Cursors;
  /// Cached successful judgments, by address. Values/types are
  /// machine-owned (arena) pointers, so entries are plain data — safe to
  /// keep across the GcContext::Scope each check runs under.
  std::unordered_map<Address, CellFact, AddressHash> Facts;
  /// Region → addresses whose cached judgment consulted that region
  /// (through an embedded address, a region mention in the cell type, or
  /// an embedded annotation type). Append-only between invalidations;
  /// stale entries are filtered by re-validation.
  std::unordered_map<Symbol, std::vector<Address>, SymbolHash> Dependents;
  /// Shared (value, type) success memo across cells: distinct addresses
  /// holding the same hash-consed value/type pair (common under the
  /// sharing-preserving collectors) validate once.
  CellJudgmentCache JudgmentMemo;

  /// Conservative superset of the reachable cells (RestrictToReachable
  /// only). Exact right after attach/resync/recompute; grows from deltas.
  AddressSet ReachPlus;
  bool ReachGrew = false;
  /// Cells that failed their judgment while (conservatively) unreachable —
  /// Def 7.1 garbage, tolerated but watched.
  AddressSet KnownBad;

  // Scratch buffers (persist to amortize allocation — the satellite point
  // of the reachableCells overload).
  AddressSet DirtySet;
  AddressSet ReachScratch;
  std::vector<Address> WorkScratch;
};

} // namespace scav::gc

#endif // SCAV_GC_STATECHECK_H
