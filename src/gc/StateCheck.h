//===- gc/StateCheck.h - Machine-state well-formedness ---------*- C++ -*-===//
///
/// \file
/// Re-establishes the paper's well-formed machine state judgment on live
/// machine states:
///
///   Def 6.3 (λGC, λGC-gen):    ⊢ M : Ψ   Ψ; Dom(Ψ); ·; ·; · ⊢ e
///   Def 7.1 (λGC-forw):        M̄ ⊆ M    ⊢ M̄ : Ψ    Ψ; Dom(Ψ); ... ⊢ e
///
/// This is the executable form of the soundness theorems: the harness calls
/// checkState after every machine step (type preservation, Props 6.4 / 7.2
/// / 8.1) and asserts that an accepted non-halt state can step (progress,
/// Props 6.5 / 7.3 / 8.2).
///
/// For λGC-forw the restriction M̄ is computed as the set of cells reachable
/// from the current term (plus all of cd), exactly the "sufficient subset"
/// Def 7.1 asks for: after `widen`, dead mutator objects may not match the
/// collector-view Ψ, and the paper's own proof discards them.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_STATECHECK_H
#define SCAV_GC_STATECHECK_H

#include "gc/Machine.h"

#include <string>
#include <unordered_set>

namespace scav::gc {

/// Unordered address set: reachability and the Def 7.1 restriction are pure
/// membership problems, so hashing beats the ordered std::set it replaced;
/// callers that need a deterministic order sort explicitly.
using AddressSet = std::unordered_set<Address, AddressHash>;

struct StateCheckOptions {
  /// Re-check every code body in cd. Expensive; the harness does it once
  /// per program (cd is immutable) and then disables it.
  bool CheckCodeRegion = true;
  /// Use the Def 7.1 reachable restriction M̄ ⊆ M instead of checking every
  /// cell. Required for λGC-forw states between `widen` and `only`.
  bool RestrictToReachable = false;
};

struct StateCheckResult {
  bool Ok = true;
  std::string Error;

  static StateCheckResult failure(std::string Msg) {
    return StateCheckResult{false, std::move(Msg)};
  }
};

/// Collects every address literal in a term / value. Shared subtrees are
/// visited once per call (values and terms alias heavily under the
/// sharing-preserving collectors and the interned-substitution machine).
void collectAddresses(const Term *E, AddressSet &Out);
void collectAddresses(const Value *V, AddressSet &Out);

/// The set of cells reachable from the current term through memory.
AddressSet reachableCells(const Machine &M);

/// Checks ⊢ (M, e) for the machine's current state.
StateCheckResult checkState(Machine &M, const StateCheckOptions &Opts = {});

} // namespace scav::gc

#endif // SCAV_GC_STATECHECK_H
