//===- gc/CollectorGen.h - Certified generational collector (§8) --*- C++-*-=//
///
/// \file
/// The λGC-gen minor collector of Fig 11 in CPS/closure-converted form.
/// The generational M operator M_{ρy,ρo}(τ) wraps every heap object in a
/// region existential ∃r∈{ρy,ρo}, so the mutator need not know which
/// generation an object lives in, while the type {r,ρo} bound enforces that
/// old objects never point into the young generation. The collector copies
/// the young generation into the old one, using `ifreg` to stop tracing at
/// old-generation references (which it simply re-packs at the tighter
/// bound ∃r∈{ρo}).
///
/// Code blocks: gc, gcend, copy, copypair1, copypair2, copyexist1 — the
/// continuation discipline of Fig 12, with a temporary continuation region
/// r3 (freed by gcend's `only {ro}` along with the young generation).
///
/// The old generation itself is collected by the non-generational collector
/// (§8: "that one is the same as the non-generational one"); like the
/// paper, we do not wire the two together.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_COLLECTORGEN_H
#define SCAV_GC_COLLECTORGEN_H

#include "gc/Machine.h"

namespace scav::gc {

struct GenCollectorLib {
  Address Gc;
  Address GcEnd;
  Address Copy;
  Address CopyPair1;
  Address CopyPair2;
  Address CopyExist1;
};

/// Builds the generational collector and installs it in \p M's cd region.
/// \p M must be at LanguageLevel::Generational.
GenCollectorLib installGenCollector(Machine &M);

/// The *major* collector the paper only gestures at (§8: "another function
/// needs to be written to garbage collect the old generation, but that one
/// is the same as the non-generational one"): copies BOTH generations into
/// a fresh region rn (no ifreg test — everything moves), frees ry/ro/r3,
/// allocates a fresh young generation, and re-enters the mutator with
/// (ry', rn). Written at the Generational level so it composes with the
/// minor collector in one mutator:
///
///   ifgc ro (gcFull[τ][ry,ro](f,x)) (ifgc ry (gc[τ][ry,ro](f,x)) e)
GenCollectorLib installGenFullCollector(Machine &M);

} // namespace scav::gc

#endif // SCAV_GC_COLLECTORGEN_H
