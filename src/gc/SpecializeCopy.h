//===- gc/SpecializeCopy.h - Wang–Appel monomorphization baseline -*-C++-*-=//
///
/// \file
/// A code-size model of the approach our paper argues *against* (§2.1):
/// Wang–Appel's earlier collectors avoided runtime type analysis by
/// generating a specialized copy function for every type in the program
/// (monomorphization + defunctionalization), which requires whole-program
/// analysis and duplicates collector code per type.
///
/// Given the set of heap types a program allocates (tags, with the witness
/// instantiations of each existential — information only a whole-program
/// analysis has), this module generates the per-type copy functions as
/// real λGC terms and reports their count and total AST size, to compare
/// with the single certified ITA library collector (experiment E7).
///
/// The generated functions use a simplified direct-style calling
/// convention: they model the *structure* (per-type dispatch, per-component
/// recursion, per-witness existential clones) that drives the size blowup;
/// they are not certified or executed.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_SPECIALIZECOPY_H
#define SCAV_GC_SPECIALIZECOPY_H

#include "gc/Machine.h"

#include <vector>

namespace scav::gc {

struct SpecializeStats {
  /// Number of generated monomorphic functions.
  size_t NumFunctions = 0;
  /// Sum of termSize over all generated function bodies.
  size_t TotalTermSize = 0;
  /// Number of distinct tags that needed a specialization.
  size_t NumTypes = 0;
};

/// One existential type together with the witness tags a whole-program
/// analysis found for it.
struct ExistsInstantiations {
  const Tag *Exists; ///< ∃t.τ
  std::vector<const Tag *> Witnesses;
};

/// Generates the monomorphized copy family for every type reachable from
/// \p RootTags (existential bodies explored through \p Insts).
SpecializeStats
specializeCopyFamily(GcContext &C, const std::vector<const Tag *> &RootTags,
                     const std::vector<ExistsInstantiations> &Insts);

/// The size of the certified ITA library collector (the six Fig 12 code
/// blocks) for comparison, measured the same way.
size_t libraryCollectorSize(LanguageLevel Level);

} // namespace scav::gc

#endif // SCAV_GC_SPECIALIZECOPY_H
