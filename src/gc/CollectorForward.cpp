//===- gc/CollectorForward.cpp - Certified forwarding collector (§7) ------===//
///
/// \file
/// See CollectorForward.h. The figure-9 collector is direct-style; this is
/// its CPS/closure-converted form, following the Fig 12 continuation
/// discipline. The continuation environments carry, in addition to Fig 12's
/// state, the original from-space address so copypair2/copyexist1 can
/// overwrite it with `inr z` once the copy exists.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorForward.h"

#include "gc/ContClosure.h"

using namespace scav;
using namespace scav::gc;

namespace {

ContLayout fwdLayout(Region R1, Region R2, Region R3) {
  ContLayout L;
  L.Regions = {R1, R2, R3};
  L.To = R2;
  L.Holder = R3;
  return L;
}

} // namespace

ForwardCollectorLib scav::gc::installForwardCollector(Machine &M) {
  assert(M.level() == LanguageLevel::Forward &&
         "forwarding collector requires lambda-GC-forw");
  GcContext &C = M.context();

  ForwardCollectorLib Lib;
  Lib.Gc = M.reserveCode("gcF");
  Lib.GcEnd = M.reserveCode("gcendF");
  Lib.Copy = M.reserveCode("copyF");
  Lib.CopyPair1 = M.reserveCode("copypair1F");
  Lib.CopyPair2 = M.reserveCode("copypair2F");
  Lib.CopyExist1 = M.reserveCode("copyexist1F");

  const Tag *IdFun = C.tagIdFun();

  auto TkOf = [&](const Tag *S, Region R1, Region R2, Region R3) {
    return contType(C, fwdLayout(R1, R2, R3), S);
  };
  auto Apply = [&](const Value *K, const Value *V, Region R1, Region R2,
                   Region R3) {
    return applyCont(C, fwdLayout(R1, R2, R3), K, V);
  };
  auto Pack = [&](const Tag *S, const Tag *W1, const Tag *W2, const Tag *We,
                  const Type *EnvTy, const Value *Code, const Value *Env,
                  Region R1, Region R2, Region R3) {
    return packCont(C, fwdLayout(R1, R2, R3), S, W1, W2, We, EnvTy, Code,
                    Env);
  };
  auto MArrow = [&](Region R, const Tag *Arg) {
    return C.typeM(R, C.tagArrow({Arg}));
  };

  //--------------------------------------------------------------------//
  // copy[t:Ω][r1,r2,r3](x : C_{r1,r2}(t), k : tk[t])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Value *X = CB.valParam("x", C.typeC(R1, R2, T));
    const Value *K = CB.valParam("k", TkOf(T, R1, R2, R3));

    // Int and λ arms: C(t) = M_{r2}(t) already.
    const Term *IntArm = Apply(K, X, R1, R2, R3);
    const Term *ArrowArm = Apply(K, X, R1, R2, R3);

    // t1 × t2 arm.
    Symbol TP1 = C.fresh("t1"), TP2 = C.fresh("t2");
    const Term *ProdArm;
    {
      const Tag *T1 = C.tagVar(TP1), *T2 = C.tagVar(TP2);
      const Tag *ProdTag = C.tagProd(T1, T2);
      BlockBuilder B(C);
      const Value *Y = B.get(X);
      // Not yet copied: recurse on the first component; the environment
      // keeps (rest-of-pair, (original address, k)).
      Symbol W = C.fresh("w");
      const Term *ThenArm;
      {
        BlockBuilder TB(C);
        const Value *P = TB.strip(C.valVar(W));
        const Value *Rest = TB.proj2(P);
        const Value *Env = C.valPair(Rest, C.valPair(X, K));
        const Type *EnvTy = C.typeProd(
            C.typeC(R1, R2, T2),
            C.typeProd(C.typeC(R1, R2, ProdTag),
                       TkOf(ProdTag, R1, R2, R3)));
        const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair1),
                                          {T1, T2, IdFun}, {R1, R2, R3});
        const Value *Pk =
            Pack(T1, T1, T2, IdFun, EnvTy, Code, Env, R1, R2, R3);
        const Value *K2 = TB.put(R3, Pk);
        const Value *First = TB.proj1(P);
        ThenArm = TB.finish(
            C.termApp(C.valAddr(Lib.Copy), {T1}, {R1, R2, R3}, {First, K2}));
      }
      // Forwarded: return the forwarding pointer.
      const Term *ElseArm;
      {
        BlockBuilder EB(C);
        const Value *Z = EB.strip(C.valVar(W));
        ElseArm = EB.finish(Apply(K, Z, R1, R2, R3));
      }
      ProdArm = B.finish(C.termIfLeft(W, Y, ThenArm, ElseArm));
    }

    // ∃ arm.
    Symbol TEv = C.fresh("te");
    const Term *ExistsArm;
    {
      const Tag *Te = C.tagVar(TEv);
      Symbol U = C.fresh("u");
      const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
      BlockBuilder B(C);
      const Value *Y = B.get(X);
      Symbol W = C.fresh("w");
      const Term *ThenArm;
      {
        BlockBuilder TB(C);
        const Value *P = TB.strip(C.valVar(W));
        auto [Tx, Payload] = TB.openTag(P, "tx", "y");
        const Tag *PayloadTag = C.tagApp(Te, Tx);
        const Value *Env = C.valPair(X, K);
        const Type *EnvTy = C.typeProd(C.typeC(R1, R2, ExTag),
                                       TkOf(ExTag, R1, R2, R3));
        const Value *Code = C.valTransApp(C.valAddr(Lib.CopyExist1),
                                          {Tx, C.tagInt(), Te}, {R1, R2, R3});
        const Value *Pk = Pack(PayloadTag, Tx, C.tagInt(), Te, EnvTy, Code,
                               Env, R1, R2, R3);
        const Value *K2 = TB.put(R3, Pk);
        ThenArm = TB.finish(C.termApp(C.valAddr(Lib.Copy), {PayloadTag},
                                      {R1, R2, R3}, {Payload, K2}));
      }
      const Term *ElseArm;
      {
        BlockBuilder EB(C);
        const Value *Z = EB.strip(C.valVar(W));
        ElseArm = EB.finish(Apply(K, Z, R1, R2, R3));
      }
      ExistsArm = B.finish(C.termIfLeft(W, Y, ThenArm, ElseArm));
    }

    const Term *Body = C.termTypecase(T, IntArm, ArrowArm, TP1, TP2, ProdArm,
                                      TEv, ExistsArm);
    M.defineCode(Lib.Copy, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair1[t1,t2,te][r1,r2,r3](x1 : M_{r2}(t1),
  //      c : C(t2) × (C(t1×t2) × tk[t1×t2]))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X1 = CB.valParam("x1", C.typeM(R2, T1));
    const Value *Cv = CB.valParam(
        "c", C.typeProd(C.typeC(R1, R2, T2),
                        C.typeProd(C.typeC(R1, R2, ProdTag),
                                   TkOf(ProdTag, R1, R2, R3))));

    BlockBuilder B(C);
    const Value *Rest = B.proj2(Cv);
    const Value *Env = C.valPair(X1, Rest);
    const Type *EnvTy = C.typeProd(
        C.typeM(R2, T1), C.typeProd(C.typeC(R1, R2, ProdTag),
                                    TkOf(ProdTag, R1, R2, R3)));
    const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair2),
                                      {T1, T2, IdFun}, {R1, R2, R3});
    const Value *Pk = Pack(T2, T1, T2, IdFun, EnvTy, Code, Env, R1, R2, R3);
    const Value *K2 = B.put(R3, Pk);
    const Value *Second = B.proj1(Cv);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T2}, {R1, R2, R3}, {Second, K2}));
    M.defineCode(Lib.CopyPair1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair2[t1,t2,te][r1,r2,r3](x2 : M_{r2}(t2),
  //      c : M_{r2}(t1) × (C(t1×t2) × tk[t1×t2]))
  // Allocate the copied pair, install the forwarding pointer, resume.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X2 = CB.valParam("x2", C.typeM(R2, T2));
    const Value *Cv = CB.valParam(
        "c", C.typeProd(C.typeM(R2, T1),
                        C.typeProd(C.typeC(R1, R2, ProdTag),
                                   TkOf(ProdTag, R1, R2, R3))));

    BlockBuilder B(C);
    const Value *X1 = B.proj1(Cv);
    const Value *Z = B.put(R2, C.valInl(C.valPair(X1, X2)));
    const Value *Rest = B.proj2(Cv);
    const Value *Orig = B.proj1(Rest);
    B.setCell(Orig, C.valInr(Z));
    const Value *K = B.proj2(Rest);
    const Term *Body = B.finish(Apply(K, Z, R1, R2, R3));
    M.defineCode(Lib.CopyPair2, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copyexist1[t1,t2,te][r1,r2,r3](z1 : M_{r2}(te t1),
  //      c : C(∃u.te u) × tk[∃u.te u])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    const Tag *Te = CB.tagParam("te", C.omegaToOmega());
    Region R1 = CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    Region R3 = CB.regionParam("r3");
    Symbol U = C.fresh("u");
    const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
    const Value *Z1 = CB.valParam("z1", C.typeM(R2, C.tagApp(Te, T1)));
    const Value *Cv = CB.valParam(
        "c", C.typeProd(C.typeC(R1, R2, ExTag), TkOf(ExTag, R1, R2, R3)));

    BlockBuilder B(C);
    Symbol V = C.fresh("v");
    const Value *Pk =
        C.valPackTag(V, T1, Z1, C.typeM(R2, C.tagApp(Te, C.tagVar(V))));
    const Value *Z = B.put(R2, C.valInl(Pk));
    const Value *Orig = B.proj1(Cv);
    B.setCell(Orig, C.valInr(Z));
    const Value *K = B.proj2(Cv);
    const Term *Body = B.finish(Apply(K, Z, R1, R2, R3));
    M.defineCode(Lib.CopyExist1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gcend[t1,t2,te][r1,r2,r3](y : M_{r2}(t1), f : M_{r2}(t1→0))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    (void)CB.regionParam("r1");
    Region R2 = CB.regionParam("r2");
    (void)CB.regionParam("r3");
    const Value *Y = CB.valParam("y", C.typeM(R2, T1));
    const Value *F = CB.valParam("f", MArrow(R2, T1));

    BlockBuilder B(C);
    B.only(RegionSet{R2});
    const Term *Body = B.finish(C.termApp(F, {}, {R2}, {Y}));
    M.defineCode(Lib.GcEnd, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gc[t:Ω][r1](f : M_{r1}(t→0), x : M_{r1}(t))
  // Bundle (f, x), widen the heap to the collector view, then copy.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region R1 = CB.regionParam("r1");
    const Value *F = CB.valParam("f", MArrow(R1, T));
    const Value *X = CB.valParam("x", C.typeM(R1, T));

    const Tag *BundleTag = C.tagProd(C.tagArrow({T}), T);

    BlockBuilder B(C);
    Region R2 = B.letRegion("r2");
    const Value *Bundle = B.put(R1, C.valInl(C.valPair(F, X)));
    const Value *W = B.widen(R2, BundleTag, Bundle);
    const Value *Y = B.get(W);
    Symbol U = C.fresh("u");
    const Term *ThenArm;
    {
      BlockBuilder TB(C);
      const Value *P = TB.strip(C.valVar(U));
      const Value *Fp = TB.proj1(P);
      const Value *Xp = TB.proj2(P);
      Region R3 = TB.letRegion("r3");
      const Type *EnvTy = MArrow(R2, T);
      const Value *Code = C.valTransApp(C.valAddr(Lib.GcEnd),
                                        {T, C.tagInt(), IdFun}, {R1, R2, R3});
      const Value *Pk =
          Pack(T, T, C.tagInt(), IdFun, EnvTy, Code, Fp, R1, R2, R3);
      const Value *K = TB.put(R3, Pk);
      ThenArm = TB.finish(
          C.termApp(C.valAddr(Lib.Copy), {T}, {R1, R2, R3}, {Xp, K}));
    }
    // The freshly-allocated bundle can never already be forwarded.
    const Term *ElseArm = C.termHalt(C.valInt(0));
    const Term *Body =
        B.finish(C.termIfLeft(U, Y, ThenArm, ElseArm));
    M.defineCode(Lib.Gc, CB.build(Body));
  }

  markCollectorPhases(M, Lib);
  return Lib;
}
