//===- gc/Print.cpp - Pretty-printers and size metrics ---------------------===//
///
/// \file
/// ASCII renderings of the λGC family syntax, close to the paper's notation
/// (M_r(t) prints as `M[r](t)`, ⟨t=τ, v:σ⟩ as `pack<t=τ, v:σ>`, etc.).
/// Also the node-count metrics used by the E6 type-growth ablation.
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"
#include "support/Printer.h"

using namespace scav;
using namespace scav::gc;

namespace {

void printTagRec(const GcContext &C, const Tag *T, Printer &P);
void printTypeRec(const GcContext &C, const Type *T, Printer &P);
void printValueRec(const GcContext &C, const Value *V, Printer &P);
void printTermRec(const GcContext &C, const Term *E, Printer &P);

void printRegionRec(const GcContext &C, Region R, Printer &P) {
  if (!R.isValid()) {
    P << "<?region>";
    return;
  }
  P << C.name(R.sym());
}

void printRegionSetRec(const GcContext &C, const RegionSet &RS, Printer &P) {
  P << '{';
  bool First = true;
  for (Region R : RS) {
    if (!First)
      P << ", ";
    First = false;
    printRegionRec(C, R, P);
  }
  P << '}';
}

void printKindRec(const Kind *K, Printer &P) {
  if (K->isOmega()) {
    P << 'O';
    return;
  }
  P << '(';
  printKindRec(K->from(), P);
  P << " -> ";
  printKindRec(K->to(), P);
  P << ')';
}

void printTagRec(const GcContext &C, const Tag *T, Printer &P) {
  switch (T->kind()) {
  case TagKind::Int:
    P << "Int";
    return;
  case TagKind::Var:
    P << C.name(T->var());
    return;
  case TagKind::Prod:
    P << '(';
    printTagRec(C, T->left(), P);
    P << " x ";
    printTagRec(C, T->right(), P);
    P << ')';
    return;
  case TagKind::Arrow: {
    P << '(';
    bool First = true;
    for (const Tag *A : T->arrowArgs()) {
      if (!First)
        P << ", ";
      First = false;
      printTagRec(C, A, P);
    }
    P << ") -> 0";
    return;
  }
  case TagKind::Exists:
    P << "E" << C.name(T->var()) << '.';
    printTagRec(C, T->body(), P);
    return;
  case TagKind::Lam:
    P << "\\" << C.name(T->var()) << '.';
    printTagRec(C, T->body(), P);
    return;
  case TagKind::App:
    P << '(';
    printTagRec(C, T->left(), P);
    P << ' ';
    printTagRec(C, T->right(), P);
    P << ')';
    return;
  }
}

void printTypeRec(const GcContext &C, const Type *T, Printer &P) {
  switch (T->kind()) {
  case TypeKind::Int:
    P << "int";
    return;
  case TypeKind::TyVar:
    P << C.name(T->var());
    return;
  case TypeKind::Prod:
    P << '(';
    printTypeRec(C, T->left(), P);
    P << " x ";
    printTypeRec(C, T->right(), P);
    P << ')';
    return;
  case TypeKind::Sum:
    P << '(';
    printTypeRec(C, T->left(), P);
    P << " + ";
    printTypeRec(C, T->right(), P);
    P << ')';
    return;
  case TypeKind::Left:
    P << "left(";
    printTypeRec(C, T->body(), P);
    P << ')';
    return;
  case TypeKind::Right:
    P << "right(";
    printTypeRec(C, T->body(), P);
    P << ')';
    return;
  case TypeKind::At:
    P << '(';
    printTypeRec(C, T->body(), P);
    P << " at ";
    printRegionRec(C, T->atRegion(), P);
    P << ')';
    return;
  case TypeKind::MApp: {
    P << "M[";
    bool First = true;
    for (Region R : T->mRegions()) {
      if (!First)
        P << ", ";
      First = false;
      printRegionRec(C, R, P);
    }
    P << "](";
    printTagRec(C, T->tag(), P);
    P << ')';
    return;
  }
  case TypeKind::CApp:
    P << "C[";
    printRegionRec(C, T->cFrom(), P);
    P << ", ";
    printRegionRec(C, T->cTo(), P);
    P << "](";
    printTagRec(C, T->tag(), P);
    P << ')';
    return;
  case TypeKind::ExistsTag:
    P << "E" << C.name(T->var()) << ':';
    printKindRec(T->binderKind(), P);
    P << '.';
    printTypeRec(C, T->body(), P);
    return;
  case TypeKind::ExistsTyVar:
    P << "E" << C.name(T->var()) << ':';
    printRegionSetRec(C, T->delta(), P);
    P << '.';
    printTypeRec(C, T->body(), P);
    return;
  case TypeKind::ExistsRegion:
    P << "Er " << C.name(T->var()) << " in ";
    printRegionSetRec(C, T->delta(), P);
    P << ".(";
    printTypeRec(C, T->body(), P);
    P << " at " << C.name(T->var()) << ')';
    return;
  case TypeKind::Code: {
    P << "A[";
    for (size_t I = 0, E = T->tagParams().size(); I != E; ++I) {
      if (I)
        P << ", ";
      P << C.name(T->tagParams()[I]) << ':';
      printKindRec(T->tagParamKinds()[I], P);
    }
    P << "][";
    for (size_t I = 0, E = T->regionParams().size(); I != E; ++I) {
      if (I)
        P << ", ";
      P << C.name(T->regionParams()[I]);
    }
    P << "](";
    for (size_t I = 0, E = T->argTypes().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printTypeRec(C, T->argTypes()[I], P);
    }
    P << ") -> 0";
    return;
  }
  case TypeKind::TransCode: {
    P << "A<|";
    for (size_t I = 0, E = T->transTags().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printTagRec(C, T->transTags()[I], P);
    }
    P << "|><|";
    for (size_t I = 0, E = T->transRegions().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printRegionRec(C, T->transRegions()[I], P);
    }
    P << "|>(";
    for (size_t I = 0, E = T->argTypes().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printTypeRec(C, T->argTypes()[I], P);
    }
    P << ") -{";
    printRegionRec(C, T->atRegion(), P);
    P << "}-> 0";
    return;
  }
  }
}

void printValueRec(const GcContext &C, const Value *V, Printer &P) {
  switch (V->kind()) {
  case ValueKind::Int:
    P << V->intValue();
    return;
  case ValueKind::Var:
    P << C.name(V->var());
    return;
  case ValueKind::Addr:
    printRegionRec(C, V->address().R, P);
    P << '.' << static_cast<int64_t>(V->address().Offset);
    return;
  case ValueKind::Pair:
    P << '(';
    printValueRec(C, V->first(), P);
    P << ", ";
    printValueRec(C, V->second(), P);
    P << ')';
    return;
  case ValueKind::Inl:
    P << "inl ";
    printValueRec(C, V->payload(), P);
    return;
  case ValueKind::Inr:
    P << "inr ";
    printValueRec(C, V->payload(), P);
    return;
  case ValueKind::PackTag:
    P << "pack<" << C.name(V->var()) << " = ";
    printTagRec(C, V->tagWitness(), P);
    P << ", ";
    printValueRec(C, V->payload(), P);
    P << " : ";
    printTypeRec(C, V->bodyType(), P);
    P << '>';
    return;
  case ValueKind::PackTyVar:
    P << "pack<" << C.name(V->var()) << " : ";
    printRegionSetRec(C, V->delta(), P);
    P << " = ";
    printTypeRec(C, V->typeWitness(), P);
    P << ", ";
    printValueRec(C, V->payload(), P);
    P << " : ";
    printTypeRec(C, V->bodyType(), P);
    P << '>';
    return;
  case ValueKind::PackRegion:
    P << "pack<" << C.name(V->var()) << " in ";
    printRegionSetRec(C, V->delta(), P);
    P << " = ";
    printRegionRec(C, V->regionWitness(), P);
    P << ", ";
    printValueRec(C, V->payload(), P);
    P << '>';
    return;
  case ValueKind::TransApp: {
    printValueRec(C, V->payload(), P);
    P << "<|";
    for (size_t I = 0, E = V->transTags().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printTagRec(C, V->transTags()[I], P);
    }
    P << "|><|";
    for (size_t I = 0, E = V->transRegions().size(); I != E; ++I) {
      if (I)
        P << ", ";
      printRegionRec(C, V->transRegions()[I], P);
    }
    P << "|>";
    return;
  }
  case ValueKind::Code: {
    P << "\\[";
    for (size_t I = 0, E = V->tagParams().size(); I != E; ++I) {
      if (I)
        P << ", ";
      P << C.name(V->tagParams()[I]) << ':';
      printKindRec(V->tagParamKinds()[I], P);
    }
    P << "][";
    for (size_t I = 0, E = V->regionParams().size(); I != E; ++I) {
      if (I)
        P << ", ";
      P << C.name(V->regionParams()[I]);
    }
    P << "](";
    for (size_t I = 0, E = V->valParams().size(); I != E; ++I) {
      if (I)
        P << ", ";
      P << C.name(V->valParams()[I]) << " : ";
      printTypeRec(C, V->valParamTypes()[I], P);
    }
    P << ").";
    P.newline();
    P.indent();
    printTermRec(C, V->codeBody(), P);
    P.dedent();
    return;
  }
  }
}

void printOpRec(const GcContext &C, const Op *O, Printer &P) {
  switch (O->kind()) {
  case OpKind::Val:
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Proj1:
    P << "pi1 ";
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Proj2:
    P << "pi2 ";
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Put:
    P << "put[";
    printRegionRec(C, O->putRegion(), P);
    P << "] ";
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Get:
    P << "get ";
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Strip:
    P << "strip ";
    printValueRec(C, O->value(), P);
    return;
  case OpKind::Prim:
    printValueRec(C, O->lhs(), P);
    P << ' ' << primOpName(O->primOp()) << ' ';
    printValueRec(C, O->rhs(), P);
    return;
  }
}

void printTermRec(const GcContext &C, const Term *E, Printer &P) {
  switch (E->kind()) {
  case TermKind::App: {
    printValueRec(C, E->appFun(), P);
    P << '[';
    for (size_t I = 0, N = E->appTags().size(); I != N; ++I) {
      if (I)
        P << ", ";
      printTagRec(C, E->appTags()[I], P);
    }
    P << "][";
    for (size_t I = 0, N = E->appRegions().size(); I != N; ++I) {
      if (I)
        P << ", ";
      printRegionRec(C, E->appRegions()[I], P);
    }
    P << "](";
    for (size_t I = 0, N = E->appArgs().size(); I != N; ++I) {
      if (I)
        P << ", ";
      printValueRec(C, E->appArgs()[I], P);
    }
    P << ')';
    return;
  }
  case TermKind::Let:
    P << "let " << C.name(E->binderVar()) << " = ";
    printOpRec(C, E->letOp(), P);
    P << " in";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::Halt:
    P << "halt ";
    printValueRec(C, E->scrutinee(), P);
    return;
  case TermKind::IfGc:
    P << "ifgc ";
    printRegionRec(C, E->region(), P);
    P.newline();
    P.indent();
    P << "then ";
    printTermRec(C, E->sub1(), P);
    P.newline();
    P << "else ";
    printTermRec(C, E->sub2(), P);
    P.dedent();
    return;
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
    P << "open ";
    printValueRec(C, E->scrutinee(), P);
    P << " as <" << C.name(E->binderVar()) << ", " << C.name(E->binderVar2())
      << "> in";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::LetRegion:
    P << "let region " << C.name(E->binderVar()) << " in";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::Only:
    P << "only ";
    printRegionSetRec(C, E->onlySet(), P);
    P << " in";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::Typecase:
    P << "typecase ";
    printTagRec(C, E->tag(), P);
    P << " of";
    P.newline();
    P.indent();
    P << "Int => ";
    printTermRec(C, E->caseInt(), P);
    P.newline();
    P << "Arrow => ";
    printTermRec(C, E->caseArrow(), P);
    P.newline();
    P << C.name(E->prodVar1()) << " x " << C.name(E->prodVar2()) << " => ";
    printTermRec(C, E->caseProd(), P);
    P.newline();
    P << "E " << C.name(E->existsVar()) << " => ";
    printTermRec(C, E->caseExists(), P);
    P.dedent();
    return;
  case TermKind::IfLeft:
    P << "ifleft " << C.name(E->binderVar()) << " = ";
    printValueRec(C, E->scrutinee(), P);
    P.newline();
    P.indent();
    P << "then ";
    printTermRec(C, E->sub1(), P);
    P.newline();
    P << "else ";
    printTermRec(C, E->sub2(), P);
    P.dedent();
    return;
  case TermKind::Set:
    P << "set ";
    printValueRec(C, E->scrutinee(), P);
    P << " := ";
    printValueRec(C, E->setSource(), P);
    P << " ;";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::LetWiden:
    P << "let " << C.name(E->binderVar()) << " = widen[";
    printRegionRec(C, E->region(), P);
    P << "][";
    printTagRec(C, E->tag(), P);
    P << "](";
    printValueRec(C, E->scrutinee(), P);
    P << ") in";
    P.newline();
    printTermRec(C, E->sub1(), P);
    return;
  case TermKind::IfReg:
    P << "ifreg (";
    printRegionRec(C, E->ifregLhs(), P);
    P << " = ";
    printRegionRec(C, E->ifregRhs(), P);
    P << ')';
    P.newline();
    P.indent();
    P << "then ";
    printTermRec(C, E->sub1(), P);
    P.newline();
    P << "else ";
    printTermRec(C, E->sub2(), P);
    P.dedent();
    return;
  case TermKind::If0:
    P << "if0 ";
    printValueRec(C, E->scrutinee(), P);
    P.newline();
    P.indent();
    P << "then ";
    printTermRec(C, E->sub1(), P);
    P.newline();
    P << "else ";
    printTermRec(C, E->sub2(), P);
    P.dedent();
    return;
  }
}

} // namespace

std::string scav::gc::printKind(const GcContext &C, const Kind *K) {
  Printer P;
  printKindRec(K, P);
  return P.take();
}

std::string scav::gc::printTag(const GcContext &C, const Tag *T) {
  Printer P;
  printTagRec(C, T, P);
  return P.take();
}

std::string scav::gc::printType(const GcContext &C, const Type *T) {
  Printer P;
  printTypeRec(C, T, P);
  return P.take();
}

std::string scav::gc::printRegion(const GcContext &C, Region R) {
  Printer P;
  printRegionRec(C, R, P);
  return P.take();
}

std::string scav::gc::printRegionSet(const GcContext &C, const RegionSet &RS) {
  Printer P;
  printRegionSetRec(C, RS, P);
  return P.take();
}

std::string scav::gc::printValue(const GcContext &C, const Value *V) {
  Printer P;
  printValueRec(C, V, P);
  return P.take();
}

std::string scav::gc::printTerm(const GcContext &C, const Term *E) {
  Printer P;
  printTermRec(C, E, P);
  return P.take();
}

//===----------------------------------------------------------------------===//
// Size metrics
//===----------------------------------------------------------------------===//

size_t scav::gc::tagSize(const Tag *T) {
  switch (T->kind()) {
  case TagKind::Int:
  case TagKind::Var:
    return 1;
  case TagKind::Prod:
  case TagKind::App:
    return 1 + tagSize(T->left()) + tagSize(T->right());
  case TagKind::Arrow: {
    size_t N = 1;
    for (const Tag *A : T->arrowArgs())
      N += tagSize(A);
    return N;
  }
  case TagKind::Exists:
  case TagKind::Lam:
    return 1 + tagSize(T->body());
  }
  return 1;
}

size_t scav::gc::typeSize(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Int:
  case TypeKind::TyVar:
    return 1;
  case TypeKind::Prod:
  case TypeKind::Sum:
    return 1 + typeSize(T->left()) + typeSize(T->right());
  case TypeKind::Left:
  case TypeKind::Right:
    return 1 + typeSize(T->body());
  case TypeKind::At:
  case TypeKind::ExistsTag:
  case TypeKind::ExistsTyVar:
  case TypeKind::ExistsRegion:
    return 1 + typeSize(T->body());
  case TypeKind::MApp:
  case TypeKind::CApp:
    return 1 + tagSize(T->tag());
  case TypeKind::Code:
  case TypeKind::TransCode: {
    size_t N = 1;
    for (const Type *A : T->argTypes())
      N += typeSize(A);
    if (T->is(TypeKind::TransCode))
      for (const Tag *A : T->transTags())
        N += tagSize(A);
    return N;
  }
  }
  return 1;
}

size_t scav::gc::valueSize(const Value *V) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Var:
  case ValueKind::Addr:
    return 1;
  case ValueKind::Pair:
    return 1 + valueSize(V->first()) + valueSize(V->second());
  case ValueKind::Inl:
  case ValueKind::Inr:
  case ValueKind::TransApp:
    return 1 + valueSize(V->payload());
  case ValueKind::PackTag:
    return 1 + tagSize(V->tagWitness()) + valueSize(V->payload()) +
           typeSize(V->bodyType());
  case ValueKind::PackTyVar:
    return 1 + typeSize(V->typeWitness()) + valueSize(V->payload()) +
           typeSize(V->bodyType());
  case ValueKind::PackRegion:
    return 1 + valueSize(V->payload()) + typeSize(V->bodyType());
  case ValueKind::Code: {
    size_t N = 1;
    for (const Type *T : V->valParamTypes())
      N += typeSize(T);
    return N + termSize(V->codeBody());
  }
  }
  return 1;
}

size_t scav::gc::termSize(const Term *E) {
  switch (E->kind()) {
  case TermKind::App: {
    size_t N = 1 + valueSize(E->appFun());
    for (const Tag *T : E->appTags())
      N += tagSize(T);
    for (const Value *V : E->appArgs())
      N += valueSize(V);
    return N;
  }
  case TermKind::Let: {
    const Op *O = E->letOp();
    size_t N = 1;
    if (O->is(OpKind::Prim))
      N += valueSize(O->lhs()) + valueSize(O->rhs());
    else
      N += valueSize(O->value());
    return N + termSize(E->sub1());
  }
  case TermKind::Halt:
    return 1 + valueSize(E->scrutinee());
  case TermKind::IfGc:
  case TermKind::IfReg:
    return 1 + termSize(E->sub1()) + termSize(E->sub2());
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
    return 1 + valueSize(E->scrutinee()) + termSize(E->sub1());
  case TermKind::LetRegion:
  case TermKind::Only:
    return 1 + termSize(E->sub1());
  case TermKind::Typecase:
    return 1 + tagSize(E->tag()) + termSize(E->caseInt()) +
           termSize(E->caseArrow()) + termSize(E->caseProd()) +
           termSize(E->caseExists());
  case TermKind::IfLeft:
    return 1 + valueSize(E->scrutinee()) + termSize(E->sub1()) +
           termSize(E->sub2());
  case TermKind::Set:
    return 1 + valueSize(E->scrutinee()) + valueSize(E->setSource()) +
           termSize(E->sub1());
  case TermKind::LetWiden:
    return 1 + tagSize(E->tag()) + valueSize(E->scrutinee()) +
           termSize(E->sub1());
  case TermKind::If0:
    return 1 + valueSize(E->scrutinee()) + termSize(E->sub1()) +
           termSize(E->sub2());
  }
  return 1;
}
