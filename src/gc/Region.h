//===- gc/Region.h - Regions ρ and region sets ∆ ---------------*- C++ -*-===//
///
/// \file
/// Regions ρ ::= ν | r (Fig 2). A region is either a *name* ν — a concrete
/// runtime region — or a *variable* r bound by `let region`, a code type, or
/// (in λGC-gen) a region existential. The distinguished code region `cd` is
/// a name. ∆ environments are ordered sets of regions (RegionSet).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_REGION_H
#define SCAV_GC_REGION_H

#include "support/Symbol.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace scav::gc {

using scav::Symbol;

/// A region: either a runtime region name ν or a region variable r.
class Region {
public:
  Region() = default;

  static Region var(Symbol S) { return Region(S, /*IsName=*/false); }
  static Region name(Symbol S) { return Region(S, /*IsName=*/true); }

  bool isValid() const { return Sym.isValid(); }
  bool isVar() const { return isValid() && !IsName; }
  bool isName() const { return isValid() && IsName; }
  Symbol sym() const { return Sym; }

  friend bool operator==(Region A, Region B) {
    return A.Sym == B.Sym && A.IsName == B.IsName;
  }
  friend bool operator!=(Region A, Region B) { return !(A == B); }
  friend bool operator<(Region A, Region B) {
    if (A.IsName != B.IsName)
      return A.IsName < B.IsName;
    return A.Sym < B.Sym;
  }

private:
  Region(Symbol S, bool IsName) : Sym(S), IsName(IsName) {}

  Symbol Sym;
  bool IsName = false;
};

/// An ordered set of regions; used for ∆ environments, the `only` keep-set,
/// and the bounds of region existentials. Deterministic iteration order.
class RegionSet {
public:
  RegionSet() = default;
  RegionSet(std::initializer_list<Region> Rs) {
    for (Region R : Rs)
      insert(R);
  }

  void insert(Region R) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), R);
    if (It == Elems.end() || *It != R)
      Elems.insert(It, R);
  }

  bool contains(Region R) const {
    return std::binary_search(Elems.begin(), Elems.end(), R);
  }

  /// \returns true if every element of this set is in \p Other.
  bool subsetOf(const RegionSet &Other) const {
    for (Region R : Elems)
      if (!Other.contains(R))
        return false;
    return true;
  }

  /// Substitutes region \p To for region \p From pointwise.
  RegionSet substituted(Region From, Region To) const {
    RegionSet Out;
    for (Region R : Elems)
      Out.insert(R == From ? To : R);
    return Out;
  }

  bool empty() const { return Elems.empty(); }
  size_t size() const { return Elems.size(); }
  auto begin() const { return Elems.begin(); }
  auto end() const { return Elems.end(); }

  friend bool operator==(const RegionSet &A, const RegionSet &B) {
    return A.Elems == B.Elems;
  }

private:
  std::vector<Region> Elems;
};

} // namespace scav::gc

#endif // SCAV_GC_REGION_H
