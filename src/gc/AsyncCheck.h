//===- gc/AsyncCheck.h - Pipelined state certification ---------*- C++ -*-===//
///
/// \file
/// Runs the incremental state checker on a dedicated thread, pipelined
/// behind the mutator (DESIGN.md §3.11). The mutator never shares mutable
/// state with the checker; instead, at every would-be check point it
/// *captures* a CheckUnit — the delta since the previous capture: the
/// journal slice, per-region dirty offsets + appended cells (pointers to
/// immutable machine-arena nodes), and the raw (term, environment) pair —
/// and pushes it onto a bounded SPSC queue. The checker thread replays each
/// unit into a private mirror (Memory + Ψ + an *observer* GcContext that
/// shares only the thread-safe SymbolTable) and runs the ordinary
/// IncrementalStateCheck engine over the mirror via the CheckSubject seam.
///
/// Because the engine, its iteration order, and its fresh-name namespace
/// are all deterministic functions of the subject state, the verdict, the
/// failing cell, and the diagnostic are identical to what a synchronous
/// checker would have produced at the same step — byte-identical up to the
/// spelling of freshly minted bound type variables (the normalization memo
/// is per-context, so the mirror can re-mint an M-unfold binder the
/// machine context had already named; the printed types are then
/// alpha-equivalent, not alpha-identical). A failure verdict carries the
/// capture-time step count, so the driver reports the violation at the
/// same step a synchronous run would have stopped at, even though the
/// mutator has raced ahead in the meantime.
///
/// Backpressure and the lag safety net: a full queue blocks capture for at
/// most PushTimeoutMs; on timeout the mutator falls back to a synchronous
/// full checkState (so certification is never unboundedly stale), drops
/// the unit, and marks the session so the next capture ships a full-state
/// snapshot that resyncs the mirror (ResyncEvery-style).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_ASYNCCHECK_H
#define SCAV_GC_ASYNCCHECK_H

#include "gc/StateCheck.h"
#include "support/SpscQueue.h"

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

namespace scav::gc {

/// Per-region delta of one capture window. All Value/Type pointers are
/// machine-arena nodes: immutable once built and never reclaimed during a
/// run, so the checker thread may read them freely.
struct RegionDelta {
  Symbol S;
  /// Wholesale replacement (widen rewrote the region in place without
  /// dirty-logging; or a dirty log overflowed and forgot its offsets).
  bool Snapshot = false;
  /// Snapshot=true: the overflow flags to reproduce on the mirror (a
  /// widen needs none — its journal event already invalidates the region).
  bool MemOverflow = false;
  bool PsiOverflow = false;
  /// Which sides exist machine-side at capture. Normally both; a forged
  /// state can have one without the other, and the mirror must reproduce
  /// the mismatch so the engine's domain check fails identically.
  bool HasMem = true;
  bool HasPsi = true;
  /// Snapshot=true: the full cell/Ψ contents. Snapshot=false: unused.
  std::vector<const Value *> SnapCells;
  std::vector<const Type *> SnapPsi;
  /// Snapshot=false: cells appended this window...
  std::vector<const Value *> Tail;
  /// ...in-place overwrites (offset, new value)...
  std::vector<std::pair<uint32_t, const Value *>> Dirty;
  /// ...and the same for Ψ.
  std::vector<const Type *> PsiTail;
  std::vector<std::pair<uint32_t, const Type *>> PsiDirty;
};

/// Everything the checker needs to reproduce the machine state at one
/// check point. Built on the mutator thread, consumed on the checker
/// thread; ownership moves through the queue.
struct CheckUnit {
  uint64_t Index = 0; ///< 0 = the attach check ("initial state").
  uint64_t Steps = 0; ///< Machine steps at capture (verdict attribution).
  /// Rebuild the mirror wholesale from the deltas (external mutation made
  /// the journal/dirty contract unable to say what changed, or a lag
  /// resync dropped a unit) and invalidate the engine.
  bool FullSnapshot = false;
  bool TypeTrackingOk = true;
  std::string TypeTrackingError;
  /// Raw (unforced) term state; forcing runs on the checker thread in the
  /// mirror's observer context.
  const Term *Cur = nullptr;
  Subst Env;
  std::vector<DeltaEvent> Journal;
  std::vector<RegionDelta> Deltas;
};

/// The checker thread's private replica of the machine state, fed by
/// CheckUnits. Satisfies CheckSubject, so the stock IncrementalStateCheck
/// runs over it unchanged — same caches, same dirty-log consumption, same
/// diagnostics.
class MirrorSubject final : public CheckSubject {
public:
  /// \p MachineCtx is used only for its SymbolTable: the mirror's context
  /// is an observer (shared symbols, private arena/interner, no canonical
  /// marking — pointer *in*equality between two contexts' interned nodes
  /// means nothing, so the observer's nodes fall back to structural
  /// comparison against machine nodes).
  MirrorSubject(GcContext &MachineCtx, LanguageLevel Level);

  /// Replays one unit: appends its journal slice, applies structural
  /// create/drop events, then the per-region deltas. After apply(), the
  /// mirror's own dirty logs/versions describe exactly the window's
  /// writes, which is what the engine's collectDirty consumes.
  void apply(CheckUnit &U);

  GcContext &context() override { return Ctx; }
  LanguageLevel level() const override { return Lvl; }
  Memory &memory() override { return Mem; }
  const Memory &memory() const override { return Mem; }
  MemoryType &psi() override { return Psi; }
  const MemoryType &psi() const override { return Psi; }
  const Term *currentTerm() const override;
  bool typeTrackingOk() const override { return TtOk; }
  std::string typeTrackingError() const override { return TtErr; }
  void enableDeltaJournal() override {} // always on
  uint64_t journalEnd() const override { return JBase + J.size(); }
  const DeltaEvent &journalEvent(uint64_t AbsIdx) const override {
    return J[static_cast<size_t>(AbsIdx - JBase)];
  }
  void trimJournal(uint64_t UpToAbs) override;

private:
  void applyDelta(const RegionDelta &D);

  GcContext Ctx;
  LanguageLevel Lvl;
  Memory Mem;
  MemoryType Psi;
  bool TtOk = true;
  std::string TtErr;
  const Term *Cur = nullptr;
  Subst Env;
  std::deque<DeltaEvent> J;
  uint64_t JBase = 0;
};

/// One check outcome. Ok=false carries the diagnostic and where it applies.
struct AsyncVerdict {
  bool Ok = true;
  uint64_t UnitIndex = 0;
  uint64_t Steps = 0;
  std::string Error;

  bool initial() const { return UnitIndex == 0; }
};

struct AsyncCheckStats {
  uint64_t UnitsCaptured = 0;
  uint64_t UnitsChecked = 0;
  /// Units shipped as full-state snapshots (external mutation / lag).
  uint64_t Snapshots = 0;
  /// Push timeouts that fell back to a synchronous full checkState.
  uint64_t LagResyncs = 0;
  /// Queue depth percentiles over all successful pushes.
  uint64_t QueueDepthP50 = 0;
  uint64_t QueueDepthP99 = 0;
  uint64_t QueueDepthMax = 0;
  /// The engine's own counters (checker.* schema), from the mirror run.
  IncrementalCheckStats Engine;

  /// Publishes under "check.async.*" plus the engine's "checker.*".
  void exportTo(support::MetricsRegistry &Reg) const {
    Reg.setCounter("check.async.units", UnitsCaptured);
    Reg.setCounter("check.async.units_checked", UnitsChecked);
    Reg.setCounter("check.async.snapshots", Snapshots);
    Reg.setCounter("check.async.lag_resyncs", LagResyncs);
    Reg.setGauge("check.async.queue_depth_p50",
                 static_cast<double>(QueueDepthP50));
    Reg.setGauge("check.async.queue_depth_p99",
                 static_cast<double>(QueueDepthP99));
    Reg.setGauge("check.async.queue_depth_max",
                 static_cast<double>(QueueDepthMax));
    Engine.exportTo(Reg);
  }
};

/// Owns the queue, the checker thread, and the machine-side capture
/// cursors. One session per run; construct after Machine::start at the
/// point a synchronous checker would attach, then call capture() exactly
/// where the synchronous run would have called check().
class AsyncCheckSession {
public:
  struct Options {
    IncrementalCheckOptions Check;
    /// Units in flight before capture blocks (then the lag net fires).
    size_t QueueCapacity = 256;
    uint32_t PushTimeoutMs = 100;
  };

  AsyncCheckSession(Machine &M, Options Opts);
  ~AsyncCheckSession();

  AsyncCheckSession(const AsyncCheckSession &) = delete;
  AsyncCheckSession &operator=(const AsyncCheckSession &) = delete;

  /// Captures the current machine state as the next CheckUnit and ships
  /// it. Returns false once a failure verdict exists (the caller should
  /// stop stepping and call finish()); capture itself cannot fail.
  bool capture();

  /// True as soon as some checked unit failed (cheap; polled per step).
  bool failed() const;

  /// Closes the queue, drains the checker, joins the thread, and returns
  /// the final verdict: the *earliest* failing unit if any — which, by
  /// construction, is the verdict a synchronous checker would have stopped
  /// on — else Ok. Idempotent.
  AsyncVerdict finish();

  /// Valid after finish().
  const AsyncCheckStats &stats() const { return Stats; }

private:
  struct CaptureCursor {
    size_t MemCells = 0;
    size_t PsiCells = 0;
  };

  void buildUnit(CheckUnit &U);
  void recordFailure(AsyncVerdict V);
  void checkerLoop();

  Machine &M;
  Options Opts;
  AsyncCheckStats Stats;
  SpscQueue<CheckUnit> Queue;
  std::thread Checker;
  uint64_t NextIndex = 0;
  uint64_t CaptureJCursor = 0;
  bool PendingResync = false;
  bool Finished = false;
  std::unordered_map<Symbol, CaptureCursor, SymbolHash> Cursors;
  std::vector<uint64_t> DepthSamples;

  // Checker-thread state, joined back at finish().
  std::unique_ptr<MirrorSubject> Mirror;
  std::unique_ptr<IncrementalStateCheck> Engine;

  // Verdict slot (first failure wins; written by either thread under Mu —
  // the checker on a failed unit, the mutator on a failed lag-net check).
  mutable std::mutex Mu;
  std::optional<AsyncVerdict> Failure;
  std::atomic<bool> FailedFlag{false};
};

} // namespace scav::gc

#endif // SCAV_GC_ASYNCCHECK_H
