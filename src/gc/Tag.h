//===- gc/Tag.h - Tags τ: runtime type descriptors -------------*- C++ -*-===//
///
/// \file
/// Tags (Fig 2) are the runtime entities analysed by `typecase`:
///
///   τ ::= t | Int | τ1 × τ2 | ~τ → 0 | ∃t.τ | λt.τ | τ1 τ2
///
/// Tags deliberately mirror λCLOS source types (no region annotations); the
/// hard-wired Typerec M maps them to real λGC types. Tag-level λ/application
/// exist solely so `typecase` can analyse existentials (§4.2): analysing
/// ∃t.τ yields the tag function λt.τ.
///
/// Arrow tags carry a *vector* of argument tags; λCLOS arrows are unary but
/// the collector's own code needs multi-argument code types.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TAG_H
#define SCAV_GC_TAG_H

#include "gc/Kind.h"
#include "support/Symbol.h"

#include <cassert>
#include <vector>

namespace scav::gc {

using scav::Symbol;

enum class TagKind { Var, Int, Prod, Arrow, Exists, Lam, App };

/// A tag node; arena-allocated and immutable.
///
/// Nodes constructed through GcContext are hash-consed: the context stores a
/// structural hash (`hash()`) in every node at construction time and uniques
/// structurally identical nodes, so `hash()`/`shallowEquals()` over child
/// *pointers* implement full structural hashing/equality. Three derived facts
/// are cached as flag bits (see GcContext for the exact definitions):
///
///  * Normal    — the tag is a β-normal form (normalizeTag is the identity);
///  * Ground    — no variables and no binders anywhere in the subtree, so
///                alpha-equivalence degenerates to structural equality;
///  * Canonical — the node went through the uniquing table, so for two
///                Ground+Canonical nodes pointer inequality implies
///                structural (hence alpha-) inequality.
class Tag {
public:
  enum : uint8_t {
    FlagNormal = 1u << 0,
    FlagGround = 1u << 1,
    FlagCanonical = 1u << 2,
  };

  TagKind kind() const { return K; }
  bool is(TagKind Which) const { return K == Which; }

  /// Structural hash, stored at construction (children hash by pointer
  /// identity, which equals structural identity for canonical nodes).
  size_t hash() const { return H; }
  bool isNormal() const { return Bits & FlagNormal; }
  bool isGround() const { return Bits & FlagGround; }
  bool isCanonical() const { return Bits & FlagCanonical; }
  uint8_t flags() const { return Bits; }

  /// Field-wise equality one level deep; full structural equality when the
  /// children are canonical.
  bool shallowEquals(const Tag &O) const {
    return K == O.K && V == O.V && A == O.A && B == O.B && BK == O.BK &&
           Args == O.Args;
  }

  /// Var: the variable; Exists/Lam: the bound variable.
  Symbol var() const {
    assert((K == TagKind::Var || K == TagKind::Exists || K == TagKind::Lam) &&
           "no variable on this tag");
    return V;
  }

  /// Prod: left component. App: the function.
  const Tag *left() const {
    assert((K == TagKind::Prod || K == TagKind::App) && "no left child");
    return A;
  }
  /// Prod: right component. App: the argument.
  const Tag *right() const {
    assert((K == TagKind::Prod || K == TagKind::App) && "no right child");
    return B;
  }

  /// Exists/Lam: the body under the binder.
  const Tag *body() const {
    assert((K == TagKind::Exists || K == TagKind::Lam) && "no body");
    return A;
  }

  /// Lam: the kind of the bound variable (Ω in the paper).
  const Kind *binderKind() const {
    assert(K == TagKind::Lam && "binderKind on non-lambda tag");
    return BK;
  }

  /// Arrow: the argument tags of ~τ → 0.
  const std::vector<const Tag *> &arrowArgs() const {
    assert(K == TagKind::Arrow && "arrowArgs on non-arrow tag");
    return Args;
  }

private:
  friend class GcContext;
  Tag(TagKind K) : K(K) {}

  TagKind K;
  Symbol V;
  const Tag *A = nullptr;
  const Tag *B = nullptr;
  const Kind *BK = nullptr;
  std::vector<const Tag *> Args;
  size_t H = 0;
  uint8_t Bits = 0;
};

} // namespace scav::gc

#endif // SCAV_GC_TAG_H
