//===- gc/Tag.h - Tags τ: runtime type descriptors -------------*- C++ -*-===//
///
/// \file
/// Tags (Fig 2) are the runtime entities analysed by `typecase`:
///
///   τ ::= t | Int | τ1 × τ2 | ~τ → 0 | ∃t.τ | λt.τ | τ1 τ2
///
/// Tags deliberately mirror λCLOS source types (no region annotations); the
/// hard-wired Typerec M maps them to real λGC types. Tag-level λ/application
/// exist solely so `typecase` can analyse existentials (§4.2): analysing
/// ∃t.τ yields the tag function λt.τ.
///
/// Arrow tags carry a *vector* of argument tags; λCLOS arrows are unary but
/// the collector's own code needs multi-argument code types.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TAG_H
#define SCAV_GC_TAG_H

#include "gc/Kind.h"
#include "support/Symbol.h"

#include <cassert>
#include <vector>

namespace scav::gc {

using scav::Symbol;

enum class TagKind { Var, Int, Prod, Arrow, Exists, Lam, App };

/// A tag node; arena-allocated and immutable.
class Tag {
public:
  TagKind kind() const { return K; }
  bool is(TagKind Which) const { return K == Which; }

  /// Var: the variable; Exists/Lam: the bound variable.
  Symbol var() const {
    assert((K == TagKind::Var || K == TagKind::Exists || K == TagKind::Lam) &&
           "no variable on this tag");
    return V;
  }

  /// Prod: left component. App: the function.
  const Tag *left() const {
    assert((K == TagKind::Prod || K == TagKind::App) && "no left child");
    return A;
  }
  /// Prod: right component. App: the argument.
  const Tag *right() const {
    assert((K == TagKind::Prod || K == TagKind::App) && "no right child");
    return B;
  }

  /// Exists/Lam: the body under the binder.
  const Tag *body() const {
    assert((K == TagKind::Exists || K == TagKind::Lam) && "no body");
    return A;
  }

  /// Lam: the kind of the bound variable (Ω in the paper).
  const Kind *binderKind() const {
    assert(K == TagKind::Lam && "binderKind on non-lambda tag");
    return BK;
  }

  /// Arrow: the argument tags of ~τ → 0.
  const std::vector<const Tag *> &arrowArgs() const {
    assert(K == TagKind::Arrow && "arrowArgs on non-arrow tag");
    return Args;
  }

private:
  friend class GcContext;
  Tag(TagKind K) : K(K) {}

  TagKind K;
  Symbol V;
  const Tag *A = nullptr;
  const Tag *B = nullptr;
  const Kind *BK = nullptr;
  std::vector<const Tag *> Args;
};

} // namespace scav::gc

#endif // SCAV_GC_TAG_H
