//===- gc/Parse.cpp - Textual λGC programs ---------------------------------===//

#include "gc/Parse.h"

#include "support/ParseInt.h"

#include <cctype>
#include <optional>
#include <vector>

using namespace scav;
using namespace scav::gc;

namespace {

//===----------------------------------------------------------------------===//
// S-expression reader
//===----------------------------------------------------------------------===//

struct SExpr {
  bool IsAtom = false;
  std::string Atom;
  std::vector<SExpr> Items;

  bool isList(std::string_view Head) const {
    return !IsAtom && !Items.empty() && Items[0].IsAtom &&
           Items[0].Atom == Head;
  }
  size_t arity() const { return IsAtom ? 0 : Items.size() - 1; }
};

/// Same nesting-depth cap as the lambda frontend: every nesting level is a
/// recursion frame in the reader and in GcBuilder, so adversarial depth
/// must be a diagnostic, not a stack overflow.
constexpr unsigned MaxNestingDepth = 1000;

struct Reader {
  std::string_view Src;
  size_t Pos = 0;
  DiagEngine &Diags;
  unsigned Depth = 0;

  void skipWs() {
    while (Pos < Src.size()) {
      if (std::isspace(static_cast<unsigned char>(Src[Pos]))) {
        ++Pos;
      } else if (Src[Pos] == ';') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool atEnd() {
    skipWs();
    return Pos >= Src.size();
  }

  std::optional<SExpr> read() {
    skipWs();
    if (Pos >= Src.size()) {
      Diags.error("unexpected end of lambda-GC input");
      return std::nullopt;
    }
    if (Src[Pos] == '(') {
      if (++Depth > MaxNestingDepth) {
        Diags.error("expression nesting too deep (limit " +
                    std::to_string(MaxNestingDepth) + ")");
        return std::nullopt;
      }
      ++Pos;
      SExpr List;
      for (;;) {
        skipWs();
        if (Pos >= Src.size()) {
          Diags.error("unterminated list in lambda-GC input");
          return std::nullopt;
        }
        if (Src[Pos] == ')') {
          ++Pos;
          --Depth;
          return List;
        }
        auto Item = read();
        if (!Item)
          return std::nullopt;
        List.Items.push_back(std::move(*Item));
      }
    }
    if (Src[Pos] == ')') {
      Diags.error("unexpected ')' in lambda-GC input");
      return std::nullopt;
    }
    SExpr Atom;
    Atom.IsAtom = true;
    size_t Start = Pos;
    while (Pos < Src.size() &&
           !std::isspace(static_cast<unsigned char>(Src[Pos])) &&
           Src[Pos] != '(' && Src[Pos] != ')' && Src[Pos] != ';')
      ++Pos;
    Atom.Atom = std::string(Src.substr(Start, Pos - Start));
    return Atom;
  }
};

bool looksLikeInt(const std::string &A) {
  if (A.empty())
    return false;
  size_t I = A[0] == '-' ? 1 : 0;
  if (I == A.size())
    return false;
  for (; I != A.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(A[I])))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// λGC syntax builder
//===----------------------------------------------------------------------===//

struct GcBuilder {
  GcContext &C;
  DiagEngine &Diags;
  const std::map<std::string, Address> *Funs;

  template <typename T> T *fail(const std::string &Msg) {
    Diags.error(Msg);
    return nullptr;
  }

  /// Binder positions must hold identifiers, not integer literals.
  bool binder(const SExpr &S, Symbol &Out) {
    if (!S.IsAtom || looksLikeInt(S.Atom)) {
      Diags.error("expected an identifier binder");
      return false;
    }
    Out = C.intern(S.Atom);
    return true;
  }

  Region region(const SExpr &S) {
    if (!S.IsAtom) {
      Diags.error("region must be an identifier");
      return Region();
    }
    if (S.Atom == "cd")
      return C.cd();
    return Region::var(C.intern(S.Atom));
  }

  bool regionSet(const SExpr &S, RegionSet &Out) {
    if (S.IsAtom) {
      Diags.error("region set must be a list");
      return false;
    }
    for (const SExpr &R : S.Items) {
      Region Rr = region(R);
      if (!Rr.isValid())
        return false;
      Out.insert(Rr);
    }
    return true;
  }

  const Kind *kind(const SExpr &S) {
    if (S.IsAtom) {
      if (S.Atom == "O")
        return C.omega();
      return fail<const Kind>("unknown kind '" + S.Atom + "'");
    }
    if (S.isList("->") && S.arity() == 2) {
      const Kind *A = kind(S.Items[1]);
      const Kind *B = kind(S.Items[2]);
      return A && B ? C.arrowKind(A, B) : nullptr;
    }
    return fail<const Kind>("malformed kind");
  }

  const Tag *tag(const SExpr &S) {
    if (S.IsAtom) {
      if (S.Atom == "Int")
        return C.tagInt();
      return C.tagVar(C.intern(S.Atom));
    }
    if (S.Items.empty() || !S.Items[0].IsAtom)
      return fail<const Tag>("malformed tag");
    const std::string &H = S.Items[0].Atom;
    if (H == "*" && S.arity() == 2) {
      const Tag *A = tag(S.Items[1]), *B = tag(S.Items[2]);
      return A && B ? C.tagProd(A, B) : nullptr;
    }
    if (H == "->") {
      std::vector<const Tag *> Args;
      for (size_t I = 1; I != S.Items.size(); ++I) {
        const Tag *A = tag(S.Items[I]);
        if (!A)
          return nullptr;
        Args.push_back(A);
      }
      return C.tagArrow(std::move(Args));
    }
    if (H == "E" && S.arity() == 2 && S.Items[1].IsAtom) {
      const Tag *B = tag(S.Items[2]);
      return B ? C.tagExists(C.intern(S.Items[1].Atom), B) : nullptr;
    }
    if (H == "\\" && S.arity() == 3 && S.Items[1].IsAtom) {
      const Kind *K = kind(S.Items[2]);
      const Tag *B = tag(S.Items[3]);
      return K && B ? C.tagLam(C.intern(S.Items[1].Atom), K, B) : nullptr;
    }
    if (H == "@" && S.arity() == 2) {
      const Tag *A = tag(S.Items[1]), *B = tag(S.Items[2]);
      return A && B ? C.tagApp(A, B) : nullptr;
    }
    return fail<const Tag>("unknown tag form '" + H + "'");
  }

  const Type *type(const SExpr &S) {
    if (S.IsAtom) {
      if (S.Atom == "int")
        return C.typeInt();
      return C.typeVar(C.intern(S.Atom));
    }
    if (S.Items.empty() || !S.Items[0].IsAtom)
      return fail<const Type>("malformed type");
    const std::string &H = S.Items[0].Atom;
    auto Want = [&](size_t N) {
      if (S.arity() == N)
        return true;
      Diags.error("type form '" + H + "' expects " + std::to_string(N) +
                  " operands");
      return false;
    };

    if (H == "*") {
      if (!Want(2))
        return nullptr;
      const Type *A = type(S.Items[1]), *B = type(S.Items[2]);
      return A && B ? C.typeProd(A, B) : nullptr;
    }
    if (H == "+") {
      if (!Want(2))
        return nullptr;
      const Type *A = type(S.Items[1]), *B = type(S.Items[2]);
      return A && B ? C.typeSum(A, B) : nullptr;
    }
    if (H == "left" || H == "right") {
      if (!Want(1))
        return nullptr;
      const Type *A = type(S.Items[1]);
      if (!A)
        return nullptr;
      return H == "left" ? C.typeLeft(A) : C.typeRight(A);
    }
    if (H == "at") {
      if (!Want(2))
        return nullptr;
      const Type *A = type(S.Items[1]);
      Region R = region(S.Items[2]);
      return A && R.isValid() ? C.typeAt(A, R) : nullptr;
    }
    if (H == "M") {
      if (!Want(2))
        return nullptr;
      Region R = region(S.Items[1]);
      const Tag *T = tag(S.Items[2]);
      return R.isValid() && T ? C.typeM(R, T) : nullptr;
    }
    if (H == "M2") {
      if (!Want(3))
        return nullptr;
      Region A = region(S.Items[1]), B = region(S.Items[2]);
      const Tag *T = tag(S.Items[3]);
      return A.isValid() && B.isValid() && T ? C.typeM({A, B}, T) : nullptr;
    }
    if (H == "C") {
      if (!Want(3))
        return nullptr;
      Region A = region(S.Items[1]), B = region(S.Items[2]);
      const Tag *T = tag(S.Items[3]);
      return A.isValid() && B.isValid() && T ? C.typeC(A, B, T) : nullptr;
    }
    if (H == "code") {
      if (!Want(3))
        return nullptr;
      std::vector<Symbol> TP;
      std::vector<const Kind *> TK;
      if (!tagBinders(S.Items[1], TP, TK))
        return nullptr;
      std::vector<Symbol> RP;
      if (!names(S.Items[2], RP))
        return nullptr;
      std::vector<const Type *> Args;
      if (!typeList(S.Items[3], Args))
        return nullptr;
      return C.typeCode(std::move(TP), std::move(TK), std::move(RP),
                        std::move(Args));
    }
    if (H == "Et") {
      if (!Want(3))
        return nullptr;
      if (!S.Items[1].IsAtom)
        return fail<const Type>("binder of '" + H + "' must be an identifier");
      const Kind *K = kind(S.Items[2]);
      const Type *B = type(S.Items[3]);
      return K && B ? C.typeExistsTag(C.intern(S.Items[1].Atom), K, B)
                    : nullptr;
    }
    if (H == "Ea" || H == "Er") {
      if (!Want(3))
        return nullptr;
      if (!S.Items[1].IsAtom)
        return fail<const Type>("binder of '" + H + "' must be an identifier");
      RegionSet D;
      if (!regionSet(S.Items[2], D))
        return nullptr;
      const Type *B = type(S.Items[3]);
      if (!B)
        return nullptr;
      Symbol V = C.intern(S.Items[1].Atom);
      return H == "Ea" ? C.typeExistsTyVar(V, std::move(D), B)
                       : C.typeExistsRegion(V, std::move(D), B);
    }
    if (H == "trans") {
      if (!Want(4))
        return nullptr;
      std::vector<const Tag *> Tags;
      if (!tagList(S.Items[1], Tags))
        return nullptr;
      std::vector<Region> Rs;
      if (!regionList(S.Items[2], Rs))
        return nullptr;
      std::vector<const Type *> Args;
      if (!typeList(S.Items[3], Args))
        return nullptr;
      Region At = region(S.Items[4]);
      if (!At.isValid())
        return nullptr;
      return C.typeTransCode(std::move(Tags), std::move(Rs), std::move(Args),
                             At);
    }
    return fail<const Type>("unknown type form '" + H + "'");
  }

  bool names(const SExpr &S, std::vector<Symbol> &Out) {
    if (S.IsAtom) {
      Diags.error("expected a list of names");
      return false;
    }
    for (const SExpr &N : S.Items) {
      if (!N.IsAtom) {
        Diags.error("expected a name");
        return false;
      }
      Out.push_back(C.intern(N.Atom));
    }
    return true;
  }

  bool tagBinders(const SExpr &S, std::vector<Symbol> &Names,
                  std::vector<const Kind *> &Kinds) {
    if (S.IsAtom) {
      Diags.error("expected tag-binder list");
      return false;
    }
    for (const SExpr &B : S.Items) {
      if (B.IsAtom || B.Items.size() != 2 || !B.Items[0].IsAtom) {
        Diags.error("tag binder must be (name kind)");
        return false;
      }
      const Kind *K = kind(B.Items[1]);
      if (!K)
        return false;
      Names.push_back(C.intern(B.Items[0].Atom));
      Kinds.push_back(K);
    }
    return true;
  }

  bool tagList(const SExpr &S, std::vector<const Tag *> &Out) {
    if (S.IsAtom) {
      Diags.error("expected tag list");
      return false;
    }
    for (const SExpr &T : S.Items) {
      const Tag *Tt = tag(T);
      if (!Tt)
        return false;
      Out.push_back(Tt);
    }
    return true;
  }

  bool typeList(const SExpr &S, std::vector<const Type *> &Out) {
    if (S.IsAtom) {
      Diags.error("expected type list");
      return false;
    }
    for (const SExpr &T : S.Items) {
      const Type *Tt = type(T);
      if (!Tt)
        return false;
      Out.push_back(Tt);
    }
    return true;
  }

  bool regionList(const SExpr &S, std::vector<Region> &Out) {
    if (S.IsAtom) {
      Diags.error("expected region list");
      return false;
    }
    for (const SExpr &R : S.Items) {
      Region Rr = region(R);
      if (!Rr.isValid())
        return false;
      Out.push_back(Rr);
    }
    return true;
  }

  const Value *value(const SExpr &S) {
    if (S.IsAtom) {
      if (looksLikeInt(S.Atom)) {
        // looksLikeInt guards shape, not range: std::stoll threw (and
        // aborted) on literals past int64. parseInt64 reports instead.
        if (std::optional<int64_t> N = parseInt64(S.Atom))
          return C.valInt(*N);
        return fail<const Value>("integer literal out of range: '" +
                                 S.Atom + "'");
      }
      return C.valVar(C.intern(S.Atom));
    }
    if (S.Items.empty() || !S.Items[0].IsAtom)
      return fail<const Value>("malformed value");
    const std::string &H = S.Items[0].Atom;

    if (H == "fn" && S.arity() == 1 && S.Items[1].IsAtom) {
      auto It = Funs ? Funs->find(S.Items[1].Atom) : std::map<std::string,
                                                              Address>::
                                                         const_iterator{};
      if (!Funs || It == Funs->end())
        return fail<const Value>("unknown function '" + S.Items[1].Atom +
                                 "'");
      return C.valAddr(It->second);
    }
    if (H == "pair" && S.arity() == 2) {
      const Value *A = value(S.Items[1]), *B = value(S.Items[2]);
      return A && B ? C.valPair(A, B) : nullptr;
    }
    if (H == "inl" && S.arity() == 1) {
      const Value *A = value(S.Items[1]);
      return A ? C.valInl(A) : nullptr;
    }
    if (H == "inr" && S.arity() == 1) {
      const Value *A = value(S.Items[1]);
      return A ? C.valInr(A) : nullptr;
    }
    if (H == "packt" && S.arity() == 4 && S.Items[1].IsAtom) {
      const Tag *W = tag(S.Items[2]);
      const Value *P = value(S.Items[3]);
      const Type *B = type(S.Items[4]);
      return W && P && B
                 ? C.valPackTag(C.intern(S.Items[1].Atom), W, P, B)
                 : nullptr;
    }
    if (H == "packa" && S.arity() == 5 && S.Items[1].IsAtom) {
      RegionSet D;
      if (!regionSet(S.Items[2], D))
        return nullptr;
      const Type *W = type(S.Items[3]);
      const Value *P = value(S.Items[4]);
      const Type *B = type(S.Items[5]);
      return W && P && B
                 ? C.valPackTyVar(C.intern(S.Items[1].Atom), std::move(D), W,
                                  P, B)
                 : nullptr;
    }
    if (H == "packr" && S.arity() == 5 && S.Items[1].IsAtom) {
      RegionSet D;
      if (!regionSet(S.Items[2], D))
        return nullptr;
      Region W = region(S.Items[3]);
      const Value *P = value(S.Items[4]);
      const Type *B = type(S.Items[5]);
      return W.isValid() && P && B
                 ? C.valPackRegion(C.intern(S.Items[1].Atom), std::move(D),
                                   W, P, B)
                 : nullptr;
    }
    if (H == "transapp" && S.arity() == 3) {
      const Value *V = value(S.Items[1]);
      std::vector<const Tag *> Tags;
      std::vector<Region> Rs;
      if (!V || !tagList(S.Items[2], Tags) || !regionList(S.Items[3], Rs))
        return nullptr;
      return C.valTransApp(V, std::move(Tags), std::move(Rs));
    }
    return fail<const Value>("unknown value form '" + H + "'");
  }

  const Op *op(const SExpr &S) {
    if (!S.IsAtom && !S.Items.empty() && S.Items[0].IsAtom) {
      const std::string &H = S.Items[0].Atom;
      auto Bin = [&](PrimOp P) -> const Op * {
        if (S.arity() != 2)
          return fail<const Op>("primitive expects two operands");
        const Value *A = value(S.Items[1]), *B = value(S.Items[2]);
        return A && B ? C.opPrim(P, A, B) : nullptr;
      };
      if (H == "pi1" || H == "pi2") {
        if (S.arity() != 1)
          return fail<const Op>("projection expects one operand");
        const Value *V = value(S.Items[1]);
        return V ? C.opProj(H == "pi1" ? 1 : 2, V) : nullptr;
      }
      if (H == "put") {
        if (S.arity() != 2)
          return fail<const Op>("put expects region and value");
        Region R = region(S.Items[1]);
        const Value *V = value(S.Items[2]);
        return R.isValid() && V ? C.opPut(R, V) : nullptr;
      }
      if (H == "get") {
        if (S.arity() != 1)
          return fail<const Op>("get expects one operand");
        const Value *V = value(S.Items[1]);
        return V ? C.opGet(V) : nullptr;
      }
      if (H == "strip") {
        if (S.arity() != 1)
          return fail<const Op>("strip expects one operand");
        const Value *V = value(S.Items[1]);
        return V ? C.opStrip(V) : nullptr;
      }
      if (H == "+")
        return Bin(PrimOp::Add);
      if (H == "-")
        return Bin(PrimOp::Sub);
      if (H == "*")
        return Bin(PrimOp::Mul);
      if (H == "<=")
        return Bin(PrimOp::Le);
    }
    const Value *V = value(S);
    return V ? C.opVal(V) : nullptr;
  }

  const Term *term(const SExpr &S) {
    if (S.IsAtom || S.Items.empty() || !S.Items[0].IsAtom)
      return fail<const Term>("malformed term");
    const std::string &H = S.Items[0].Atom;
    auto Want = [&](size_t N) {
      if (S.arity() == N)
        return true;
      Diags.error("term form '" + H + "' expects " + std::to_string(N) +
                  " operands");
      return false;
    };

    if (H == "app") {
      if (!Want(4))
        return nullptr;
      const Value *F = value(S.Items[1]);
      std::vector<const Tag *> Tags;
      std::vector<Region> Rs;
      if (!F || !tagList(S.Items[2], Tags) || !regionList(S.Items[3], Rs))
        return nullptr;
      std::vector<const Value *> Args;
      if (S.Items[4].IsAtom)
        return fail<const Term>("app arguments must be a list");
      for (const SExpr &A : S.Items[4].Items) {
        const Value *V = value(A);
        if (!V)
          return nullptr;
        Args.push_back(V);
      }
      return C.termApp(F, std::move(Tags), std::move(Rs), std::move(Args));
    }
    if (H == "let") {
      Symbol X;
      if (!Want(3) || !binder(S.Items[1], X))
        return nullptr;
      const Op *O = op(S.Items[2]);
      const Term *B = term(S.Items[3]);
      return O && B ? C.termLet(X, O, B) : nullptr;
    }
    if (H == "halt") {
      if (!Want(1))
        return nullptr;
      const Value *V = value(S.Items[1]);
      return V ? C.termHalt(V) : nullptr;
    }
    if (H == "ifgc") {
      if (!Want(3))
        return nullptr;
      Region R = region(S.Items[1]);
      const Term *A = term(S.Items[2]), *B = term(S.Items[3]);
      return R.isValid() && A && B ? C.termIfGc(R, A, B) : nullptr;
    }
    if (H == "opent" || H == "opena" || H == "openr") {
      Symbol X1, X2;
      if (!Want(4) || !binder(S.Items[2], X1) || !binder(S.Items[3], X2))
        return nullptr;
      const Value *V = value(S.Items[1]);
      const Term *B = term(S.Items[4]);
      if (!V || !B)
        return nullptr;
      if (H == "opent")
        return C.termOpenTag(V, X1, X2, B);
      if (H == "opena")
        return C.termOpenTyVar(V, X1, X2, B);
      return C.termOpenRegion(V, X1, X2, B);
    }
    if (H == "letregion") {
      Symbol R;
      if (!Want(2) || !binder(S.Items[1], R))
        return nullptr;
      const Term *B = term(S.Items[2]);
      return B ? C.termLetRegion(R, B) : nullptr;
    }
    if (H == "only") {
      if (!Want(2))
        return nullptr;
      RegionSet D;
      if (!regionSet(S.Items[1], D))
        return nullptr;
      const Term *B = term(S.Items[2]);
      return B ? C.termOnly(std::move(D), B) : nullptr;
    }
    if (H == "typecase") {
      // (typecase τ eI eL (t1 t2 eP) (te eE))
      if (!Want(5))
        return nullptr;
      const Tag *T = tag(S.Items[1]);
      const Term *EI = term(S.Items[2]);
      const Term *EL = term(S.Items[3]);
      const SExpr &PArm = S.Items[4];
      const SExpr &EArm = S.Items[5];
      if (!T || !EI || !EL || PArm.IsAtom || PArm.Items.size() != 3 ||
          !PArm.Items[0].IsAtom || !PArm.Items[1].IsAtom || EArm.IsAtom ||
          EArm.Items.size() != 2 || !EArm.Items[0].IsAtom)
        return fail<const Term>("malformed typecase arms");
      const Term *EP = term(PArm.Items[2]);
      const Term *EE = term(EArm.Items[1]);
      if (!EP || !EE)
        return nullptr;
      return C.termTypecase(T, EI, EL, C.intern(PArm.Items[0].Atom),
                            C.intern(PArm.Items[1].Atom), EP,
                            C.intern(EArm.Items[0].Atom), EE);
    }
    if (H == "ifleft") {
      Symbol X;
      if (!Want(4) || !binder(S.Items[1], X))
        return nullptr;
      const Value *V = value(S.Items[2]);
      const Term *A = term(S.Items[3]), *B = term(S.Items[4]);
      return V && A && B ? C.termIfLeft(X, V, A, B) : nullptr;
    }
    if (H == "set") {
      if (!Want(3))
        return nullptr;
      const Value *D = value(S.Items[1]), *Src = value(S.Items[2]);
      const Term *B = term(S.Items[3]);
      return D && Src && B ? C.termSet(D, Src, B) : nullptr;
    }
    if (H == "widen") {
      Symbol X;
      if (!Want(5) || !binder(S.Items[1], X))
        return nullptr;
      Region R = region(S.Items[2]);
      const Tag *T = tag(S.Items[3]);
      const Value *V = value(S.Items[4]);
      const Term *B = term(S.Items[5]);
      return R.isValid() && T && V && B
                 ? C.termLetWiden(X, R, T, V, B)
                 : nullptr;
    }
    if (H == "ifreg") {
      if (!Want(4))
        return nullptr;
      Region A = region(S.Items[1]), B = region(S.Items[2]);
      const Term *E1 = term(S.Items[3]), *E2 = term(S.Items[4]);
      return A.isValid() && B.isValid() && E1 && E2
                 ? C.termIfReg(A, B, E1, E2)
                 : nullptr;
    }
    if (H == "if0") {
      if (!Want(3))
        return nullptr;
      const Value *V = value(S.Items[1]);
      const Term *A = term(S.Items[2]), *B = term(S.Items[3]);
      return V && A && B ? C.termIf0(V, A, B) : nullptr;
    }
    return fail<const Term>("unknown term form '" + H + "'");
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

const Tag *scav::gc::parseGcTag(GcContext &C, std::string_view Src,
                                DiagEngine &Diags) {
  Reader R{Src, 0, Diags};
  auto S = R.read();
  if (!S)
    return nullptr;
  GcBuilder B{C, Diags, nullptr};
  return B.tag(*S);
}

const Type *scav::gc::parseGcType(GcContext &C, std::string_view Src,
                                  DiagEngine &Diags) {
  Reader R{Src, 0, Diags};
  auto S = R.read();
  if (!S)
    return nullptr;
  GcBuilder B{C, Diags, nullptr};
  return B.type(*S);
}

const Term *scav::gc::parseGcTerm(GcContext &C, std::string_view Src,
                                  DiagEngine &Diags,
                                  const std::map<std::string, Address> &Funs) {
  Reader R{Src, 0, Diags};
  auto S = R.read();
  if (!S)
    return nullptr;
  GcBuilder B{C, Diags, &Funs};
  return B.term(*S);
}

ParsedGcProgram scav::gc::parseGcProgram(
    Machine &M, std::string_view Src, DiagEngine &Diags,
    const std::map<std::string, Address> &Prelude) {
  ParsedGcProgram Out;
  GcContext &C = M.context();
  Reader R{Src, 0, Diags};
  auto S = R.read();
  if (!S || !R.atEnd()) {
    if (S)
      Diags.error("trailing input after lambda-GC program");
    return Out;
  }
  if (!S->isList("program")) {
    Diags.error("expected (program ...)");
    return Out;
  }

  Out.Funs = Prelude;

  // Pass 1: reserve all function labels.
  std::vector<const SExpr *> FunForms;
  const SExpr *MainForm = nullptr;
  for (size_t I = 1; I != S->Items.size(); ++I) {
    const SExpr &F = S->Items[I];
    if (F.isList("fun")) {
      if (F.Items.size() != 6 || !F.Items[1].IsAtom) {
        Diags.error("malformed (fun name ((t κ)...) (r...) ((x σ)...) e)");
        return Out;
      }
      if (Out.Funs.count(F.Items[1].Atom)) {
        Diags.error("duplicate function '" + F.Items[1].Atom + "'");
        return Out;
      }
      Address A = M.reserveCode(F.Items[1].Atom);
      Out.Funs[F.Items[1].Atom] = A;
      Out.OwnFuns[F.Items[1].Atom] = A;
      FunForms.push_back(&F);
    } else if (F.isList("main")) {
      if (MainForm || F.Items.size() != 2) {
        Diags.error("malformed or duplicate (main e)");
        return Out;
      }
      MainForm = &F;
    } else {
      Diags.error("expected (fun ...) or (main ...) in program");
      return Out;
    }
  }

  // Pass 2: build bodies.
  GcBuilder B{C, Diags, &Out.Funs};
  for (const SExpr *F : FunForms) {
    std::vector<Symbol> TP;
    std::vector<const Kind *> TK;
    if (!B.tagBinders(F->Items[2], TP, TK))
      return Out;
    std::vector<Symbol> RP;
    if (!B.names(F->Items[3], RP))
      return Out;
    std::vector<Symbol> VP;
    std::vector<const Type *> VT;
    if (F->Items[4].IsAtom) {
      Diags.error("expected value-parameter list");
      return Out;
    }
    for (const SExpr &P : F->Items[4].Items) {
      if (P.IsAtom || P.Items.size() != 2 || !P.Items[0].IsAtom) {
        Diags.error("value parameter must be (name type)");
        return Out;
      }
      const Type *T = B.type(P.Items[1]);
      if (!T)
        return Out;
      VP.push_back(C.intern(P.Items[0].Atom));
      VT.push_back(T);
    }
    const Term *Body = B.term(F->Items[5]);
    if (!Body)
      return Out;
    M.defineCode(Out.Funs[F->Items[1].Atom],
                 C.valCode(std::move(TP), std::move(TK), std::move(RP),
                           std::move(VP), std::move(VT), Body));
  }
  if (MainForm) {
    Out.Main = B.term(MainForm->Items[1]);
    if (!Out.Main)
      return Out;
  }
  Out.Ok = true;
  return Out;
}
