//===- gc/TypeCheck.cpp - Static semantics of the λGC family --------------===//
///
/// \file
/// Implements Figs 6 (λGC), 8 (λGC-forw), and 10 (λGC-gen). See
/// TypeCheck.h for the judgment forms and the documented algorithmic
/// compromises.
///
//===----------------------------------------------------------------------===//

#include "gc/TypeCheck.h"

using namespace scav;
using namespace scav::gc;

bool TypeChecker::requireLevel(LanguageLevel Min, const char *Construct) {
  if (Level == Min)
    return true;
  return fail(std::string(Construct) + " is only available in " +
              languageLevelName(Min) + ", current level is " +
              languageLevelName(Level));
}

//===----------------------------------------------------------------------===//
// ∆; Θ; Φ ⊢ σ
//===----------------------------------------------------------------------===//

bool TypeChecker::checkTypeWf(const Type *T, const CheckEnv &E) {
  switch (T->kind()) {
  case TypeKind::Int:
    return true;

  case TypeKind::Prod:
  case TypeKind::Sum:
    if (T->is(TypeKind::Sum) && Level != LanguageLevel::Forward)
      return false;
    return checkTypeWf(T->left(), E) && checkTypeWf(T->right(), E);

  case TypeKind::Left:
  case TypeKind::Right:
    if (Level != LanguageLevel::Forward)
      return false;
    return checkTypeWf(T->body(), E);

  case TypeKind::At:
    return inDelta(T->atRegion(), E) && checkTypeWf(T->body(), E);

  case TypeKind::TyVar: {
    auto It = E.Phi.find(T->var());
    return It != E.Phi.end() && It->second.subsetOf(E.Delta);
  }

  case TypeKind::MApp: {
    size_t WantArity = Level == LanguageLevel::Generational ? 2 : 1;
    if (T->mRegions().size() != WantArity)
      return false;
    for (Region R : T->mRegions())
      if (!inDelta(R, E))
        return false;
    const Kind *K = kindOfTag(C, T->tag(), E.Theta);
    return K && K->isOmega();
  }

  case TypeKind::CApp: {
    if (Level != LanguageLevel::Forward)
      return false;
    if (!inDelta(T->cFrom(), E) || !inDelta(T->cTo(), E))
      return false;
    const Kind *K = kindOfTag(C, T->tag(), E.Theta);
    return K && K->isOmega();
  }

  case TypeKind::ExistsTag: {
    CheckEnv Inner = E;
    Inner.Theta[T->var()] = T->binderKind();
    return checkTypeWf(T->body(), Inner);
  }

  case TypeKind::ExistsTyVar: {
    for (Region R : T->delta())
      if (!inDelta(R, E))
        return false;
    CheckEnv Inner = E;
    Inner.Phi[T->var()] = T->delta();
    return checkTypeWf(T->body(), Inner);
  }

  case TypeKind::ExistsRegion: {
    if (Level != LanguageLevel::Generational)
      return false;
    for (Region R : T->delta())
      if (!inDelta(R, E))
        return false;
    CheckEnv Inner = E;
    Inner.Delta.insert(Region::var(T->var()));
    return checkTypeWf(T->body(), Inner);
  }

  case TypeKind::Code: {
    // Fig 6 prints {~r}; ~t:~κ; · ⊢ σi. Regions are reset (code is
    // region-closed — that is the point of the rule), but Θ must extend the
    // outer tag environment: the paper's own collectors use code types that
    // mention enclosing tag variables (Fig 4: f : ∀[][r](M_r(t)) → 0 with t
    // bound by gc), so the printed Θ-reset is an over-restriction.
    CheckEnv Inner;
    Inner.Psi = E.Psi;
    Inner.Theta = E.Theta;
    for (Symbol R : T->regionParams())
      Inner.Delta.insert(Region::var(R));
    for (size_t I = 0, N = T->tagParams().size(); I != N; ++I)
      Inner.Theta[T->tagParams()[I]] = T->tagParamKinds()[I];
    for (const Type *A : T->argTypes())
      if (!checkTypeWf(A, Inner))
        return false;
    return true;
  }

  case TypeKind::TransCode: {
    // Translucent code pins its tag AND region arguments (see Type.h), so
    // the argument types are checked in the current environment.
    if (!inDelta(T->atRegion(), E))
      return false;
    for (const Tag *A : T->transTags())
      if (!kindOfTag(C, A, E.Theta))
        return false;
    for (Region R : T->transRegions())
      if (!inDelta(R, E))
        return false;
    for (const Type *A : T->argTypes())
      if (!checkTypeWf(A, E))
        return false;
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Subtyping (sum subsumption, Fig 8)
//===----------------------------------------------------------------------===//

bool TypeChecker::subtypeOf(const Type *A, const Type *B) {
  CheckEnv Empty;
  return subtypeOf(A, B, Empty);
}

bool TypeChecker::subtypeOf(const Type *A, const Type *B, const CheckEnv &E) {
  // Reflexivity by pointer identity — with hash-consing, the overwhelmingly
  // common σ ≤ σ case never even normalizes.
  if (A == B)
    return true;
  const Type *NA = normalizeType(C, A, Level);
  const Type *NB = normalizeType(C, B, Level);
  if (NA == NB || alphaEqualType(NA, NB))
    return true;

  // Fig 8 sum subsumption.
  if (NB->is(TypeKind::Sum)) {
    if (NA->is(TypeKind::Sum))
      return subtypeOf(NA->left(), NB->left(), E) &&
             subtypeOf(NA->right(), NB->right(), E);
    return subtypeOf(NA, NB->left(), E) || subtypeOf(NA, NB->right(), E);
  }

  if (Level != LanguageLevel::Generational)
    return false;

  // ∆1 is covered by ∆2 if each element is in ∆2 directly or is an opened
  // region variable whose recorded bound is covered by ∆2.
  auto RegionSetLe = [&](const RegionSet &D1, const RegionSet &D2,
                         auto &&Self) -> bool {
    for (Region R : D1) {
      if (D2.contains(R))
        continue;
      if (!R.isVar())
        return false;
      auto It = E.RegionBounds.find(R.sym());
      if (It == E.RegionBounds.end() || !Self(It->second, D2, Self))
        return false;
    }
    return true;
  };

  // Generational width subtyping (the "subtyping with M_{ρ1,ρ2}" of
  // Lemma D.4). λGC-gen is mutation-free, so covariant depth rules are
  // sound here; they are NOT enabled at the Forward level, where `set`
  // would break them.
  switch (NA->kind()) {
  case TypeKind::MApp: {
    // M_{A1,ρo}(τ) ≤ M_{B1,ρo}(τ) when A1 = B1, A1 = ρo (fully old), or A1
    // is an opened region variable bounded by {B1, ρo}.
    if (!NB->is(TypeKind::MApp))
      return false;
    if (NA->mRegions().size() != 2 || NB->mRegions().size() != 2)
      return false;
    if (!tagEqual(C, NA->tag(), NB->tag()))
      return false;
    Region A1 = NA->mRegions()[0], A2 = NA->mRegions()[1];
    Region B1 = NB->mRegions()[0], B2 = NB->mRegions()[1];
    if (A2 != B2)
      return false;
    if (A1 == B1 || A1 == A2)
      return true;
    return RegionSetLe(RegionSet{A1}, RegionSet{B1, B2}, RegionSetLe);
  }
  case TypeKind::ExistsRegion: {
    // ∃r∈∆1.σ1 ≤ ∃r∈∆2.σ2 when ∆1 ⊆ ∆2 and σ1 ≤ σ2 (binders aligned; the
    // aligned binder keeps the *tighter* bound ∆1).
    if (!NB->is(TypeKind::ExistsRegion))
      return false;
    if (!RegionSetLe(NA->delta(), NB->delta(), RegionSetLe))
      return false;
    const Type *BodyA = substRegionInType(C, NA->body(), NA->var(),
                                          Region::var(NB->var()));
    CheckEnv Inner = E;
    Inner.RegionBounds[NB->var()] = NA->delta();
    return subtypeOf(BodyA, NB->body(), Inner);
  }
  case TypeKind::Prod:
    return NB->is(TypeKind::Prod) &&
           subtypeOf(NA->left(), NB->left(), E) &&
           subtypeOf(NA->right(), NB->right(), E);
  case TypeKind::At:
    return NB->is(TypeKind::At) && NA->atRegion() == NB->atRegion() &&
           subtypeOf(NA->body(), NB->body(), E);
  case TypeKind::ExistsTag: {
    if (!NB->is(TypeKind::ExistsTag) ||
        !Kind::equal(NA->binderKind(), NB->binderKind()))
      return false;
    const Type *BodyA =
        substTagInType(C, NA->body(), NA->var(), C.tagVar(NB->var()));
    return subtypeOf(BodyA, NB->body(), E);
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Value typing
//===----------------------------------------------------------------------===//

const Type *TypeChecker::inferValue(const Value *V, const CheckEnv &E) {
  return inferValueImpl(V, E);
}

const Type *TypeChecker::inferValueImpl(const Value *V, const CheckEnv &E) {
  switch (V->kind()) {
  case ValueKind::Int:
    return C.typeInt();

  case ValueKind::Var: {
    auto It = E.Gamma.find(V->var());
    if (It == E.Gamma.end())
      return failT("unbound variable " + std::string(C.name(V->var())));
    return It->second;
  }

  case ValueKind::Addr: {
    Address A = V->address();
    const Type *Cell = E.Psi.lookup(A);
    if (!Cell)
      return failT("dangling address " + printValue(C, V) +
                   " (not in Dom(Psi))");
    if (!TrustAddresses) {
      // Dom(Ψ); ·; · ⊢ σ at ν.
      CheckEnv DomEnv;
      DomEnv.Psi = E.Psi;
      DomEnv.Delta = E.Psi.domain();
      if (!checkTypeWf(Cell, DomEnv))
        return failT("cell type ill-formed under Dom(Psi): " +
                     printType(C, Cell));
    }
    return C.typeAt(Cell, A.R);
  }

  case ValueKind::Pair: {
    const Type *L = inferValueImpl(V->first(), E);
    const Type *R = inferValueImpl(V->second(), E);
    if (!L || !R)
      return nullptr;
    return C.typeProd(L, R);
  }

  case ValueKind::Inl: {
    if (Level != LanguageLevel::Forward)
      return failT("inl outside lambda-GC-forw");
    const Type *P = inferValueImpl(V->payload(), E);
    return P ? C.typeLeft(P) : nullptr;
  }
  case ValueKind::Inr: {
    if (Level != LanguageLevel::Forward)
      return failT("inr outside lambda-GC-forw");
    const Type *P = inferValueImpl(V->payload(), E);
    return P ? C.typeRight(P) : nullptr;
  }

  case ValueKind::PackTag: {
    const Kind *K = kindOfTag(C, V->tagWitness(), E.Theta);
    if (!K)
      return failT("ill-kinded tag witness in " + printValue(C, V));
    const Type *Want =
        substTagInType(C, V->bodyType(), V->var(), V->tagWitness());
    if (!checkValue(V->payload(), Want, E))
      return failT("existential payload does not match body type in " +
                   printValue(C, V));
    return C.typeExistsTag(V->var(), K, V->bodyType());
  }

  case ValueKind::PackTyVar: {
    for (Region R : V->delta())
      if (!inDelta(R, E))
        return failT("type package bound not a subset of Delta: " +
                     printValue(C, V));
    CheckEnv WitEnv = E;
    WitEnv.Delta = V->delta();
    // Φ|∆'.
    WitEnv.Phi.clear();
    for (const auto &[A, D] : E.Phi)
      if (D.subsetOf(V->delta()))
        WitEnv.Phi.emplace(A, D);
    if (!checkTypeWf(V->typeWitness(), WitEnv))
      return failT("type witness ill-formed under its bound in " +
                   printValue(C, V));
    const Type *Want =
        substTypeVarInType(C, V->bodyType(), V->var(), V->typeWitness());
    if (!checkValue(V->payload(), Want, E))
      return failT("type-package payload does not match body type in " +
                   printValue(C, V));
    return C.typeExistsTyVar(V->var(), V->delta(), V->bodyType());
  }

  case ValueKind::PackRegion: {
    if (Level != LanguageLevel::Generational)
      return failT("region package outside lambda-GC-gen");
    for (Region R : V->delta())
      if (!inDelta(R, E))
        return failT("region package bound not in scope: " +
                     printValue(C, V));
    Region W = V->regionWitness();
    if (!V->delta().contains(W))
      return failT("region witness outside package bound: " +
                   printValue(C, V));
    const Type *Want =
        C.typeAt(substRegionInType(C, V->bodyType(), V->var(), W), W);
    if (!checkValue(V->payload(), Want, E))
      return failT("region-package payload does not match body type in " +
                   printValue(C, V));
    return C.typeExistsRegion(V->var(), V->delta(), V->bodyType());
  }

  case ValueKind::TransApp: {
    const Type *Inner = inferValueImpl(V->payload(), E);
    if (!Inner)
      return nullptr;
    const Type *N = normalizeType(C, Inner, Level);
    if (!N->is(TypeKind::At) || !N->body()->is(TypeKind::Code))
      return failT("translucent application of non-code value: " +
                   printValue(C, V));
    const Type *Code = N->body();
    const auto &Params = Code->tagParams();
    if (Params.size() != V->transTags().size() ||
        Code->regionParams().size() != V->transRegions().size())
      return failT("translucent application arity mismatch: " +
                   printValue(C, V));
    Subst S;
    for (size_t I = 0, NP = Params.size(); I != NP; ++I) {
      const Kind *K = kindOfTag(C, V->transTags()[I], E.Theta);
      if (!K || !Kind::equal(K, Code->tagParamKinds()[I]))
        return failT("translucent tag argument kind mismatch: " +
                     printValue(C, V));
      S.Tags[Params[I]] = V->transTags()[I];
    }
    for (size_t I = 0, NR = V->transRegions().size(); I != NR; ++I) {
      if (!inDelta(V->transRegions()[I], E))
        return failT("translucent region argument not in Delta: " +
                     printValue(C, V));
      S.Regions[Code->regionParams()[I]] = V->transRegions()[I];
    }
    std::vector<const Type *> Args;
    Args.reserve(Code->argTypes().size());
    for (const Type *A : Code->argTypes())
      Args.push_back(applySubst(C, A, S));
    return C.typeTransCode(V->transTags(), V->transRegions(),
                           std::move(Args), N->atRegion());
  }

  case ValueKind::Code: {
    const Type *Ty = C.typeCode(V->tagParams(), V->tagParamKinds(),
                                V->regionParams(), V->valParamTypes());
    if (SkipCodeBodies)
      return Ty;
    // Fig 6: Ψ|cd; cd, ~r; ~t:~κ; ·; ~x:~σ ⊢ e, with σi well-formed under
    // the code's own binders (Θ extends the outer tag environment, see the
    // corresponding note in checkTypeWf).
    CheckEnv Inner;
    Inner.Psi = E.Psi.restrictedTo(RegionSet{});
    Inner.Theta = E.Theta;
    for (Symbol R : V->regionParams())
      Inner.Delta.insert(Region::var(R));
    for (size_t I = 0, N = V->tagParams().size(); I != N; ++I)
      Inner.Theta[V->tagParams()[I]] = V->tagParamKinds()[I];
    for (size_t I = 0, N = V->valParams().size(); I != N; ++I) {
      if (!checkTypeWf(V->valParamTypes()[I], Inner))
        return failT("code parameter type ill-formed: " +
                     printType(C, V->valParamTypes()[I]));
      Inner.Gamma[V->valParams()[I]] = V->valParamTypes()[I];
    }
    if (!checkTerm(V->codeBody(), Inner))
      return failT("code body ill-typed");
    return Ty;
  }
  }
  return nullptr;
}

bool TypeChecker::checkValue(const Value *V, const Type *Expected,
                             const CheckEnv &E) {
  const Type *Want = normalizeType(C, Expected, Level);

  // Structural decomposition keeps checking annotation-free under nested
  // expected types (pairs of sums etc.).
  switch (V->kind()) {
  case ValueKind::Pair:
    if (Want->is(TypeKind::Prod))
      return checkValue(V->first(), Want->left(), E) &&
             checkValue(V->second(), Want->right(), E);
    break;
  case ValueKind::Inl:
    if (Want->is(TypeKind::Left))
      return checkValue(V->payload(), Want->body(), E);
    if (Want->is(TypeKind::Sum)) // subsumption: try either branch
      return checkValue(V, Want->left(), E) || checkValue(V, Want->right(), E);
    break;
  case ValueKind::Inr:
    if (Want->is(TypeKind::Right))
      return checkValue(V->payload(), Want->body(), E);
    if (Want->is(TypeKind::Sum))
      return checkValue(V, Want->left(), E) || checkValue(V, Want->right(), E);
    break;
  case ValueKind::PackTag:
    if (Want->is(TypeKind::ExistsTag)) {
      const Kind *K = kindOfTag(C, V->tagWitness(), E.Theta);
      if (!K || !Kind::equal(K, Want->binderKind()))
        return fail("tag witness kind mismatch in " + printValue(C, V));
      const Type *BodyWant =
          substTagInType(C, Want->body(), Want->var(), V->tagWitness());
      return checkValue(V->payload(), BodyWant, E);
    }
    break;
  case ValueKind::PackTyVar:
    if (Want->is(TypeKind::ExistsTyVar)) {
      CheckEnv WitEnv = E;
      WitEnv.Delta = Want->delta();
      WitEnv.Phi.clear();
      for (const auto &[A, D] : E.Phi)
        if (D.subsetOf(Want->delta()))
          WitEnv.Phi.emplace(A, D);
      if (!checkTypeWf(V->typeWitness(), WitEnv))
        return fail("type witness ill-formed under expected bound in " +
                    printValue(C, V));
      const Type *BodyWant =
          substTypeVarInType(C, Want->body(), Want->var(), V->typeWitness());
      return checkValue(V->payload(), BodyWant, E);
    }
    break;
  case ValueKind::PackRegion:
    if (Want->is(TypeKind::ExistsRegion)) {
      Region W = V->regionWitness();
      if (!Want->delta().contains(W))
        return fail("region witness outside expected bound in " +
                    printValue(C, V));
      const Type *BodyWant =
          C.typeAt(substRegionInType(C, Want->body(), Want->var(), W), W);
      return checkValue(V->payload(), BodyWant, E);
    }
    break;
  default:
    break;
  }

  const Type *Got = inferValueImpl(V, E);
  if (!Got)
    return false;
  if (subtypeOf(Got, Want, E))
    return true;
  return fail("value " + printValue(C, V) + " has type " + printType(C, Got) +
              ", expected " + printType(C, Want));
}

//===----------------------------------------------------------------------===//
// Operation typing
//===----------------------------------------------------------------------===//

const Type *TypeChecker::inferOp(const Op *O, const CheckEnv &E) {
  switch (O->kind()) {
  case OpKind::Val:
    return inferValue(O->value(), E);

  case OpKind::Proj1:
  case OpKind::Proj2: {
    const Type *T = inferValue(O->value(), E);
    if (!T)
      return nullptr;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::Prod))
      return failT("projection from non-pair of type " + printType(C, N));
    return O->is(OpKind::Proj1) ? N->left() : N->right();
  }

  case OpKind::Put: {
    if (!inDelta(O->putRegion(), E))
      return failT("put into region not in Delta: " +
                   printRegion(C, O->putRegion()));
    const Type *T = inferValue(O->value(), E);
    if (!T)
      return nullptr;
    return C.typeAt(T, O->putRegion());
  }

  case OpKind::Get: {
    const Type *T = inferValue(O->value(), E);
    if (!T)
      return nullptr;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::At))
      return failT("get from non-reference of type " + printType(C, N));
    return N->body();
  }

  case OpKind::Strip: {
    if (Level != LanguageLevel::Forward)
      return failT("strip outside lambda-GC-forw");
    const Type *T = inferValue(O->value(), E);
    if (!T)
      return nullptr;
    const Type *N = normalizeType(C, T, Level);
    if (N->is(TypeKind::Left) || N->is(TypeKind::Right))
      return N->body();
    return failT("strip of non-tagged value of type " + printType(C, N));
  }

  case OpKind::Prim: {
    if (!checkValue(O->lhs(), C.typeInt(), E) ||
        !checkValue(O->rhs(), C.typeInt(), E))
      return failT("primitive operands must be int");
    return C.typeInt();
  }
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Environment restriction (the `only` rule)
//===----------------------------------------------------------------------===//

CheckEnv TypeChecker::restrictEnv(const CheckEnv &E,
                                  const RegionSet &DeltaPrime) {
  CheckEnv Out;
  Out.Psi = E.Psi.restrictedTo(DeltaPrime);
  Out.Delta = DeltaPrime;
  Out.Theta = E.Theta;
  // Φ|∆': keep α whose bound fits.
  for (const auto &[A, D] : E.Phi)
    if (D.subsetOf(DeltaPrime))
      Out.Phi.emplace(A, D);
  for (const auto &[R, D] : E.RegionBounds)
    if (D.subsetOf(DeltaPrime))
      Out.RegionBounds.emplace(R, D);
  // Γ|∆': keep x whose type is well-formed in the restricted environment.
  for (const auto &[X, T] : E.Gamma)
    if (checkTypeWf(T, Out))
      Out.Gamma.emplace(X, T);
  return Out;
}

//===----------------------------------------------------------------------===//
// Term well-formedness
//===----------------------------------------------------------------------===//

bool TypeChecker::checkTerm(const Term *E, const CheckEnv &Env) {
  switch (E->kind()) {
  case TermKind::App: {
    const Type *FT = inferValue(E->appFun(), Env);
    if (!FT)
      return false;
    const Type *N = normalizeType(C, FT, Level);

    for (Region R : E->appRegions())
      if (!inDelta(R, Env))
        return fail("application region argument not in Delta: " +
                    printRegion(C, R));

    if (N->is(TypeKind::At) && N->body()->is(TypeKind::Code)) {
      const Type *Code = N->body();
      if (Code->tagParams().size() != E->appTags().size() ||
          Code->regionParams().size() != E->appRegions().size() ||
          Code->argTypes().size() != E->appArgs().size())
        return fail("application arity mismatch");
      Subst S;
      for (size_t I = 0, NP = Code->tagParams().size(); I != NP; ++I) {
        const Kind *K = kindOfTag(C, E->appTags()[I], Env.Theta);
        if (!K || !Kind::equal(K, Code->tagParamKinds()[I]))
          return fail("application tag argument kind mismatch");
        S.Tags[Code->tagParams()[I]] = E->appTags()[I];
      }
      for (size_t I = 0, NP = Code->regionParams().size(); I != NP; ++I)
        S.Regions[Code->regionParams()[I]] = E->appRegions()[I];
      for (size_t I = 0, NA = E->appArgs().size(); I != NA; ++I) {
        const Type *Want = applySubst(C, Code->argTypes()[I], S);
        if (!checkValue(E->appArgs()[I], Want, Env))
          return fail("application argument " + std::to_string(I) +
                      " ill-typed");
      }
      return true;
    }

    if (N->is(TypeKind::TransCode)) {
      if (N->transTags().size() != E->appTags().size() ||
          N->transRegions().size() != E->appRegions().size() ||
          N->argTypes().size() != E->appArgs().size())
        return fail("translucent application arity mismatch");
      for (size_t I = 0, NT = N->transTags().size(); I != NT; ++I)
        if (!tagEqual(C, N->transTags()[I], E->appTags()[I]))
          return fail("translucent application tag mismatch: expected " +
                      printTag(C, N->transTags()[I]) + ", got " +
                      printTag(C, E->appTags()[I]));
      for (size_t I = 0, NR = N->transRegions().size(); I != NR; ++I)
        if (N->transRegions()[I] != E->appRegions()[I])
          return fail("translucent application region mismatch: expected " +
                      printRegion(C, N->transRegions()[I]) + ", got " +
                      printRegion(C, E->appRegions()[I]));
      for (size_t I = 0, NA = E->appArgs().size(); I != NA; ++I) {
        if (!checkValue(E->appArgs()[I], N->argTypes()[I], Env))
          return fail("translucent application argument " +
                      std::to_string(I) + " ill-typed");
      }
      return true;
    }

    return fail("application of non-code value of type " + printType(C, N));
  }

  case TermKind::Let: {
    const Type *T = inferOp(E->letOp(), Env);
    if (!T)
      return false;
    CheckEnv Inner = Env;
    Inner.Gamma[E->binderVar()] = T;
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::Halt:
    return checkValue(E->scrutinee(), C.typeInt(), Env);

  case TermKind::IfGc:
    if (!inDelta(E->region(), Env))
      return fail("ifgc region not in Delta: " +
                  printRegion(C, E->region()));
    return checkTerm(E->sub1(), Env) && checkTerm(E->sub2(), Env);

  case TermKind::OpenTag: {
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::ExistsTag))
      return fail("open-as-tag of non-existential of type " +
                  printType(C, N));
    CheckEnv Inner = Env;
    Inner.Theta[E->binderVar()] = N->binderKind();
    Inner.Gamma[E->binderVar2()] =
        substTagInType(C, N->body(), N->var(), C.tagVar(E->binderVar()));
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::OpenTyVar: {
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::ExistsTyVar))
      return fail("open-as-type of non-existential of type " +
                  printType(C, N));
    CheckEnv Inner = Env;
    Inner.Phi[E->binderVar()] = N->delta();
    Inner.Gamma[E->binderVar2()] =
        substTypeVarInType(C, N->body(), N->var(), C.typeVar(E->binderVar()));
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::OpenRegion: {
    if (!requireLevel(LanguageLevel::Generational, "open-as-region"))
      return false;
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::ExistsRegion))
      return fail("open-as-region of non-existential of type " +
                  printType(C, N));
    CheckEnv Inner = Env;
    Region RV = Region::var(E->binderVar());
    Inner.Delta.insert(RV);
    Inner.RegionBounds[E->binderVar()] = N->delta();
    Inner.Gamma[E->binderVar2()] =
        C.typeAt(substRegionInType(C, N->body(), N->var(), RV), RV);
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::LetRegion: {
    CheckEnv Inner = Env;
    Inner.Delta.insert(Region::var(E->binderVar()));
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::Only: {
    for (Region R : E->onlySet())
      if (!inDelta(R, Env))
        return fail("only keep-set mentions region not in Delta: " +
                    printRegion(C, R));
    CheckEnv Inner = restrictEnv(Env, E->onlySet());
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::Typecase: {
    const Tag *Scrut = normalizeTag(C, E->tag());
    const Kind *K = kindOfTag(C, Scrut, Env.Theta);
    if (!K || !K->isOmega())
      return fail("typecase scrutinee is not a kind-O tag: " +
                  printTag(C, Scrut));

    switch (Scrut->kind()) {
    case TagKind::Int:
      return checkTerm(E->caseInt(), Env);
    case TagKind::Arrow:
      return checkTerm(E->caseArrow(), Env);
    case TagKind::Prod: {
      Subst S;
      S.Tags[E->prodVar1()] = Scrut->left();
      S.Tags[E->prodVar2()] = Scrut->right();
      return checkTerm(applySubst(C, E->caseProd(), S), Env);
    }
    case TagKind::Exists: {
      Subst S;
      S.Tags[E->existsVar()] =
          C.tagLam(Scrut->var(), C.omega(), Scrut->body());
      return checkTerm(applySubst(C, E->caseExists(), S), Env);
    }
    case TagKind::Var: {
      Symbol T = Scrut->var();
      auto Refine = [&](const Tag *Refined, const Term *Arm,
                        CheckEnv ArmEnv) {
        Subst S;
        S.Tags[T] = Refined;
        ArmEnv.Theta.erase(T);
        for (auto &[X, Ty] : ArmEnv.Gamma)
          Ty = applySubst(C, Ty, S);
        return checkTerm(applySubst(C, Arm, S), ArmEnv);
      };
      // ei under [Int/t].
      if (!Refine(C.tagInt(), E->caseInt(), Env))
        return false;
      // eλ under Θ,ta and [(ta → 0)/t]. The paper's printed rule leaves eλ
      // unrefined, but then the collectors' λ arms (Fig 4/9/11/12: return x
      // of type M_{r1}(t) at type M_{r2}(t)) cannot typecheck. Every λCLOS
      // function takes exactly one argument, so we refine with a fresh
      // unary arrow; see DESIGN.md.
      {
        CheckEnv ArmEnv = Env;
        Symbol Ta = C.fresh("ta");
        ArmEnv.Theta[Ta] = C.omega();
        const Tag *Refined = C.tagArrow({C.tagVar(Ta)});
        if (!Refine(Refined, E->caseArrow(), ArmEnv))
          return false;
      }
      // e× under Θ,t1,t2 and [t1×t2/t].
      {
        CheckEnv ArmEnv = Env;
        ArmEnv.Theta[E->prodVar1()] = C.omega();
        ArmEnv.Theta[E->prodVar2()] = C.omega();
        const Tag *Refined =
            C.tagProd(C.tagVar(E->prodVar1()), C.tagVar(E->prodVar2()));
        if (!Refine(Refined, E->caseProd(), ArmEnv))
          return false;
      }
      // e∃ under Θ,te:Ω→Ω and [∃u.te u/t].
      {
        CheckEnv ArmEnv = Env;
        ArmEnv.Theta[E->existsVar()] = C.omegaToOmega();
        Symbol U = C.fresh("t");
        const Tag *Refined = C.tagExists(
            U, C.tagApp(C.tagVar(E->existsVar()), C.tagVar(U)));
        if (!Refine(Refined, E->caseExists(), ArmEnv))
          return false;
      }
      return true;
    }
    default:
      return fail("typecase on a stuck tag application is not supported "
                  "(Fig 6 refines variables only): " +
                  printTag(C, Scrut));
    }
  }

  case TermKind::IfLeft: {
    if (!requireLevel(LanguageLevel::Forward, "ifleft"))
      return false;
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (N->is(TypeKind::Sum)) {
      CheckEnv LEnv = Env;
      LEnv.Gamma[E->binderVar()] = N->left();
      CheckEnv REnv = Env;
      REnv.Gamma[E->binderVar()] = N->right();
      return checkTerm(E->sub1(), LEnv) && checkTerm(E->sub2(), REnv);
    }
    // Algorithmic compromise for mid-execution states: a manifest inl/inr
    // scrutinee has a principal left/right type; check only the branch the
    // machine will take (the other branch is dead in this state).
    if (N->is(TypeKind::Left)) {
      CheckEnv LEnv = Env;
      LEnv.Gamma[E->binderVar()] = N;
      return checkTerm(E->sub1(), LEnv);
    }
    if (N->is(TypeKind::Right)) {
      CheckEnv REnv = Env;
      REnv.Gamma[E->binderVar()] = N;
      return checkTerm(E->sub2(), REnv);
    }
    return fail("ifleft scrutinee is not a sum: " + printType(C, N));
  }

  case TermKind::Set: {
    if (!requireLevel(LanguageLevel::Forward, "set"))
      return false;
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::At))
      return fail("set target is not a reference: " + printType(C, N));
    if (!checkValue(E->setSource(), N->body(), Env))
      return fail("set source does not match cell type " +
                  printType(C, N->body()));
    return checkTerm(E->sub1(), Env);
  }

  case TermKind::LetWiden: {
    if (!requireLevel(LanguageLevel::Forward, "widen"))
      return false;
    const Type *T = inferValue(E->scrutinee(), Env);
    if (!T)
      return false;
    const Type *N = normalizeType(C, T, Level);
    if (!N->is(TypeKind::At))
      return fail("widen argument must be heap-allocated, got " +
                  printType(C, N));
    Region From = N->atRegion();
    Region To = E->region();
    const Type *WantM = normalizeType(C, C.typeM(From, E->tag()), Level);
    if (!alphaEqualType(N, WantM))
      return fail("widen argument is not M-view of its tag: got " +
                  printType(C, N) + ", want " + printType(C, WantM));
    if (!inDelta(From, Env) || !inDelta(To, Env))
      return fail("widen regions must be in Delta");
    // Body: Ψ|cd; cd, ρ, ρ'; Θ; Φ|ρρ'; x : C_{ρ,ρ'}(τ).
    CheckEnv Inner;
    RegionSet Dp{From, To};
    Inner.Psi = Env.Psi.restrictedTo(RegionSet{});
    Inner.Delta = Dp;
    Inner.Theta = Env.Theta;
    for (const auto &[A, D] : Env.Phi)
      if (D.subsetOf(Dp))
        Inner.Phi.emplace(A, D);
    Inner.Gamma[E->binderVar()] = C.typeC(From, To, E->tag());
    return checkTerm(E->sub1(), Inner);
  }

  case TermKind::IfReg: {
    if (!requireLevel(LanguageLevel::Generational, "ifreg"))
      return false;
    Region A = E->ifregLhs(), B = E->ifregRhs();
    if (!inDelta(A, Env) || !inDelta(B, Env))
      return fail("ifreg regions must be in Delta");

    auto CheckRefined = [&](Symbol Var, Region Rep) {
      Subst S;
      S.Regions[Var] = Rep;
      CheckEnv Refined;
      Refined.Psi = Env.Psi;
      for (Region R : Env.Delta)
        Refined.Delta.insert(R.isVar() && R.sym() == Var ? Rep : R);
      if (Rep.isVar())
        Refined.Delta.insert(Rep);
      Refined.Theta = Env.Theta;
      for (const auto &[Al, D] : Env.Phi)
        Refined.Phi.emplace(Al, D.substituted(Region::var(Var), Rep));
      for (const auto &[Rv, D] : Env.RegionBounds)
        if (Rv != Var)
          Refined.RegionBounds.emplace(
              Rv, D.substituted(Region::var(Var), Rep));
      for (const auto &[X, Ty] : Env.Gamma)
        Refined.Gamma.emplace(X, applySubst(C, Ty, S));
      return checkTerm(applySubst(C, E->sub1(), S), Refined);
    };

    if (A.isName() && B.isName()) {
      // Machine states: only the branch that will be taken is live.
      return A == B ? checkTerm(E->sub1(), Env) : checkTerm(E->sub2(), Env);
    }
    if (A.isVar() && B.isName())
      return CheckRefined(A.sym(), B) && checkTerm(E->sub2(), Env);
    if (A.isName() && B.isVar())
      return CheckRefined(B.sym(), A) && checkTerm(E->sub2(), Env);
    // Both variables: unify to a fresh region variable in e1.
    {
      Symbol Fresh = C.fresh("r");
      Region RF = Region::var(Fresh);
      Subst S;
      S.Regions[A.sym()] = RF;
      S.Regions[B.sym()] = RF;
      CheckEnv Refined;
      Refined.Psi = Env.Psi;
      for (Region R : Env.Delta) {
        if (R.isVar() && (R.sym() == A.sym() || R.sym() == B.sym()))
          Refined.Delta.insert(RF);
        else
          Refined.Delta.insert(R);
      }
      Refined.Theta = Env.Theta;
      for (const auto &[Al, D] : Env.Phi)
        Refined.Phi.emplace(
            Al, D.substituted(A, RF).substituted(B, RF));
      for (const auto &[Rv, D] : Env.RegionBounds)
        if (Rv != A.sym() && Rv != B.sym())
          Refined.RegionBounds.emplace(
              Rv, D.substituted(A, RF).substituted(B, RF));
      for (const auto &[X, Ty] : Env.Gamma)
        Refined.Gamma.emplace(X, applySubst(C, Ty, S));
      if (!checkTerm(applySubst(C, E->sub1(), S), Refined))
        return false;
      return checkTerm(E->sub2(), Env);
    }
  }

  case TermKind::If0:
    if (!checkValue(E->scrutinee(), C.typeInt(), Env))
      return fail("if0 scrutinee must be int");
    return checkTerm(E->sub1(), Env) && checkTerm(E->sub2(), Env);
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Ψ ⊢ M(a) : Ψ(a), one cell
//===----------------------------------------------------------------------===//

bool TypeChecker::checkHeapCell(Address A, const Value *V, const Type *CellTy,
                                bool IsCd, bool CheckCodeBody,
                                const CheckEnv &E, CellJudgmentCache *Cache,
                                std::string *Error) {
  auto failCell = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  if (!CellTy)
    return failCell("cell missing from Psi: " + printValue(C, C.valAddr(A)));
  if (IsCd) {
    if (!CellTy->is(TypeKind::Code) || !V->is(ValueKind::Code))
      return failCell("cd region holds a non-code cell (Fig 7): " +
                      printValue(C, C.valAddr(A)));
    if (!CheckCodeBody)
      return true;
  }
  if (Cache && Cache->contains(V, CellTy)) {
    ++Cache->Hits;
    return true;
  }
  bool SavedSkip = SkipCodeBodies;
  SkipCodeBodies = IsCd ? false : true;
  Diags.clear(); // self-contained failure message for this one cell
  bool Ok = checkValue(V, CellTy, E);
  SkipCodeBodies = SavedSkip;
  if (!Ok)
    return failCell("cell " + printValue(C, C.valAddr(A)) + " := " +
                    printValue(C, V) + " does not check against Psi type " +
                    printType(C, CellTy) + "\n" + Diags.str());
  if (Cache) {
    ++Cache->Misses;
    Cache->insert(V, CellTy);
  }
  return Ok;
}
