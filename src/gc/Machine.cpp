//===- gc/Machine.cpp - Small-step allocation semantics -------------------===//
///
/// \file
/// Implements Fig 5 (λGC), the §7 rules (ifleft/strip/set/widen — with the
/// paper's `ifleft (inr v) ⇒ el` typo corrected to `er`), and the §8 rules
/// (region-existential open, ifreg). See Machine.h for the Ψ-maintenance
/// contract.
///
//===----------------------------------------------------------------------===//

#include "gc/Machine.h"

using namespace scav;
using namespace scav::gc;

Address Machine::reserveCode(std::string_view Label) {
  Symbol CdS = C.cd().sym();
  RegionData *R = Mem.region(CdS);
  assert(R && "cd region must exist");
  assert(R->Cells.size() < std::numeric_limits<uint32_t>::max() &&
         "cd offset space exhausted");
  (void)R;
  uint32_t Off = Mem.reserveSlot(CdS); // placeholder until defineCode
  // Remember the label: tracing names collector-phase App events after it,
  // and drivers can resolve it back for diagnostics.
  CdLabels.emplace(Off, std::string(Label));
  return Address{C.cd(), Off};
}

void Machine::defineCode(Address A, const Value *Code) {
  assert(A.R == C.cd() && "code must live in cd");
  assert(Code->is(ValueKind::Code) && "cd region only holds code (§6.2)");
  RegionData *R = Mem.region(C.cd().sym());
  assert(A.Offset < R->Cells.size() && "defineCode on unreserved label");
  // Through Memory::fill, not a raw cell store: the write must land in cd's
  // dirty log so an attached incremental checker re-validates the slot.
  Mem.fill(A, Code);
  ++R->TotalAllocated;
  // Ψ(cd.ℓ) is the code's declared type.
  const Type *Ty = C.typeCode(Code->tagParams(), Code->tagParamKinds(),
                              Code->regionParams(), Code->valParamTypes());
  Psi.set(A, Ty);
}

Address Machine::installCode(std::string_view Label, const Value *Code) {
  Address A = reserveCode(Label);
  defineCode(A, Code);
  return A;
}

Region Machine::createRegion(std::string_view BaseName, uint32_t Capacity) {
  Symbol S = C.fresh(BaseName);
  Mem.addRegion(S, Capacity == 0 ? Config.DefaultRegionCapacity : Capacity);
  Mem.region(S)->Epoch = OnlyEpoch;
  Psi.addRegion(S);
  ++Stats.RegionsCreated;
  journal(DeltaKind::RegionCreated, S);
  if (SCAV_TRACE_ENABLED()) {
    support::TraceSink &Sink = support::TraceSink::get();
    Sink.instant("region", "region.create");
    Sink.counter("regions", static_cast<double>(Mem.numRegions()));
    Sink.counter(traceRegionName(S), 0);
  }
  return Region::name(S);
}

const Value *Machine::allocate(Region R, const Value *V) {
  assert(R.isName() && "allocate into a concrete region");
  std::optional<Address> A = Mem.put(R.sym(), V);
  assert(A && "allocate failed: reclaimed region or offset-space overflow");
  ++Stats.Puts;
  recordPut(*A, V);
  return C.valAddr(*A);
}

void Machine::start(const Term *E) {
  Cur = E;
  EnvS = Subst{};
  St = Status::Running;
  HaltVal = nullptr;
  StuckMsg.clear();
  PauseOpen = false;
  if (Config.Eval == EvalMode::Vm && Backend)
    Backend->onStart(E);
}

const Term *Machine::currentTerm() const {
  if (Config.Eval == EvalMode::Vm && Backend)
    return Backend->currentTerm();
  if (!Cur || Config.Eval != EvalMode::Env || EnvS.empty())
    return Cur;
  // Force boundary: external observers (checkState, the soundness harness,
  // failure diagnostics) must see exactly the paper's substituted (M, e)
  // state. Deliberately not memoized: checkState calls this under a
  // GcContext::Scope, so caching the forced term would leave a dangling
  // pointer once the scope unwinds.
  ++Stats.EnvForces;
  CloseCounters Ctr;
  const Term *T = closeTerm(C, Cur, EnvS, &Ctr);
  // Observer-driven lookups are counted apart from EnvLookups: currentTerm
  // runs once per *observation* (checkState, diagnostics), so folding its
  // lookups into the execution counter made EnvLookups depend on how often
  // the run was watched (the env-counter drift fixed in this PR).
  Stats.EnvForceLookups += Ctr.Lookups;
  return T;
}

const Type *Machine::inferRuntimeType(const Value *V) {
  GcContext::TypeworkTimer Timer(C.stats());
  InferDiags.clear();
  CheckEnv E;
  E.Psi.M = &Psi;
  E.Psi.Cd = C.cd().sym();
  E.Delta = Psi.domain();
  return Checker.inferValue(V, E);
}

void Machine::recordPut(Address A, const Value *V) {
  if (!Config.TrackTypes)
    return;
  // Fast path: a value whose type was already inferred under this Ψ keeps
  // that type regardless of the target cell (inference never looks at the
  // destination region). The cache is cleared whenever Ψ is rewritten.
  if (C.interningEnabled()) {
    auto It = PutTypeCache.find(V);
    if (It != PutTypeCache.end()) {
      ++Stats.RecordPutCacheHits;
      Psi.set(A, It->second);
      return;
    }
    ++Stats.RecordPutCacheMisses;
  }
  const Type *T = inferRuntimeType(V);
  if (!T) {
    if (TypeTrackingOkFlag) {
      TypeTrackingOkFlag = false;
      TypeTrackingMsg = "put of value that does not infer: " +
                        printValue(C, V) + "\n" + InferDiags.str();
    }
    return;
  }
  Psi.set(A, T);
  if (C.interningEnabled())
    PutTypeCache.emplace(V, T);
}

//===----------------------------------------------------------------------===//
// The T iterator (Lemma C.8) on Ψ cell types
//===----------------------------------------------------------------------===//

const Type *Machine::renameRegionName(const Type *T, Symbol From, Symbol To) {
  auto Ren = [&](Region R) {
    return (R.isName() && R.sym() == From) ? Region::name(To) : R;
  };
  switch (T->kind()) {
  case TypeKind::Int:
  case TypeKind::TyVar:
  case TypeKind::Code:
    return T;
  case TypeKind::Prod:
    return C.typeProd(renameRegionName(T->left(), From, To),
                      renameRegionName(T->right(), From, To));
  case TypeKind::Sum:
    return C.typeSum(renameRegionName(T->left(), From, To),
                     renameRegionName(T->right(), From, To));
  case TypeKind::Left:
    return C.typeLeft(renameRegionName(T->body(), From, To));
  case TypeKind::Right:
    return C.typeRight(renameRegionName(T->body(), From, To));
  case TypeKind::At:
    return C.typeAt(renameRegionName(T->body(), From, To), Ren(T->atRegion()));
  case TypeKind::MApp: {
    std::vector<Region> Rs;
    for (Region R : T->mRegions())
      Rs.push_back(Ren(R));
    return C.typeM(std::move(Rs), T->tag());
  }
  case TypeKind::CApp:
    return C.typeC(Ren(T->cFrom()), Ren(T->cTo()), T->tag());
  case TypeKind::ExistsTag:
    return C.typeExistsTag(T->var(), T->binderKind(),
                           renameRegionName(T->body(), From, To));
  case TypeKind::ExistsTyVar: {
    RegionSet D;
    for (Region R : T->delta())
      D.insert(Ren(R));
    return C.typeExistsTyVar(T->var(), std::move(D),
                             renameRegionName(T->body(), From, To));
  }
  case TypeKind::ExistsRegion: {
    RegionSet D;
    for (Region R : T->delta())
      D.insert(Ren(R));
    return C.typeExistsRegion(T->var(), std::move(D),
                              renameRegionName(T->body(), From, To));
  }
  case TypeKind::TransCode: {
    std::vector<Region> Rs;
    for (Region R : T->transRegions())
      Rs.push_back(Ren(R));
    std::vector<const Type *> Args;
    for (const Type *A : T->argTypes())
      Args.push_back(renameRegionName(A, From, To));
    return C.typeTransCode(T->transTags(), std::move(Rs), std::move(Args),
                           Ren(T->atRegion()));
  }
  }
  return T;
}

const Type *Machine::widenPsiType(const Type *T, Symbol FromR, Symbol ToR) {
  Region From = Region::name(FromR);
  switch (T->kind()) {
  case TypeKind::Int:
  case TypeKind::Code:
  case TypeKind::TransCode:
  case TypeKind::TyVar:
  case TypeKind::Sum:   // already collector-view; T is idempotent on it
  case TypeKind::Right:
  case TypeKind::CApp:
    return T;
  case TypeKind::Prod:
    return C.typeProd(widenPsiType(T->left(), FromR, ToR),
                      widenPsiType(T->right(), FromR, ToR));
  case TypeKind::ExistsTag:
    return C.typeExistsTag(T->var(), T->binderKind(),
                           widenPsiType(T->body(), FromR, ToR));
  case TypeKind::ExistsTyVar:
    return C.typeExistsTyVar(T->var(), T->delta(),
                             widenPsiType(T->body(), FromR, ToR));
  case TypeKind::ExistsRegion:
    return C.typeExistsRegion(T->var(), T->delta(),
                              widenPsiType(T->body(), FromR, ToR));
  case TypeKind::MApp:
    // T(M_ν(τ)) = C_{ν,ν'}(τ); M at other regions is untouched.
    if (T->mRegions().size() == 1 && T->mRegions()[0] == From)
      return C.typeC(From, Region::name(ToR), T->tag());
    return T;
  case TypeKind::Left:
    // A bare mutator cell type `left σ` gains the forwarding alternative:
    // left σ  ↦  left T(σ) + right((left σ[ν'/ν]) at ν').
    return C.typeSum(
        C.typeLeft(widenPsiType(T->body(), FromR, ToR)),
        C.typeRight(C.typeAt(
            C.typeLeft(renameRegionName(T->body(), FromR, ToR)),
            Region::name(ToR))));
  case TypeKind::At: {
    if (T->atRegion() == C.cd())
      return T;
    if (T->atRegion() == From && T->body()->is(TypeKind::Left))
      return C.typeAt(widenPsiType(T->body(), FromR, ToR), From);
    return C.typeAt(widenPsiType(T->body(), FromR, ToR), T->atRegion());
  }
  }
  return T;
}

const Value *Machine::widenValueTypes(const Value *V, Symbol FromR,
                                      Symbol ToR) {
  switch (V->kind()) {
  case ValueKind::Int:
  case ValueKind::Var:
  case ValueKind::Addr:
  case ValueKind::Code: // cd cells are never widened
    return V;
  case ValueKind::Pair:
    return C.valPair(widenValueTypes(V->first(), FromR, ToR),
                     widenValueTypes(V->second(), FromR, ToR));
  case ValueKind::Inl:
    return C.valInl(widenValueTypes(V->payload(), FromR, ToR));
  case ValueKind::Inr:
    return C.valInr(widenValueTypes(V->payload(), FromR, ToR));
  case ValueKind::TransApp:
    return C.valTransApp(widenValueTypes(V->payload(), FromR, ToR),
                         V->transTags(), V->transRegions());
  case ValueKind::PackTag:
    return C.valPackTag(V->var(), V->tagWitness(),
                        widenValueTypes(V->payload(), FromR, ToR),
                        widenPsiType(V->bodyType(), FromR, ToR));
  case ValueKind::PackTyVar:
    return C.valPackTyVar(V->var(), V->delta(),
                          widenPsiType(V->typeWitness(), FromR, ToR),
                          widenValueTypes(V->payload(), FromR, ToR),
                          widenPsiType(V->bodyType(), FromR, ToR));
  case ValueKind::PackRegion:
    return C.valPackRegion(V->var(), V->delta(), V->regionWitness(),
                           widenValueTypes(V->payload(), FromR, ToR),
                           widenPsiType(V->bodyType(), FromR, ToR));
  }
  return V;
}

//===----------------------------------------------------------------------===//
// Trace emission (only reached when the global sink is enabled)
//===----------------------------------------------------------------------===//

namespace {
/// Stable per-kind names for mutator-step instants.
const char *stepEventName(TermKind K) {
  switch (K) {
  case TermKind::App:
    return "step.app";
  case TermKind::Let:
    return "step.let";
  case TermKind::Halt:
    return "step.halt";
  case TermKind::IfGc:
    return "step.ifgc";
  case TermKind::OpenTag:
  case TermKind::OpenTyVar:
  case TermKind::OpenRegion:
    return "step.open";
  case TermKind::LetRegion:
    return "step.letregion";
  case TermKind::Only:
    return "step.only";
  case TermKind::Typecase:
    return "step.typecase";
  case TermKind::IfLeft:
    return "step.ifleft";
  case TermKind::Set:
    return "step.set";
  case TermKind::LetWiden:
    return "step.widen";
  case TermKind::IfReg:
    return "step.ifreg";
  case TermKind::If0:
    return "step.if0";
  }
  return "step.unknown";
}
} // namespace

const char *Machine::traceRegionName(Symbol S) {
  auto It = TraceRegionNames.find(S);
  if (It != TraceRegionNames.end())
    return It->second;
  const char *Name = support::TraceSink::get().intern(
      "cells." + std::string(C.symbols().name(S)));
  TraceRegionNames.emplace(S, Name);
  return Name;
}

void Machine::traceRegionCounters() {
  support::TraceSink &Sink = support::TraceSink::get();
  for (const auto &[S, R] : Mem.Regions) {
    if (S == C.cd().sym())
      continue;
    Sink.counter(traceRegionName(S), static_cast<double>(R.Cells.size()));
  }
}

void Machine::traceStep(const Term *E) {
  support::TraceSink &Sink = support::TraceSink::get();
  Sink.instant("step", stepEventName(E->kind()));
  // Periodic counter tracks: cheap enough at 1/64 steps to leave on for a
  // whole run, dense enough to read heap growth off the timeline.
  if (Stats.Steps % 64 == 0) {
    Sink.counter("live_cells", static_cast<double>(Mem.liveDataCells()));
    Sink.counter("env_depth", static_cast<double>(envDepth()));
    Sink.counter("journal_len",
                 static_cast<double>(journalEnd() - journalBegin()));
  }
}

void Machine::traceAppPhase(Address CodeAddr) {
  if (CodeAddr.R != C.cd())
    return;
  auto It = PhaseMarks.find(CodeAddr.Offset);
  if (It == PhaseMarks.end())
    return;
  // Pause clock first: it ticks whether or not tracing is enabled.
  if (It->second && PauseHist && !PauseOpen) {
    PauseOpen = true;
    PauseStart = std::chrono::steady_clock::now();
  }
  if (!SCAV_TRACE_ENABLED())
    return;
  support::TraceSink &Sink = support::TraceSink::get();
  if (It->second && !TraceCollectOpen) {
    Sink.begin("collector", "collect");
    TraceCollectOpen = true;
  }
  // Interned in markCollectorPhase: the ring sink outlives this machine, so
  // event names must not point into machine-owned storage.
  auto LIt = TracePhaseNames.find(CodeAddr.Offset);
  if (LIt != TracePhaseNames.end())
    Sink.instant("collector", LIt->second);
}

//===----------------------------------------------------------------------===//
// Step bodies shared between the interpreters and the bytecode backend
//===----------------------------------------------------------------------===//

void Machine::applyOnly(const RegionSet &Keep) {
  // Journal the drop list *before* restrictTo erases it.
  if (JournalOn)
    for (const auto &[S2, _] : Mem.Regions)
      if (S2 != C.cd().sym() && !Keep.contains(Region::name(S2)))
        journal(DeltaKind::RegionDropped, S2);
  if (SCAV_TRACE_ENABLED()) {
    support::TraceSink &Sink = support::TraceSink::get();
    for (const auto &[S2, _] : Mem.Regions)
      if (S2 != C.cd().sym() && !Keep.contains(Region::name(S2))) {
        Sink.instant("region", "region.drop");
        Sink.counter(traceRegionName(S2), 0);
      }
  }
  size_t Reclaimed = Mem.restrictTo(Keep);
  Stats.RegionsReclaimed += Reclaimed;
  if (Config.HeapGrowthFactor != 0 && Config.DefaultRegionCapacity != 0) {
    // Resize the collection's own to-spaces (regions born this epoch);
    // older regions keep their capacity so that triggers like the
    // generational mutator's `ifgc ro` can still fire.
    for (auto &[S2, R2] : Mem.Regions) {
      if (S2 == C.cd().sym() || R2.Capacity == 0 || R2.Epoch != OnlyEpoch)
        continue;
      // Compute in 64 bits and clamp: cells × factor can exceed
      // uint32_t, and the old straight cast truncated — a huge region
      // could come out of a collection with a tiny (even zero) capacity.
      uint64_t Want64 = static_cast<uint64_t>(R2.Cells.size()) *
                        Config.HeapGrowthFactor;
      uint32_t Want = static_cast<uint32_t>(std::min<uint64_t>(
          Want64, std::numeric_limits<uint32_t>::max()));
      R2.Capacity = std::max(Config.DefaultRegionCapacity, Want);
    }
  }
  ++OnlyEpoch;
  // `only` is how every collection ends, so it closes an open pause clock
  // (tracing-independent; the trace scope below closes separately).
  if (PauseOpen) {
    PauseHist->record(std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - PauseStart)
                          .count());
    PauseOpen = false;
  }
  // Ψ|∆.
  std::vector<Symbol> Drop;
  for (const auto &[S2, _] : Psi.Regions)
    if (S2 != C.cd().sym() && !Keep.contains(Region::name(S2)))
      Drop.push_back(S2);
  for (Symbol S2 : Drop)
    Psi.removeRegion(S2);
  // Cached inferred types may mention (or have been inferred under) the
  // regions just dropped. The journal already carries the precise
  // RegionDropped events, so no ExternalMutation is emitted.
  clearPutTypeCache();
  if (SCAV_TRACE_ENABLED()) {
    support::TraceSink &Sink = support::TraceSink::get();
    Sink.counter("regions", static_cast<double>(Mem.numRegions()));
    Sink.counter("live_cells", static_cast<double>(Mem.liveDataCells()));
    traceRegionCounters();
    // `only` is how every collection ends (gcend frees all but the
    // to-space), so it closes the open collect scope.
    if (TraceCollectOpen) {
      Sink.end("collector", "collect");
      TraceCollectOpen = false;
    }
  }
}

void Machine::applyWiden(Symbol From, Symbol To) {
  if (Config.TrackTypes) {
    auto It = Psi.Regions.find(From);
    if (It != Psi.Regions.end())
      for (const Type *&Ty : It->second.Cells)
        if (Ty)
          Ty = widenPsiType(Ty, From, To);
    if (RegionData *R = Mem.region(From)) {
      // The compact layout must see every cell as a Value to rewrite its
      // embedded annotations, then mirror the rewrite into the word image.
      // Like the legacy in-place writes below, the re-encode is neither
      // version-stamped nor dirty-logged: the RegionWidened journal event
      // is the consumer's signal.
      Mem.decodeRegion(*R);
      for (size_t Off = 0; Off != R->Cells.size(); ++Off) {
        const Value *Cell = R->Cells[Off];
        if (!Cell)
          continue;
        const Value *NewCell = widenValueTypes(Cell, From, To);
        R->Cells[Off] = NewCell;
        if (Mem.compact())
          R->Words[Off] = Mem.encodeValue(*R, NewCell);
      }
    }
    // Ψ cell types just changed view (M → C); cached inferences are stale.
    // Journaled as the precise RegionWidened event below, so the internal
    // clear suffices.
    clearPutTypeCache();
  }
  journal(DeltaKind::RegionWidened, From, To);
  TRACE_INSTANT("region", "region.widen");
}

//===----------------------------------------------------------------------===//
// The step function
//===----------------------------------------------------------------------===//

Machine::Status Machine::step() {
  if (St != Status::Running)
    return St;
  if (Config.Eval == EvalMode::Vm) {
    if (!Backend)
      return stuck("vm eval mode with no execution backend attached");
    return Backend->step();
  }
  const Term *E = Cur;
  ++Stats.Steps;
  if (SCAV_TRACE_ENABLED())
    traceStep(E);

  switch (E->kind()) {
  case TermKind::App: {
    ++Stats.Applications;
    const Value *F = resolveValue(E->appFun());
    if (F->is(ValueKind::TransApp))
      F = F->payload(); // (vJ~τK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v)
    if (!F->is(ValueKind::Addr))
      return stuck("application of non-address value: " + printValue(C, F));
    if (SCAV_TRACE_ENABLED() || PauseHist)
      traceAppPhase(F->address());
    const Value *Code = Mem.get(F->address());
    if (!Code)
      return stuck("application of dangling code address: " +
                   printValue(C, F));
    if (!Code->is(ValueKind::Code))
      return stuck("application of non-code cell: " + printValue(C, F));
    if (Code->tagParams().size() != E->appTags().size() ||
        Code->regionParams().size() != E->appRegions().size() ||
        Code->valParams().size() != E->appArgs().size())
      return stuck("application arity mismatch at " + printValue(C, F));
    if (envMode()) {
      // The callee's body is closed up to its parameters (closure-converted
      // code), so the environment is *replaced*, not extended — the new
      // environment is exactly the binding set Fig 5's β-step substitutes,
      // and the body itself is entered shared, with no traversal at all.
      Subst NewEnv;
      for (size_t I = 0, N = E->appTags().size(); I != N; ++I)
        NewEnv.Tags[Code->tagParams()[I]] =
            normalizeTag(C, resolveTag(E->appTags()[I]));
      for (size_t I = 0, N = E->appRegions().size(); I != N; ++I) {
        Region R = resolveRegion(E->appRegions()[I]);
        if (!R.isName())
          return stuck("application with unresolved region variable " +
                       printRegion(C, R));
        NewEnv.Regions[Code->regionParams()[I]] = R;
      }
      for (size_t I = 0, N = E->appArgs().size(); I != N; ++I)
        NewEnv.Vals[Code->valParams()[I]] = resolveValue(E->appArgs()[I]);
      Stats.EnvBindings +=
          E->appTags().size() + E->appRegions().size() + E->appArgs().size();
      EnvS = std::move(NewEnv);
      noteEnvDepth();
      Cur = Code->codeBody();
      return St;
    }
    Subst S;
    for (size_t I = 0, N = E->appTags().size(); I != N; ++I)
      S.Tags[Code->tagParams()[I]] = normalizeTag(C, E->appTags()[I]);
    for (size_t I = 0, N = E->appRegions().size(); I != N; ++I) {
      Region R = E->appRegions()[I];
      if (!R.isName())
        return stuck("application with unresolved region variable " +
                     printRegion(C, R));
      S.Regions[Code->regionParams()[I]] = R;
    }
    for (size_t I = 0, N = E->appArgs().size(); I != N; ++I)
      S.Vals[Code->valParams()[I]] = E->appArgs()[I];
    Cur = applySubst(C, Code->codeBody(), S);
    return St;
  }

  case TermKind::Let: {
    const Op *O = E->letOp();
    const Value *BV = nullptr;
    switch (O->kind()) {
    case OpKind::Val:
      BV = resolveValue(O->value());
      break;
    case OpKind::Proj1:
    case OpKind::Proj2: {
      ++Stats.Projections;
      const Value *V = resolveValue(O->value());
      if (!V->is(ValueKind::Pair))
        return stuck("projection from non-pair: " + printValue(C, V));
      BV = O->is(OpKind::Proj1) ? V->first() : V->second();
      break;
    }
    case OpKind::Put: {
      ++Stats.Puts;
      Region R = resolveRegion(O->putRegion());
      if (!R.isName())
        return stuck("put into unresolved region variable " +
                     printRegion(C, R));
      // Stored values escape the step loop into memory, so they are closed
      // here (the Env-mode force boundary for `put`).
      const Value *SV = resolveValue(O->value());
      std::optional<Address> A = Mem.put(R.sym(), SV);
      if (!A)
        return stuck(Mem.hasRegion(R.sym())
                         ? "put overflows the region offset space of " +
                               printRegion(C, R)
                         : "put into reclaimed region " + printRegion(C, R));
      recordPut(*A, SV);
      BV = C.valAddr(*A);
      break;
    }
    case OpKind::Get: {
      ++Stats.Gets;
      const Value *V = resolveValue(O->value());
      if (!V->is(ValueKind::Addr))
        return stuck("get of non-address: " + printValue(C, V));
      const Value *Cell = Mem.get(V->address());
      if (!Cell)
        return stuck("get of dangling address: " + printValue(C, V));
      BV = Cell;
      break;
    }
    case OpKind::Strip: {
      const Value *V = resolveValue(O->value());
      if (!V->is(ValueKind::Inl) && !V->is(ValueKind::Inr))
        return stuck("strip of untagged value: " + printValue(C, V));
      BV = V->payload();
      break;
    }
    case OpKind::Prim: {
      const Value *L = resolveValue(O->lhs()), *R = resolveValue(O->rhs());
      if (!L->is(ValueKind::Int) || !R->is(ValueKind::Int))
        return stuck("primitive on non-integers");
      int64_t A = L->intValue(), B = R->intValue(), Res = 0;
      switch (O->primOp()) {
      case PrimOp::Add:
        Res = A + B;
        break;
      case PrimOp::Sub:
        Res = A - B;
        break;
      case PrimOp::Mul:
        Res = A * B;
        break;
      case PrimOp::Le:
        Res = A <= B ? 1 : 0;
        break;
      }
      BV = C.valInt(Res);
      break;
    }
    }
    continueBindVal(E->binderVar(), BV, E->sub1());
    return St;
  }

  case TermKind::Halt: {
    // Halt values escape the machine: force them closed in Env mode.
    const Value *V = resolveValue(E->scrutinee());
    St = Status::Halted;
    HaltVal = V;
    return St;
  }

  case TermKind::IfGc: {
    Region R = resolveRegion(E->region());
    if (!R.isName())
      return stuck("ifgc on unresolved region variable");
    if (Mem.isFull(R.sym())) {
      ++Stats.IfGcTaken;
      TRACE_INSTANT("collector", "ifgc.taken");
      Cur = E->sub1();
    } else {
      ++Stats.IfGcSkipped;
      Cur = E->sub2();
    }
    return St;
  }

  case TermKind::OpenTag: {
    ++Stats.Opens;
    const Value *V = resolveValue(E->scrutinee());
    if (!V->is(ValueKind::PackTag))
      return stuck("open-as-tag of non-package: " + printValue(C, V));
    const Tag *W = normalizeTag(C, V->tagWitness());
    if (envMode()) {
      bindTag(E->binderVar(), W);
      bindVal(E->binderVar2(), V->payload());
      Cur = E->sub1();
      return St;
    }
    Subst S;
    S.Tags[E->binderVar()] = W;
    S.Vals[E->binderVar2()] = V->payload();
    Cur = applySubst(C, E->sub1(), S);
    return St;
  }

  case TermKind::OpenTyVar: {
    ++Stats.Opens;
    const Value *V = resolveValue(E->scrutinee());
    if (!V->is(ValueKind::PackTyVar))
      return stuck("open-as-type of non-package: " + printValue(C, V));
    if (envMode()) {
      bindType(E->binderVar(), V->typeWitness());
      bindVal(E->binderVar2(), V->payload());
      Cur = E->sub1();
      return St;
    }
    Subst S;
    S.Types[E->binderVar()] = V->typeWitness();
    S.Vals[E->binderVar2()] = V->payload();
    Cur = applySubst(C, E->sub1(), S);
    return St;
  }

  case TermKind::OpenRegion: {
    ++Stats.Opens;
    const Value *V = resolveValue(E->scrutinee());
    if (!V->is(ValueKind::PackRegion))
      return stuck("open-as-region of non-package: " + printValue(C, V));
    if (!V->regionWitness().isName())
      return stuck("region package with unresolved witness");
    if (envMode()) {
      bindRegion(E->binderVar(), V->regionWitness());
      bindVal(E->binderVar2(), V->payload());
      Cur = E->sub1();
      return St;
    }
    Subst S;
    S.Regions[E->binderVar()] = V->regionWitness();
    S.Vals[E->binderVar2()] = V->payload();
    Cur = applySubst(C, E->sub1(), S);
    return St;
  }

  case TermKind::LetRegion: {
    Region R = createRegion(C.name(E->binderVar()), 0);
    if (envMode()) {
      bindRegion(E->binderVar(), R);
      Cur = E->sub1();
      return St;
    }
    Subst S;
    S.Regions[E->binderVar()] = R;
    Cur = applySubst(C, E->sub1(), S);
    return St;
  }

  case TermKind::Only: {
    ++Stats.OnlyOps;
    Stats.OnlyRegionsScanned += Mem.numRegions();
    RegionSet Keep = resolveRegionSet(E->onlySet());
    for (Region R : Keep)
      if (!R.isName())
        return stuck("only with unresolved region variable");
    applyOnly(Keep);
    Cur = E->sub1();
    return St;
  }

  case TermKind::Typecase: {
    ++Stats.TypecaseSteps;
    const Tag *T = normalizeTag(C, resolveTag(E->tag()));
    switch (T->kind()) {
    case TagKind::Int:
      Cur = E->caseInt();
      return St;
    case TagKind::Arrow:
      Cur = E->caseArrow();
      return St;
    case TagKind::Prod: {
      if (envMode()) {
        bindTag(E->prodVar1(), T->left());
        bindTag(E->prodVar2(), T->right());
        Cur = E->caseProd();
        return St;
      }
      Subst S;
      S.Tags[E->prodVar1()] = T->left();
      S.Tags[E->prodVar2()] = T->right();
      Cur = applySubst(C, E->caseProd(), S);
      return St;
    }
    case TagKind::Exists: {
      const Tag *Lam = C.tagLam(T->var(), C.omega(), T->body());
      if (envMode()) {
        bindTag(E->existsVar(), Lam);
        Cur = E->caseExists();
        return St;
      }
      Subst S;
      S.Tags[E->existsVar()] = Lam;
      Cur = applySubst(C, E->caseExists(), S);
      return St;
    }
    default:
      return stuck("typecase on non-constructor tag: " + printTag(C, T));
    }
  }

  case TermKind::IfLeft: {
    const Value *V = resolveValue(E->scrutinee());
    if (V->is(ValueKind::Inl))
      continueBindVal(E->binderVar(), V, E->sub1());
    else if (V->is(ValueKind::Inr))
      continueBindVal(E->binderVar(), V,
                      E->sub2()); // (paper Fig 5 typo corrected)
    else
      return stuck("ifleft of untagged value: " + printValue(C, V));
    return St;
  }

  case TermKind::Set: {
    ++Stats.Sets;
    const Value *Dst = resolveValue(E->scrutinee());
    if (!Dst->is(ValueKind::Addr))
      return stuck("set of non-address: " + printValue(C, Dst));
    // The stored value escapes into memory: force it closed in Env mode.
    if (!Mem.update(Dst->address(), resolveValue(E->setSource())))
      return stuck("set of dangling address: " + printValue(C, Dst));
    // During a collection, `set` is the forwarding-pointer install (§7).
    TRACE_INSTANT("mem", "set.forward");
    // Ψ deliberately keeps the cell's (sum) type: the forwarding pointer is
    // typed by subsumption against it.
    Cur = E->sub1();
    return St;
  }

  case TermKind::LetWiden: {
    ++Stats.Widens;
    const Value *V = resolveValue(E->scrutinee());
    if (!V->is(ValueKind::Addr))
      return stuck("widen of non-address value: " + printValue(C, V));
    Region To = resolveRegion(E->region());
    if (!To.isName())
      return stuck("widen with unresolved to-region");
    applyWiden(V->address().R.sym(), To.sym());
    continueBindVal(E->binderVar(), V, E->sub1()); // widen is a no-op on
                                                   // data (§7.1)
    return St;
  }

  case TermKind::IfReg: {
    Region A = resolveRegion(E->ifregLhs()), B = resolveRegion(E->ifregRhs());
    if (!A.isName() || !B.isName())
      return stuck("ifreg on unresolved region variable");
    Cur = A == B ? E->sub1() : E->sub2();
    return St;
  }

  case TermKind::If0: {
    const Value *V = resolveValue(E->scrutinee());
    if (!V->is(ValueKind::Int))
      return stuck("if0 of non-integer: " + printValue(C, V));
    Cur = V->intValue() == 0 ? E->sub1() : E->sub2();
    return St;
  }
  }
  return stuck("unknown term form");
}

Machine::Status Machine::run(uint64_t MaxSteps) {
  if (Config.Eval == EvalMode::Vm && Backend && St == Status::Running)
    return Backend->run(MaxSteps);
  for (uint64_t I = 0; I != MaxSteps && St == Status::Running; ++I)
    step();
  return St;
}
