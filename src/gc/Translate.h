//===- gc/Translate.h - λCLOS → λGC translation (Fig 3) --------*- C++ -*-===//
///
/// \file
/// The Fig 3 translation and its λGC-forw / λGC-gen variants. λCLOS types
/// become λGC *tags* verbatim; values become allocation sequences (pairs
/// and packages are `put` into the current region, with a forwarding tag
/// bit `inl` at the Forward level and a region package at the Generational
/// level); every function begins with `ifgc r (gc[τ][~r](self, x)) e`.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TRANSLATE_H
#define SCAV_GC_TRANSLATE_H

#include "clos/Clos.h"
#include "gc/Machine.h"

namespace scav::gc {

/// Sentinel "no collector" address.
inline Address noCollector() { return Address{Region(), ~0u}; }

struct TranslatedProgram {
  /// Addresses of the translated letrec functions in cd.
  std::map<Symbol, Address> FunAddrs;
  /// The main term, including the initial `let region`(s).
  const Term *Main = nullptr;
  bool Ok = false;
};

/// Translates \p P into \p M (installing code into cd), wiring collection
/// points to \p GcAddr — the entry of a collector previously installed by
/// installBasicCollector / installForwardCollector / installGenCollector,
/// matching M's language level. If \p GcAddr is not provided (Offset ==
/// ~0u), functions skip the ifgc check entirely (used to measure mutator
/// baselines without GC).
/// \p MajorGcAddr (Generational level only, optional): a full collector
/// (installGenFullCollector) to invoke when the OLD generation fills;
/// functions then begin with
///   ifgc ro (gcFull[τ][ry,ro](self,x)) (ifgc ry (gc[τ][ry,ro](self,x)) e).
TranslatedProgram translateProgram(Machine &M, clos::ClosContext &CL,
                                   const clos::Program &P, Address GcAddr,
                                   DiagEngine &Diags,
                                   Address MajorGcAddr = noCollector());

} // namespace scav::gc

#endif // SCAV_GC_TRANSLATE_H
