//===- gc/SpecializeCopy.cpp - Wang–Appel monomorphization baseline -------===//

#include "gc/SpecializeCopy.h"

#include "gc/Builder.h"
#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"

#include <deque>

using namespace scav;
using namespace scav::gc;

namespace {

/// Deduplicating worklist of tags (alpha-equality).
struct TagSet {
  std::vector<const Tag *> Elems;

  bool insert(GcContext &C, const Tag *T) {
    const Tag *N = normalizeTag(C, T);
    for (const Tag *E : Elems)
      if (alphaEqualTag(E, N))
        return false;
    Elems.push_back(N);
    return true;
  }
};

struct SpecGen {
  GcContext &C;
  const std::vector<ExistsInstantiations> &Insts;
  TagSet Done;
  std::deque<const Tag *> Work;
  SpecializeStats Stats;

  void enqueue(const Tag *T) {
    if (Done.insert(C, T))
      Work.push_back(normalizeTag(C, T));
  }

  /// Builds the specialized functions for one tag and accounts their size.
  void emit(const Tag *T) {
    ++Stats.NumTypes;
    switch (T->kind()) {
    case TagKind::Int:
    case TagKind::Var:
    case TagKind::Arrow:
      // copy_τ(x) = x: one trivial function.
      account(trivialCopy(T));
      return;
    case TagKind::Prod: {
      // copy_τ + the two CPS continuations, each hard-wired to the
      // component types' copy functions.
      account(pairCopy(T));
      account(pairCont(T, /*First=*/true));
      account(pairCont(T, /*First=*/false));
      enqueue(T->left());
      enqueue(T->right());
      return;
    }
    case TagKind::Exists: {
      // One clone per witness the whole-program analysis found, plus the
      // dispatcher that tests which witness a package carries (the paper's
      // "defunctionalization" step).
      const std::vector<const Tag *> *Ws = nullptr;
      for (const ExistsInstantiations &I : Insts)
        if (alphaEqualTag(normalizeTag(C, I.Exists), T)) {
          Ws = &I.Witnesses;
          break;
        }
      size_t NumW = Ws ? Ws->size() : 1;
      for (size_t I = 0; I != NumW; ++I) {
        const Tag *W = Ws ? (*Ws)[I] : C.tagInt();
        const Tag *Body = substTag(C, T->body(), T->var(), W);
        account(existsCopyClone(T, Body));
        enqueue(Body);
      }
      account(existsDispatcher(T, NumW));
      return;
    }
    case TagKind::Lam:
    case TagKind::App:
      // Ill-kinded as heap types; nothing to do.
      return;
    }
  }

  void account(const Term *Body) {
    ++Stats.NumFunctions;
    Stats.TotalTermSize += termSize(Body);
  }

  // -- Representative bodies (simplified direct-style convention) -------

  const Term *trivialCopy(const Tag *T) {
    CodeBuilder CB(C);
    Region R1 = CB.regionParam("r1");
    (void)CB.regionParam("r2");
    const Value *X = CB.valParam("x", C.typeM(R1, T));
    (void)X;
    return C.termHalt(C.valInt(0));
  }

  const Term *pairCopy(const Tag *T) {
    BlockBuilder B(C);
    Symbol R1 = C.fresh("r1"), R2 = C.fresh("r2");
    Region Rr1 = Region::var(R1), Rr2 = Region::var(R2);
    (void)Rr2;
    Symbol X = C.fresh("x");
    const Value *G = B.get(C.valVar(X));
    const Value *P1 = B.proj1(G);
    const Value *P2 = B.proj2(G);
    // Calls to the component copies (modeled as cd calls).
    const Term *Tail = C.termApp(
        C.valVar(C.fresh("copy_fst")), {}, {Rr1},
        {P1, C.valPair(P2, C.valVar(C.fresh("k")))});
    return B.finish(Tail);
  }

  const Term *pairCont(const Tag *T, bool First) {
    BlockBuilder B(C);
    Symbol R2 = C.fresh("r2");
    Region Rr2 = Region::var(R2);
    Symbol X = C.fresh(First ? "x1" : "x2");
    Symbol Cv = C.fresh("c");
    const Value *Rest = B.proj2(C.valVar(Cv));
    const Term *Tail;
    if (First) {
      Tail = C.termApp(C.valVar(C.fresh("copy_snd")), {}, {Rr2},
                       {Rest, C.valPair(C.valVar(X), C.valVar(Cv))});
    } else {
      const Value *A = B.put(Rr2, C.valPair(B.proj1(C.valVar(Cv)),
                                            C.valVar(X)));
      Tail = C.termApp(C.valVar(C.fresh("k")), {}, {Rr2}, {A});
    }
    return B.finish(Tail);
  }

  const Term *existsCopyClone(const Tag *T, const Tag *Body) {
    BlockBuilder B(C);
    Symbol R1 = C.fresh("r1"), R2 = C.fresh("r2");
    Region Rr1 = Region::var(R1), Rr2 = Region::var(R2);
    (void)Rr2;
    Symbol X = C.fresh("x");
    const Value *G = B.get(C.valVar(X));
    auto [Tv, Y] = B.openTag(G, "t", "y");
    (void)Tv;
    const Term *Tail =
        C.termApp(C.valVar(C.fresh("copy_body")), {}, {Rr1},
                  {Y, C.valVar(C.fresh("k"))});
    return B.finish(Tail);
  }

  const Term *existsDispatcher(const Tag *T, size_t NumWitnesses) {
    // A chain of witness tests, one per instantiation.
    const Term *Out = C.termHalt(C.valInt(0));
    for (size_t I = 0; I != NumWitnesses; ++I) {
      Symbol X = C.fresh("w");
      Out = C.termIf0(C.valVar(X),
                      C.termApp(C.valVar(C.fresh("copy_clone")), {},
                                {Region::var(C.fresh("r"))},
                                {C.valVar(C.fresh("p"))}),
                      Out);
    }
    return Out;
  }
};

} // namespace

SpecializeStats scav::gc::specializeCopyFamily(
    GcContext &C, const std::vector<const Tag *> &RootTags,
    const std::vector<ExistsInstantiations> &Insts) {
  SpecGen G{C, Insts, {}, {}, {}};
  for (const Tag *T : RootTags)
    G.enqueue(T);
  while (!G.Work.empty()) {
    const Tag *T = G.Work.front();
    G.Work.pop_front();
    G.emit(T);
  }
  return G.Stats;
}

size_t scav::gc::libraryCollectorSize(LanguageLevel Level) {
  GcContext C;
  Machine M(C, Level);
  switch (Level) {
  case LanguageLevel::Base:
    installBasicCollector(M);
    break;
  case LanguageLevel::Forward:
    installForwardCollector(M);
    break;
  case LanguageLevel::Generational:
    installGenCollector(M);
    break;
  }
  size_t Total = 0;
  const RegionData *Cd = M.memory().region(C.cd().sym());
  for (const Value *V : Cd->Cells)
    if (V)
      Total += valueSize(V);
  return Total;
}
