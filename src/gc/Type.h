//===- gc/Type.h - λGC types σ ---------------------------------*- C++ -*-===//
///
/// \file
/// The static types of the λGC family (Fig 2 + Fig 8 + Fig 10):
///
///   σ ::= int | σ1 × σ2 | ∀[~t:~κ][~r](~σ) → 0 | ∃t:κ.σ | σ at ρ
///       | M_ρ(τ) | M_{ρy,ρo}(τ) | α | ∀J~τK[~r](~σ) →ρ 0 | ∃α:∆.σ
///       | left σ | right σ | σ1 + σ2 | C_{ρ,ρ'}(τ)         (λGC-forw)
///       | ∃r∈∆.(σ at r)                                    (λGC-gen)
///
/// M and C are the hard-wired Typerec operators: M_ρ(τ) is the mutator's
/// view of tag τ allocated in region ρ (two regions young/old at the
/// generational level), and C_{ρ,ρ'}(τ) is the collector's forwarding view.
/// Their reduction lives in TypeOps (normalizeType).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TYPE_H
#define SCAV_GC_TYPE_H

#include "gc/Region.h"
#include "gc/Tag.h"

#include <cassert>
#include <vector>

namespace scav::gc {

enum class TypeKind {
  Int,          ///< int
  Prod,         ///< σ1 × σ2
  Code,         ///< ∀[~t:~κ][~r](~σ) → 0
  TransCode,    ///< ∀J~τKJ~ρK(~σ) →ρ 0  (translucent code, §6.1; see below)
  ExistsTag,    ///< ∃t:κ.σ
  ExistsTyVar,  ///< ∃α:∆.σ
  ExistsRegion, ///< ∃r∈∆.(σ at r)      (λGC-gen)
  At,           ///< σ at ρ
  MApp,         ///< M_ρ(τ) or M_{ρy,ρo}(τ)
  CApp,         ///< C_{ρ,ρ'}(τ)        (λGC-forw)
  TyVar,        ///< α
  Left,         ///< left σ             (λGC-forw)
  Right,        ///< right σ            (λGC-forw)
  Sum,          ///< σ1 + σ2            (λGC-forw)
};

/// Translucent code (§6.1): the paper prints ∀J~τK[~r](~σ) → 0 with bound
/// region parameters, but Fig 12 only typechecks if the env type variable's
/// region constraint {r1,r2,r3} is captured by those binders — an
/// intentional hygiene violation. We repair this soundly by pinning the
/// region arguments at closure-creation time, exactly as the tag arguments
/// are pinned: ∀J~τKJ~ρK(~σ) →ρ 0, where ~σ are fully instantiated.
/// Application must supply the pinned tags and regions verbatim.
///
/// A type node; arena-allocated and immutable.
///
/// Like Tag, type nodes are hash-consed by GcContext and carry a stored
/// structural hash plus Normal/Ground/Canonical flag bits (see Tag.h and
/// GcContext.h for the definitions; for types, Ground additionally requires
/// every mentioned region to be a concrete name, never a variable).
class Type {
public:
  enum : uint8_t {
    FlagNormal = 1u << 0,
    FlagGround = 1u << 1,
    FlagCanonical = 1u << 2,
  };

  TypeKind kind() const { return K; }
  bool is(TypeKind Which) const { return K == Which; }

  size_t hash() const { return H; }
  bool isNormal() const { return Bits & FlagNormal; }
  bool isGround() const { return Bits & FlagGround; }
  bool isCanonical() const { return Bits & FlagCanonical; }
  uint8_t flags() const { return Bits; }

  /// Field-wise equality one level deep; full structural equality when the
  /// children are canonical.
  bool shallowEquals(const Type &O) const {
    return K == O.K && A == O.A && B == O.B && V == O.V && BK == O.BK &&
           Delta == O.Delta && R1 == O.R1 && R2 == O.R2 && T == O.T &&
           Regions == O.Regions && TagParams == O.TagParams &&
           TagKinds == O.TagKinds && RegionParams == O.RegionParams &&
           Args == O.Args && TagArgs == O.TagArgs;
  }

  /// Prod/Sum: left component.
  const Type *left() const {
    assert((K == TypeKind::Prod || K == TypeKind::Sum) && "no left child");
    return A;
  }
  /// Prod/Sum: right component.
  const Type *right() const {
    assert((K == TypeKind::Prod || K == TypeKind::Sum) && "no right child");
    return B;
  }

  /// At/ExistsTag/ExistsTyVar/ExistsRegion/Left/Right: the underlying type.
  const Type *body() const {
    assert((K == TypeKind::At || K == TypeKind::ExistsTag ||
            K == TypeKind::ExistsTyVar || K == TypeKind::ExistsRegion ||
            K == TypeKind::Left || K == TypeKind::Right) &&
           "no body");
    return A;
  }

  /// TyVar: α. ExistsTag: t. ExistsTyVar: α. ExistsRegion: r.
  Symbol var() const {
    assert((K == TypeKind::TyVar || K == TypeKind::ExistsTag ||
            K == TypeKind::ExistsTyVar || K == TypeKind::ExistsRegion) &&
           "no variable");
    return V;
  }

  /// ExistsTag: the kind κ of the bound tag variable.
  const Kind *binderKind() const {
    assert(K == TypeKind::ExistsTag && "binderKind on non-∃t type");
    return BK;
  }

  /// ExistsTyVar/ExistsRegion: the ∆ bound.
  const RegionSet &delta() const {
    assert((K == TypeKind::ExistsTyVar || K == TypeKind::ExistsRegion) &&
           "no ∆ bound");
    return Delta;
  }

  /// At: ρ. TransCode: the region the code pointer lives in.
  Region atRegion() const {
    assert((K == TypeKind::At || K == TypeKind::TransCode) && "no at-region");
    return R1;
  }

  /// MApp: the region parameters (1 at Base/Forward, 2 at Generational).
  const std::vector<Region> &mRegions() const {
    assert(K == TypeKind::MApp && "mRegions on non-M type");
    return Regions;
  }

  /// CApp: from-region ρ.
  Region cFrom() const {
    assert(K == TypeKind::CApp && "cFrom on non-C type");
    return R1;
  }
  /// CApp: to-region ρ'.
  Region cTo() const {
    assert(K == TypeKind::CApp && "cTo on non-C type");
    return R2;
  }

  /// MApp/CApp: the analysed tag.
  const Tag *tag() const {
    assert((K == TypeKind::MApp || K == TypeKind::CApp) && "no tag");
    return T;
  }

  /// Code: bound tag variables ~t and their kinds ~κ.
  const std::vector<Symbol> &tagParams() const {
    assert(K == TypeKind::Code && "tagParams on non-code type");
    return TagParams;
  }
  const std::vector<const Kind *> &tagParamKinds() const {
    assert(K == TypeKind::Code && "tagParamKinds on non-code type");
    return TagKinds;
  }

  /// TransCode: the pinned tag arguments ~τ of ∀J~τK.
  const std::vector<const Tag *> &transTags() const {
    assert(K == TypeKind::TransCode && "transTags on non-translucent type");
    return TagArgs;
  }

  /// TransCode: the pinned region arguments ~ρ of J~ρK.
  const std::vector<Region> &transRegions() const {
    assert(K == TypeKind::TransCode &&
           "transRegions on non-translucent type");
    return Regions;
  }

  /// Code: bound region variables ~r.
  const std::vector<Symbol> &regionParams() const {
    assert(K == TypeKind::Code && "regionParams on non-code type");
    return RegionParams;
  }

  /// Code/TransCode: value argument types ~σ.
  const std::vector<const Type *> &argTypes() const {
    assert((K == TypeKind::Code || K == TypeKind::TransCode) &&
           "argTypes on non-code type");
    return Args;
  }

private:
  friend class GcContext;
  Type(TypeKind K) : K(K) {}

  TypeKind K;
  const Type *A = nullptr;
  const Type *B = nullptr;
  Symbol V;
  const Kind *BK = nullptr;
  RegionSet Delta;
  Region R1;
  Region R2;
  const Tag *T = nullptr;
  std::vector<Region> Regions;
  std::vector<Symbol> TagParams;
  std::vector<const Kind *> TagKinds;
  std::vector<Symbol> RegionParams;
  std::vector<const Type *> Args;
  std::vector<const Tag *> TagArgs;
  size_t H = 0;
  uint8_t Bits = 0;
};

} // namespace scav::gc

#endif // SCAV_GC_TYPE_H
