//===- gc/CollectorForward.h - Certified forwarding collector (§7) -*-C++-*-=//
///
/// \file
/// The λGC-forw collector of Fig 9 in CPS/closure-converted form. Compared
/// to the basic collector:
///
///  * every mutator heap object carries a one-bit tag (`inl`, forced by the
///    Forward-level M operator), so the collector can overwrite it with a
///    forwarding pointer (`inr z`) via `set` — sharing is preserved and
///    DAGs stay DAGs;
///  * `gc` bundles (f, x) into a fresh from-space cell and `widen`s it,
///    switching the whole heap from the mutator view M to the collector
///    view C (a no-op at runtime, §7.1);
///  * `copy` works over C-typed from-space values: `ifleft` distinguishes
///    not-yet-copied objects from forwarding pointers.
///
/// Code blocks: gc, gcend, copy, copypair1, copypair2, copyexist1 — same
/// continuation discipline as Fig 12, with the original object's address
/// threaded through the environments so the final continuation can install
/// the forwarding pointer.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_COLLECTORFORWARD_H
#define SCAV_GC_COLLECTORFORWARD_H

#include "gc/Machine.h"

namespace scav::gc {

struct ForwardCollectorLib {
  Address Gc;
  Address GcEnd;
  Address Copy;
  Address CopyPair1;
  Address CopyPair2;
  Address CopyExist1;
};

/// Builds the forwarding collector and installs it in \p M's cd region.
/// \p M must be at LanguageLevel::Forward.
ForwardCollectorLib installForwardCollector(Machine &M);

} // namespace scav::gc

#endif // SCAV_GC_COLLECTORFORWARD_H
