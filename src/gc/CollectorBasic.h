//===- gc/CollectorBasic.h - The certified basic collector (Fig 12) -*-C++-===//
///
/// \file
/// The stop-and-copy collector of Fig 4, in its real form: CPS-converted
/// and closure-converted (Fig 12), written as λGC code and installed in the
/// cd region. The collector is a *library*: one polymorphic `copy` driven
/// by runtime type analysis, no per-type code duplication (contrast §2.1's
/// Wang–Appel baseline, reproduced in SpecializeCopy).
///
/// Code blocks (cd labels):
///   gc[t:Ω][r1](f : M_{r1}(t→0), x : M_{r1}(t))
///     allocates to-space r2 and continuation-space r3, then starts copy
///     with gcend as the final continuation.
///   gcend[t1,t2,te][r1,r2,r3](y : M_{r2}(t1), f : M_{r2}(t1→0))
///     frees everything but r2 (`only {r2}`) and re-enters the mutator.
///   copy[t:Ω][r1,r2,r3](x : M_{r1}(t), k : tk[t])
///     typecase-driven depth-first copy; the implicit stack is the chain of
///     continuation closures in r3 (§6.1).
///   copypair1 / copypair2 / copyexist1
///     the CPS continuations for the two recursive pair copies and the
///     one existential copy.
///
/// Continuation typing: tk[s] is the uniform continuation type
///
///   tk[s] = (∃t1:Ω.∃t2:Ω.∃te:Ω→Ω.∃αc:{r1,r2,r3}.
///             (∀Jt1,t2,teKJr1,r2,r3K(M_{r2}(s), αc) → 0) × αc) at r3
///
/// using the region-pinned translucent code type (see Type.h for why the
/// regions are pinned rather than bound).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_COLLECTORBASIC_H
#define SCAV_GC_COLLECTORBASIC_H

#include "gc/Machine.h"

namespace scav::gc {

/// Addresses of the installed collector entry points.
struct BasicCollectorLib {
  Address Gc;
  Address GcEnd;
  Address Copy;
  Address CopyPair1;
  Address CopyPair2;
  Address CopyExist1;
};

/// Builds the Fig 12 collector and installs it in \p M's cd region.
BasicCollectorLib installBasicCollector(Machine &M);

/// The continuation type tk[s] with the given collector regions.
const Type *basicContType(GcContext &C, const Tag *S, Region R1, Region R2,
                          Region R3);

/// Certification: fully typechecks every code block in cd (this is the
/// paper's headline property — the collector itself is well-typed λGC
/// code). Returns false and fills \p Diags on failure.
bool certifyCodeRegion(Machine &M, DiagEngine &Diags);

} // namespace scav::gc

#endif // SCAV_GC_COLLECTORBASIC_H
