//===- gc/Normalize.cpp - Tag β-normalization and M/C reduction -----------===//
///
/// \file
/// Tag reduction is β on the simply-kinded tag λ-calculus — strongly
/// normalizing (Prop 6.1) and confluent (Prop 6.2). The M operator is the
/// hard-wired Typerec of §4.2 (base), §7 (forwarding view; the mutator view
/// gains a `left` wrapper), and §8 (generational, two region indices). C is
/// the collector's forwarding view of §7. M/C applications over variable-
/// or stuck-application-headed tags are normal forms (stuck), which is the
/// crux of the paper's "symmetry" design (§2.2.1): types never accumulate
/// operators across collections.
///
//===----------------------------------------------------------------------===//

#include "gc/Ops.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// Structural normalization pass. Recursion goes through the public
/// normalizeTag wrapper so the Normal-bit and memo fast paths apply at every
/// level of the tree, not just the root.
const Tag *normalizeTagImpl(GcContext &C, const Tag *T) {
  switch (T->kind()) {
  case TagKind::Int:
  case TagKind::Var:
    return T;
  case TagKind::Prod: {
    const Tag *L = normalizeTag(C, T->left());
    const Tag *R = normalizeTag(C, T->right());
    if (L == T->left() && R == T->right())
      return T;
    return C.tagProd(L, R);
  }
  case TagKind::Arrow: {
    std::vector<const Tag *> Args;
    bool Changed = false;
    Args.reserve(T->arrowArgs().size());
    for (const Tag *A : T->arrowArgs()) {
      const Tag *N = normalizeTag(C, A);
      Changed |= N != A;
      Args.push_back(N);
    }
    return Changed ? C.tagArrow(std::move(Args)) : T;
  }
  case TagKind::Exists: {
    const Tag *B = normalizeTag(C, T->body());
    return B == T->body() ? T : C.tagExists(T->var(), B);
  }
  case TagKind::Lam: {
    const Tag *B = normalizeTag(C, T->body());
    return B == T->body() ? T : C.tagLam(T->var(), T->binderKind(), B);
  }
  case TagKind::App: {
    const Tag *F = normalizeTag(C, T->left());
    if (F->is(TagKind::Lam)) {
      const Tag *Red = substTag(C, F->body(), F->var(), T->right());
      return normalizeTag(C, Red);
    }
    const Tag *A = normalizeTag(C, T->right());
    if (F == T->left() && A == T->right())
      return T;
    return C.tagApp(F, A);
  }
  }
  return T;
}

} // namespace

/// Memoizing entry point. With interning on, already-normal tags exit in
/// O(1) via the Normal bit, and each distinct (by pointer = by structure)
/// non-normal tag is normalized at most once per context. The memo also
/// stabilizes results: re-normalizing a tag returns the *same* node.
const Tag *scav::gc::normalizeTag(GcContext &C, const Tag *T) {
  GcContext::Stats &S = C.stats();
  ++S.NormalizeTagCalls;
  if (C.interningEnabled()) {
    if (T->isNormal()) {
      ++S.NormalizeTagNormalBitHits;
      return T;
    }
    if (const Tag *M = C.lookupNormalTagMemo(T)) {
      ++S.NormalizeTagMemoHits;
      return M;
    }
  }
  GcContext::TypeworkTimer Timer(S);
  const Tag *N = normalizeTagImpl(C, T);
  if (C.interningEnabled())
    C.rememberNormalTag(T, N);
  return N;
}

const Type *scav::gc::expandMOnce(GcContext &C, const std::vector<Region> &Rs,
                                  const Tag *T, LanguageLevel Level) {
  assert(!Rs.empty() && "M needs at least one region index");
  bool Gen = Level == LanguageLevel::Generational;
  assert(Rs.size() == (Gen ? 2u : 1u) && "wrong M arity for language level");
  Region Rho = Rs[0];

  switch (T->kind()) {
  case TagKind::Int:
    // M(Int) => int, at every level.
    return C.typeInt();

  case TagKind::Arrow: {
    // Base/forw: M_ρ(~τ→0)     => ∀[][r](M_r(~τ)) → 0 at cd.
    // Gen:       M_{ρy,ρo}(~τ→0) => ∀[][ry,ro](M_{ry,ro}(~τ)) → 0 at cd.
    std::vector<Symbol> RegionParams;
    std::vector<Region> InnerRs;
    if (Gen) {
      Symbol Ry = C.fresh("ry");
      Symbol Ro = C.fresh("ro");
      RegionParams = {Ry, Ro};
      InnerRs = {Region::var(Ry), Region::var(Ro)};
    } else {
      Symbol R = C.fresh("r");
      RegionParams = {R};
      InnerRs = {Region::var(R)};
    }
    std::vector<const Type *> Args;
    Args.reserve(T->arrowArgs().size());
    for (const Tag *A : T->arrowArgs())
      Args.push_back(C.typeM(InnerRs, A));
    const Type *Code =
        C.typeCode({}, {}, std::move(RegionParams), std::move(Args));
    return C.typeAt(Code, C.cd());
  }

  case TagKind::Prod: {
    if (Gen) {
      // ∃r∈{ρy,ρo}.((M_{r,ρo}(τ1) × M_{r,ρo}(τ2)) at r)
      Symbol R = C.fresh("r");
      Region Rv = Region::var(R);
      Region Ro = Rs[1];
      const Type *Body = C.typeProd(C.typeM({Rv, Ro}, T->left()),
                                    C.typeM({Rv, Ro}, T->right()));
      return C.typeExistsRegion(R, RegionSet{Rho, Ro}, Body);
    }
    const Type *Body =
        C.typeProd(C.typeM(Rho, T->left()), C.typeM(Rho, T->right()));
    if (Level == LanguageLevel::Forward)
      Body = C.typeLeft(Body); // Mutator must supply the forwarding tag bit.
    return C.typeAt(Body, Rho);
  }

  case TagKind::Exists: {
    if (Gen) {
      // ∃r∈{ρy,ρo}.((∃t:Ω.M_{r,ρo}(τ)) at r)
      Symbol R = C.fresh("r");
      Region Rv = Region::var(R);
      Region Ro = Rs[1];
      const Type *Body = C.typeExistsTag(T->var(), C.omega(),
                                         C.typeM({Rv, Ro}, T->body()));
      return C.typeExistsRegion(R, RegionSet{Rho, Ro}, Body);
    }
    const Type *Body =
        C.typeExistsTag(T->var(), C.omega(), C.typeM(Rho, T->body()));
    if (Level == LanguageLevel::Forward)
      Body = C.typeLeft(Body);
    return C.typeAt(Body, Rho);
  }

  case TagKind::Var:
  case TagKind::App:
    return nullptr; // Stuck: M_ρ(t) / M_ρ(te t') are normal forms.
  case TagKind::Lam:
    return nullptr; // Ill-kinded (M analyses kind-Ω tags only).
  }
  return nullptr;
}

const Type *scav::gc::expandCOnce(GcContext &C, Region From, Region To,
                                  const Tag *T) {
  switch (T->kind()) {
  case TagKind::Int:
    return C.typeInt();

  case TagKind::Arrow:
    // C_{ρ,ρ'}(~τ→0) => M_ρ(~τ→0): code never moves, no forwarding bit.
    return expandMOnce(C, {From}, T, LanguageLevel::Forward);

  case TagKind::Prod: {
    // (left(C(τ1) × C(τ2)) + right(M_{ρ'}(τ1×τ2))) at ρ
    const Type *L = C.typeLeft(
        C.typeProd(C.typeC(From, To, T->left()), C.typeC(From, To, T->right())));
    const Type *R = C.typeRight(C.typeM(To, T));
    return C.typeAt(C.typeSum(L, R), From);
  }

  case TagKind::Exists: {
    // (left(∃t:Ω.C_{ρ,ρ'}(τ)) + right(M_{ρ'}(∃t.τ))) at ρ
    const Type *L = C.typeLeft(
        C.typeExistsTag(T->var(), C.omega(), C.typeC(From, To, T->body())));
    const Type *R = C.typeRight(C.typeM(To, T));
    return C.typeAt(C.typeSum(L, R), From);
  }

  case TagKind::Var:
  case TagKind::App:
  case TagKind::Lam:
    return nullptr;
  }
  return nullptr;
}

namespace {

const Type *normalizeTypeImpl(GcContext &C, const Type *T,
                              LanguageLevel Level) {
  // Unchanged children => return T itself, skipping the uniquing table.
  // Gated on interning (unlike the tag impl's pre-existing checks) so the
  // SCAV_DISABLE_INTERN baseline keeps its original rebuild-always cost.
  bool Id = C.interningEnabled();
  switch (T->kind()) {
  case TypeKind::Int:
  case TypeKind::TyVar:
    return T;

  case TypeKind::Prod: {
    const Type *L = normalizeType(C, T->left(), Level);
    const Type *R = normalizeType(C, T->right(), Level);
    if (Id && L == T->left() && R == T->right())
      return T;
    return C.typeProd(L, R);
  }
  case TypeKind::Sum: {
    const Type *L = normalizeType(C, T->left(), Level);
    const Type *R = normalizeType(C, T->right(), Level);
    if (Id && L == T->left() && R == T->right())
      return T;
    return C.typeSum(L, R);
  }
  case TypeKind::Left: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T : C.typeLeft(B);
  }
  case TypeKind::Right: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T : C.typeRight(B);
  }
  case TypeKind::At: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T : C.typeAt(B, T->atRegion());
  }

  case TypeKind::ExistsTag: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T
                                : C.typeExistsTag(T->var(), T->binderKind(), B);
  }
  case TypeKind::ExistsTyVar: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T
                                : C.typeExistsTyVar(T->var(), T->delta(), B);
  }
  case TypeKind::ExistsRegion: {
    const Type *B = normalizeType(C, T->body(), Level);
    return Id && B == T->body() ? T
                                : C.typeExistsRegion(T->var(), T->delta(), B);
  }

  case TypeKind::Code: {
    std::vector<const Type *> Args;
    bool Changed = false;
    Args.reserve(T->argTypes().size());
    for (const Type *A : T->argTypes()) {
      const Type *N = normalizeType(C, A, Level);
      Changed |= N != A;
      Args.push_back(N);
    }
    if (Id && !Changed)
      return T;
    return C.typeCode(T->tagParams(), T->tagParamKinds(), T->regionParams(),
                      std::move(Args));
  }
  case TypeKind::TransCode: {
    std::vector<const Tag *> Tags;
    bool Changed = false;
    Tags.reserve(T->transTags().size());
    for (const Tag *A : T->transTags()) {
      const Tag *N = normalizeTag(C, A);
      Changed |= N != A;
      Tags.push_back(N);
    }
    std::vector<const Type *> Args;
    Args.reserve(T->argTypes().size());
    for (const Type *A : T->argTypes()) {
      const Type *N = normalizeType(C, A, Level);
      Changed |= N != A;
      Args.push_back(N);
    }
    if (Id && !Changed)
      return T;
    return C.typeTransCode(std::move(Tags), T->transRegions(),
                           std::move(Args), T->atRegion());
  }

  case TypeKind::MApp: {
    const Tag *NT = normalizeTag(C, T->tag());
    if (const Type *Expanded = expandMOnce(C, T->mRegions(), NT, Level))
      return normalizeType(C, Expanded, Level);
    return Id && NT == T->tag() ? T : C.typeM(T->mRegions(), NT);
  }
  case TypeKind::CApp: {
    const Tag *NT = normalizeTag(C, T->tag());
    if (const Type *Expanded = expandCOnce(C, T->cFrom(), T->cTo(), NT))
      return normalizeType(C, Expanded, Level);
    return Id && NT == T->tag() ? T : C.typeC(T->cFrom(), T->cTo(), NT);
  }
  }
  return T;
}

} // namespace

/// Memoizing entry point; the memo keys on (node, LanguageLevel) since the M
/// equations differ per level. Note that expandMOnce invents fresh region
/// binders, so without the memo two normalizations of the same type yield
/// alpha-equivalent but structurally *distinct* results; memoization pins
/// the first result, which in turn lets downstream equality checks succeed
/// by pointer identity.
const Type *scav::gc::normalizeType(GcContext &C, const Type *T,
                                    LanguageLevel Level) {
  GcContext::Stats &S = C.stats();
  ++S.NormalizeTypeCalls;
  if (C.interningEnabled()) {
    if (T->isNormal()) {
      ++S.NormalizeTypeNormalBitHits;
      return T;
    }
    if (const Type *M = C.lookupNormalTypeMemo(T, Level)) {
      ++S.NormalizeTypeMemoHits;
      return M;
    }
  }
  GcContext::TypeworkTimer Timer(S);
  const Type *N = normalizeTypeImpl(C, T, Level);
  if (C.interningEnabled())
    C.rememberNormalType(T, Level, N);
  return N;
}
