//===- gc/AsyncCheck.cpp - Pipelined state certification ------------------===//

#include "gc/AsyncCheck.h"

#include "gc/Ops.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace scav;
using namespace scav::gc;

//===----------------------------------------------------------------------===//
// MirrorSubject
//===----------------------------------------------------------------------===//

MirrorSubject::MirrorSubject(GcContext &MachineCtx, LanguageLevel Level)
    : Ctx(MachineCtx.symbols(), /*EnableInterning=*/true), Lvl(Level),
      Mem(MachineCtx.cd().sym()) {
  // Inherit the machine context's fresh namespace so the mirror's
  // "c"-scoped checker mints (FreshScope appends) stay disjoint from other
  // sessions' checkers when many sessions share one SymbolTable — and keep
  // the exact spellings the synchronous checker would produce.
  Ctx.setFreshNamespace(MachineCtx.freshNamespace());
}

const Term *MirrorSubject::currentTerm() const {
  if (!Cur)
    return nullptr;
  if (Env.empty())
    return Cur;
  // Forcing allocates in the observer context, on the checker thread —
  // this is the work the capture deliberately deferred off the mutator.
  // Unmemoized for the same reason Machine::currentTerm is: callers run
  // under a GcContext::Scope that reclaims the result.
  auto *Self = const_cast<MirrorSubject *>(this);
  return closeTerm(Self->Ctx, Cur, Env);
}

void MirrorSubject::trimJournal(uint64_t UpToAbs) {
  while (JBase < UpToAbs && !J.empty()) {
    J.pop_front();
    ++JBase;
  }
}

void MirrorSubject::applyDelta(const RegionDelta &D) {
  if (D.Snapshot) {
    if (D.HasMem) {
      RegionData &RD = Mem.Regions[D.S];
      RD.Cells = D.SnapCells;
      RD.clearDirty();
      RD.DirtyOverflow = D.MemOverflow;
      ++RD.Version;
    }
    if (D.HasPsi) {
      RegionType &PT = Psi.Regions[D.S];
      PT.Cells = D.SnapPsi;
      PT.clearDirty();
      PT.DirtyOverflow = D.PsiOverflow;
      ++PT.Version;
    }
    return;
  }
  if (D.HasMem) {
    RegionData &RD = Mem.Regions[D.S];
    for (const Value *V : D.Tail)
      RD.Cells.push_back(V);
    for (auto [Off, V] : D.Dirty) {
      assert(Off < RD.Cells.size() && "dirty offset past mirror extent");
      RD.Cells[Off] = V;
      RD.logDirty(Off);
    }
    if (!D.Tail.empty() || !D.Dirty.empty())
      ++RD.Version;
  }
  if (D.HasPsi) {
    RegionType &PT = Psi.Regions[D.S];
    for (const Type *T : D.PsiTail)
      PT.Cells.push_back(T);
    for (auto [Off, T] : D.PsiDirty) {
      assert(Off < PT.Cells.size() && "psi dirty offset past mirror extent");
      PT.Cells[Off] = T;
      PT.logDirty(Off);
    }
    if (!D.PsiTail.empty() || !D.PsiDirty.empty())
      ++PT.Version;
  }
}

void MirrorSubject::apply(CheckUnit &U) {
  TtOk = U.TypeTrackingOk;
  TtErr = std::move(U.TypeTrackingError);
  Cur = U.Cur;
  Env = std::move(U.Env);

  // Journal first: structural create/drop events must land before the
  // deltas that reference (or no longer reference) those regions. The
  // engine re-reads the same events from the mirror journal on its own
  // cursor, so invalidation semantics match the synchronous run exactly.
  for (const DeltaEvent &Ev : U.Journal) {
    J.push_back(Ev);
    switch (Ev.Kind) {
    case DeltaKind::RegionCreated:
      // Machine::createRegion makes both sides (Memory.addRegion +
      // Psi.addRegion); reproduce that.
      Mem.Regions.try_emplace(Ev.R);
      Psi.Regions.try_emplace(Ev.R);
      break;
    case DeltaKind::RegionDropped:
      Mem.Regions.erase(Ev.R);
      Psi.Regions.erase(Ev.R);
      break;
    case DeltaKind::RegionWidened:
    case DeltaKind::ExternalMutation:
      break; // data arrives via snapshot deltas
    }
  }

  if (U.FullSnapshot) {
    // Wholesale rebuild: drop every region the snapshot does not list.
    // (The journal's ExternalMutation event makes the engine resync, so
    // no per-region dirty bookkeeping is needed.)
    Mem.Regions.clear();
    Psi.Regions.clear();
  }
  for (const RegionDelta &D : U.Deltas)
    applyDelta(D);
}

//===----------------------------------------------------------------------===//
// AsyncCheckSession
//===----------------------------------------------------------------------===//

AsyncCheckSession::AsyncCheckSession(Machine &M, Options Opts)
    : M(M), Opts(Opts), Queue(std::max<size_t>(1, Opts.QueueCapacity)),
      Mirror(std::make_unique<MirrorSubject>(M.context(), M.level())),
      Engine(std::make_unique<IncrementalStateCheck>(*Mirror, Opts.Check)) {
  M.enableDeltaJournal();
  CaptureJCursor = M.journalEnd();
  Checker = std::thread([this] { checkerLoop(); });
}

AsyncCheckSession::~AsyncCheckSession() { finish(); }

bool AsyncCheckSession::failed() const {
  return FailedFlag.load(std::memory_order_acquire);
}

void AsyncCheckSession::recordFailure(AsyncVerdict V) {
  std::lock_guard<std::mutex> L(Mu);
  // Earliest unit wins: the checker consumes in order, so its first
  // failure already is the earliest; a mutator-side lag-net failure can
  // only be *later* than anything still queued, so keep an existing entry.
  if (!Failure || V.UnitIndex < Failure->UnitIndex)
    Failure = std::move(V);
  FailedFlag.store(true, std::memory_order_release);
}

void AsyncCheckSession::checkerLoop() {
  TRACE_SCOPE("checker", "check.async.thread");
  while (std::optional<CheckUnit> U = Queue.pop()) {
    TRACE_SCOPE("checker", "check.async.unit");
    Mirror->apply(*U);
    StateCheckResult R = Engine->check();
    ++Stats.UnitsChecked;
    if (!R.Ok) {
      recordFailure(AsyncVerdict{false, U->Index, U->Steps,
                                 std::move(R.Error)});
      return; // stop consuming; remaining units die with the queue
    }
  }
}

void AsyncCheckSession::buildUnit(CheckUnit &U) {
  U.Index = NextIndex++;
  U.Steps = M.stats().Steps;
  U.TypeTrackingOk = M.typeTrackingOk();
  if (!U.TypeTrackingOk)
    U.TypeTrackingError = M.typeTrackingError();
  U.Cur = M.rawTerm();
  U.Env = M.rawEnv();

  // Compact layout: snapshot/tail/dirty capture below reads Cells directly,
  // so word-written cells must be decoded first. Mutator-thread only — the
  // checker thread sees the already-decoded pointers in the unit.
  M.memory().decodeAll();

  // Consume the machine journal (this session is its sole consumer; the
  // engine consumes the *mirror's* copy on its own cursor).
  bool External = false;
  std::unordered_set<Symbol, SymbolHash> Widened;
  uint64_t End = M.journalEnd();
  for (; CaptureJCursor != End; ++CaptureJCursor) {
    const DeltaEvent &Ev = M.journalEvent(CaptureJCursor);
    U.Journal.push_back(Ev);
    switch (Ev.Kind) {
    case DeltaKind::ExternalMutation:
      External = true;
      break;
    case DeltaKind::RegionWidened:
      Widened.insert(Ev.R);
      break;
    case DeltaKind::RegionDropped:
      Cursors.erase(Ev.R);
      break;
    case DeltaKind::RegionCreated:
      break;
    }
  }
  M.trimJournal(End);

  if (External || PendingResync) {
    // Out-of-band mutation (the journal cannot say what changed) or a
    // lag-dropped unit whose deltas are gone: ship the whole state. A
    // synthetic ExternalMutation event makes the engine resync for the
    // lag case exactly as it would for real external surgery.
    U.FullSnapshot = true;
    ++Stats.Snapshots;
    if (!External)
      U.Journal.push_back(DeltaEvent{DeltaKind::ExternalMutation, {}, {}});
    PendingResync = false;
    Cursors.clear();
    for (auto &[S, RD] : M.memory().Regions) {
      RegionDelta D;
      D.S = S;
      D.Snapshot = true;
      D.SnapCells = RD.Cells;
      D.MemOverflow = false; // snapshot is exact; resync revisits all cells
      RD.clearDirty();
      auto PIt = M.psi().Regions.find(S);
      D.HasPsi = PIt != M.psi().Regions.end();
      size_t PsiN = 0;
      if (D.HasPsi) {
        D.SnapPsi = PIt->second.Cells;
        PIt->second.clearDirty();
        PsiN = D.SnapPsi.size();
      }
      Cursors[S] = CaptureCursor{RD.Cells.size(), PsiN};
      U.Deltas.push_back(std::move(D));
    }
    // Ψ-only regions (forged domain mismatches) must survive the mirror
    // rebuild so the engine rejects them identically.
    for (auto &[S, PT] : M.psi().Regions) {
      if (M.memory().hasRegion(S))
        continue;
      RegionDelta D;
      D.S = S;
      D.Snapshot = true;
      D.HasMem = false;
      D.SnapPsi = PT.Cells;
      PT.clearDirty();
      Cursors[S] = CaptureCursor{0, PT.Cells.size()};
      U.Deltas.push_back(std::move(D));
    }
    return;
  }

  // Delta path: per region, the appended tail plus the dirty log — which
  // this capture consumes (satisfying Memory.h's clear-on-consumption
  // contract). A widen rewrote cells/Ψ in place *without* logging, and an
  // overflowed log forgot its offsets: both degrade to a region snapshot.
  for (auto &[S, RD] : M.memory().Regions) {
    auto PIt = M.psi().Regions.find(S);
    RegionType *PT = PIt == M.psi().Regions.end() ? nullptr : &PIt->second;
    // A region without a cursor has never been captured: it must ship a
    // delta even when empty and quiet (an empty pre-session region — the
    // fresh old generation, say — would otherwise never reach the mirror,
    // and every type mentioning it would fail the Dom(Ψ) check there).
    bool Known = Cursors.count(S) != 0;
    CaptureCursor &Cap = Cursors[S]; // zero-init for regions new this window
    RegionDelta D;
    D.S = S;
    D.HasPsi = PT != nullptr;
    if (Widened.count(S) != 0 || RD.DirtyOverflow ||
        (PT && PT->DirtyOverflow)) {
      D.Snapshot = true;
      D.SnapCells = RD.Cells;
      // Only a real overflow needs the flag on the mirror (all-established
      // -dirty); a widen's journal event already invalidates the region.
      D.MemOverflow = RD.DirtyOverflow;
      if (PT) {
        D.SnapPsi = PT->Cells;
        D.PsiOverflow = PT->DirtyOverflow;
      }
    } else {
      bool MemQuiet = Cap.MemCells == RD.Cells.size() && RD.DirtyLog.empty();
      bool PsiQuiet =
          !PT || (Cap.PsiCells == PT->Cells.size() && PT->DirtyLog.empty());
      if (Known && MemQuiet && PsiQuiet)
        continue; // untouched region the mirror already tracks
      D.Tail.assign(RD.Cells.begin() + Cap.MemCells, RD.Cells.end());
      D.Dirty.reserve(RD.DirtyLog.size());
      for (uint32_t Off : RD.DirtyLog)
        D.Dirty.emplace_back(Off, RD.Cells[Off]);
      if (PT) {
        D.PsiTail.assign(PT->Cells.begin() + Cap.PsiCells, PT->Cells.end());
        D.PsiDirty.reserve(PT->DirtyLog.size());
        for (uint32_t Off : PT->DirtyLog)
          D.PsiDirty.emplace_back(Off, PT->Cells[Off]);
      }
    }
    RD.clearDirty();
    if (PT)
      PT->clearDirty();
    Cap.MemCells = RD.Cells.size();
    Cap.PsiCells = PT ? PT->Cells.size() : 0;
    U.Deltas.push_back(std::move(D));
  }
  // Ψ-only regions on the delta path can only appear through surgery that
  // also journals ExternalMutation (handled above); nothing to do here.
}

bool AsyncCheckSession::capture() {
  if (failed())
    return false;
  TRACE_SCOPE("checker", "check.async.capture");
  CheckUnit U;
  buildUnit(U);
  ++Stats.UnitsCaptured;

  using std::chrono::milliseconds;
  if (Queue.tryPushFor(U, milliseconds(Opts.PushTimeoutMs))) {
    DepthSamples.push_back(Queue.size());
    return !failed();
  }
  if (failed())
    return false; // checker stopped on a verdict; nothing to fall back to

  // Lag safety net: the checker is more than a full queue behind. Certify
  // synchronously right now (bounded staleness), drop this unit — its
  // consumed dirty logs are covered by the snapshot the next capture will
  // ship — and resync the pipeline.
  TRACE_INSTANT("checker", "check.async.lag_resync");
  ++Stats.LagResyncs;
  PendingResync = true;
  StateCheckOptions Sync;
  Sync.CheckCodeRegion = false; // post-attach cadence, same as the engine
  Sync.RestrictToReachable = Opts.Check.RestrictToReachable;
  StateCheckResult R = checkState(M, Sync);
  if (!R.Ok) {
    recordFailure(AsyncVerdict{false, U.Index, U.Steps, std::move(R.Error)});
    return false;
  }
  return true;
}

AsyncVerdict AsyncCheckSession::finish() {
  if (!Finished) {
    Finished = true;
    Queue.close();
    if (Checker.joinable())
      Checker.join();
    Stats.Engine = Engine->stats();
    if (!DepthSamples.empty()) {
      std::sort(DepthSamples.begin(), DepthSamples.end());
      auto Pct = [&](double P) {
        size_t I = static_cast<size_t>(P * (DepthSamples.size() - 1));
        return DepthSamples[I];
      };
      Stats.QueueDepthP50 = Pct(0.50);
      Stats.QueueDepthP99 = Pct(0.99);
      Stats.QueueDepthMax = DepthSamples.back();
    }
  }
  std::lock_guard<std::mutex> L(Mu);
  return Failure ? *Failure : AsyncVerdict{};
}
