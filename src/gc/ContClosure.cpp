//===- gc/ContClosure.cpp - Continuation closures for the collectors ------===//

#include "gc/ContClosure.h"

using namespace scav;
using namespace scav::gc;

namespace {

/// tc = (∀JT1,T2,TeKJ~ρK(M_{To}(S), αc) → 0) × αc.
const Type *contBody(GcContext &C, const ContLayout &L, const Tag *S,
                     const Tag *T1, const Tag *T2, const Tag *Te, Symbol Ac) {
  const Type *Trans =
      C.typeTransCode({T1, T2, Te}, L.Regions,
                      {L.mOf(C, L.To, S), C.typeVar(Ac)}, C.cd());
  return C.typeProd(Trans, C.typeVar(Ac));
}

RegionSet layoutDelta(const ContLayout &L) {
  RegionSet D;
  for (Region R : L.Regions)
    D.insert(R);
  return D;
}

/// ∃αc:∆. contBody.
const Type *contExistsAc(GcContext &C, const ContLayout &L, const Tag *S,
                         const Tag *T1, const Tag *T2, const Tag *Te,
                         Symbol Ac) {
  return C.typeExistsTyVar(Ac, layoutDelta(L),
                           contBody(C, L, S, T1, T2, Te, Ac));
}

} // namespace

const Type *scav::gc::contType(GcContext &C, const ContLayout &L,
                               const Tag *S) {
  Symbol T1 = C.fresh("t1"), T2 = C.fresh("t2"), Te = C.fresh("te"),
         Ac = C.fresh("ac");
  const Type *Inner =
      contExistsAc(C, L, S, C.tagVar(T1), C.tagVar(T2), C.tagVar(Te), Ac);
  const Type *E3 = C.typeExistsTag(Te, C.omegaToOmega(), Inner);
  const Type *E2 = C.typeExistsTag(T2, C.omega(), E3);
  const Type *E1 = C.typeExistsTag(T1, C.omega(), E2);
  return C.typeAt(E1, L.Holder);
}

const Value *scav::gc::packCont(GcContext &C, const ContLayout &L,
                                const Tag *S, const Tag *W1, const Tag *W2,
                                const Tag *We, const Type *EnvTy,
                                const Value *Code, const Value *Env) {
  Symbol T1 = C.fresh("t1"), T2 = C.fresh("t2"), Te = C.fresh("te"),
         Ac = C.fresh("ac");
  const Value *P0 =
      C.valPackTyVar(Ac, layoutDelta(L), EnvTy, C.valPair(Code, Env),
                     contBody(C, L, S, W1, W2, We, Ac));
  const Value *P1 = C.valPackTag(
      Te, We, P0, contExistsAc(C, L, S, W1, W2, C.tagVar(Te), Ac));
  const Value *P2 = C.valPackTag(
      T2, W2, P1,
      C.typeExistsTag(
          Te, C.omegaToOmega(),
          contExistsAc(C, L, S, W1, C.tagVar(T2), C.tagVar(Te), Ac)));
  const Value *P3 = C.valPackTag(
      T1, W1, P2,
      C.typeExistsTag(
          T2, C.omega(),
          C.typeExistsTag(Te, C.omegaToOmega(),
                          contExistsAc(C, L, S, C.tagVar(T1), C.tagVar(T2),
                                       C.tagVar(Te), Ac))));
  return P3;
}

const Term *scav::gc::applyCont(GcContext &C, const ContLayout &L,
                                const Value *K, const Value *CopiedVal) {
  BlockBuilder B(C);
  const Value *G = B.get(K);
  auto [T1, V1] = B.openTag(G, "t1", "k1");
  auto [T2, V2] = B.openTag(V1, "t2", "k2");
  auto [Te, V3] = B.openTag(V2, "te", "k3");
  auto [Ac, Pair] = B.openTyVar(V3, "ac", "c");
  (void)Ac;
  const Value *CodeV = B.proj1(Pair);
  const Value *EnvV = B.proj2(Pair);
  return B.finish(
      C.termApp(CodeV, {T1, T2, Te}, L.Regions, {CopiedVal, EnvV}));
}

const Type *scav::gc::mArrowType(GcContext &C, const ContLayout &L, Region R,
                                 const Tag *Arg) {
  return L.mOf(C, R, C.tagArrow({Arg}));
}
