//===- gc/Snapshot.h - Versioned machine-state snapshots --------*- C++ -*-===//
///
/// \file
/// Post-mortem heap snapshots (DESIGN.md §3.14): serialize a machine's
/// entire typed state — memory M (both heap layouts), the typing witness Ψ,
/// step count / status / stuck reason, the delta-journal tail, and the
/// fresh-name bookkeeping — to a self-describing binary file, and load it
/// back into a standalone context for offline inspection.
///
/// The design goal is *verdict fidelity*: re-running checkState (or the
/// incremental checker) over a loaded snapshot must reproduce the live
/// run's diagnostic byte for byte. Three ingredients make that hold:
///
///  * the whole SymbolTable is serialized in id order, so the loaded
///    context's symbol ids — and with them every sortedRegionSyms ordering
///    and every fresh() collision-skip — replay identically;
///  * the context's fresh-name namespace tag and the oracle counter are
///    saved and restored, so checker-minted names are spelled the same;
///  * cells are serialized from the *decoded* view (decodeAll runs first),
///    so a corrupted-but-decodable heap round-trips exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_SNAPSHOT_H
#define SCAV_GC_SNAPSHOT_H

#include "gc/StateCheck.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scav::gc {

/// Why a snapshot was taken, and the checking configuration that produced
/// the recorded diagnostic — everything certgc_inspect needs to re-run the
/// checkers with the live run's exact options.
struct SnapshotMeta {
  /// Failure class: "check-failure", "stuck", "stall", "manual", ...
  std::string Kind;
  /// The live run's verdict/diagnostic text ("" for healthy snapshots).
  std::string Diagnostic;
  /// Which checker produced Diagnostic: "full", "incremental", or "".
  std::string Checker;
  /// The StateCheckOptions the live run checked under.
  bool RestrictToReachable = false;
  bool CheckCodeRegion = false;
};

/// A machine state loaded back from a snapshot: a standalone context plus
/// the reconstructed memory/Ψ and every header field. Non-copyable — Memory
/// holds interior pointers and the nodes live in Ctx's arena.
class Snapshot {
public:
  Snapshot() = default;
  Snapshot(const Snapshot &) = delete;
  Snapshot &operator=(const Snapshot &) = delete;
  ~Snapshot();

  std::unique_ptr<GcContext> Ctx;
  std::unique_ptr<Memory> Mem;
  MemoryType Psi;

  LanguageLevel Level = LanguageLevel::Base;
  HeapLayout Layout = HeapLayout::Legacy;
  Machine::Status Status = Machine::Status::Running;
  uint64_t Steps = 0;
  std::string StuckReason;
  const Term *CurrentTerm = nullptr; ///< Closed term, null when halted.
  const Value *HaltValue = nullptr;
  bool TypeTrackingOk = true;
  std::string TypeTrackingError;
  /// Fresh-name reproduction state (see file comment).
  std::string FreshNamespace;
  uint64_t OracleFreshCtr = 0;
  SnapshotMeta Meta;
  /// Delta-journal tail (absolute base index + retained events).
  uint64_t JournalBase = 0;
  std::vector<DeltaEvent> Journal;
};

/// CheckSubject over a loaded snapshot: lets both state checkers run
/// offline against post-mortem state exactly as they run against a live
/// machine. Journal mutation methods are no-ops (the tail is a record, not
/// a live stream).
class SnapshotSubject final : public CheckSubject {
public:
  explicit SnapshotSubject(Snapshot &S) : S(S) {}

  GcContext &context() override { return *S.Ctx; }
  LanguageLevel level() const override { return S.Level; }
  Memory &memory() override { return *S.Mem; }
  const Memory &memory() const override { return *S.Mem; }
  MemoryType &psi() override { return S.Psi; }
  const MemoryType &psi() const override { return S.Psi; }
  const Term *currentTerm() const override { return S.CurrentTerm; }
  bool typeTrackingOk() const override { return S.TypeTrackingOk; }
  std::string typeTrackingError() const override {
    return S.TypeTrackingError;
  }
  void enableDeltaJournal() override {}
  uint64_t journalEnd() const override {
    return S.JournalBase + S.Journal.size();
  }
  const DeltaEvent &journalEvent(uint64_t AbsIdx) const override {
    return S.Journal[static_cast<size_t>(AbsIdx - S.JournalBase)];
  }
  void trimJournal(uint64_t) override {}

private:
  Snapshot &S;
};

/// Serializes \p M's full state (format v1, little-endian, magic
/// "SCAVSNP1"). Decodes every compact cell first; \p M is otherwise
/// unchanged.
std::string serializeSnapshot(Machine &M, const SnapshotMeta &Meta = {});

/// serializeSnapshot + write to \p Path. Returns false (filling \p Error)
/// on I/O failure.
bool saveSnapshot(Machine &M, const SnapshotMeta &Meta,
                  const std::string &Path, std::string &Error);

/// Parses a snapshot image back into a standalone context. Returns null and
/// fills \p Error on malformed input. \p ForceLayout overrides the recorded
/// heap layout (cells are re-encoded into the requested representation),
/// which is how a Compact snapshot is diffed against a Legacy one.
std::unique_ptr<Snapshot>
parseSnapshot(std::string_view Bytes, std::string &Error,
              std::optional<HeapLayout> ForceLayout = std::nullopt);

/// Reads + parses \p Path.
std::unique_ptr<Snapshot>
loadSnapshot(const std::string &Path, std::string &Error,
             std::optional<HeapLayout> ForceLayout = std::nullopt);

/// Re-runs the full state checker over a loaded snapshot under the meta's
/// recorded options — the offline reproduction of the live verdict.
StateCheckResult recheckSnapshot(Snapshot &S);

/// Same, with the incremental engine (first check = full resync).
StateCheckResult recheckSnapshotIncremental(Snapshot &S);

/// Structural diff of two snapshots (step N vs N+1, or Compact vs Legacy):
/// regions present in one but not the other, per-cell value/Ψ differences
/// (compared by printed form — name-based, so cross-context comparison is
/// exact), current term, status, steps, journal. The heap *layout* is
/// deliberately not a difference: a Compact and a Legacy snapshot of the
/// same state diff empty. Returns "" when equal.
std::string diffSnapshots(const Snapshot &A, const Snapshot &B);

/// One-line-per-region summary ("name: cells=N capacity=C psi=P").
std::string describeSnapshot(const Snapshot &S);

} // namespace scav::gc

#endif // SCAV_GC_SNAPSHOT_H
