//===- gc/Term.h - λGC values, operations, and terms -----------*- C++ -*-===//
///
/// \file
/// The term language of the λGC family (Fig 2, Fig 8, Fig 10):
///
///   v  ::= n | x | ν.ℓ | (v1, v2) | ⟨t = τ, v : σ⟩ | vJ~τK
///        | ⟨α : ∆ = σ1, v : σ2⟩ | λ[~t:~κ][~r](~x:~σ).e
///        | inl v | inr v                         (λGC-forw)
///        | ⟨r ∈ ∆ = ρ, v : σ⟩                    (λGC-gen)
///
///   op ::= v | πi v | put[ρ] v | get v
///        | strip v                               (λGC-forw)
///        | v1 ⊕ v2                               (int-primitive extension)
///
///   e  ::= v[~τ][~ρ](~v) | let x = op in e | halt v
///        | ifgc ρ e1 e2 | open v as ⟨t, x⟩ in e | open v as ⟨α, x⟩ in e
///        | let region r in e | only ∆ in e
///        | typecase τ of (ei; eλ; t1 t2.e×; te.e∃)
///        | ifleft x = v el er | set v1 := v2; e
///        | let x = widen[ρ][τ](v) in e           (λGC-forw)
///        | open v as ⟨r, x⟩ in e | ifreg (ρ1 = ρ2) e1 e2  (λGC-gen)
///        | if0 v e1 e2                           (int-primitive extension)
///
/// The integer primitives (⊕ and if0) are a documented extension (see
/// DESIGN.md): they only manipulate values of type int and are needed so
/// mutators can compute anything observable.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TERM_H
#define SCAV_GC_TERM_H

#include "gc/Type.h"

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace scav::gc {

class Term;

/// A concrete memory address ν.ℓ.
struct Address {
  Region R;        ///< Must be a region name ν.
  uint32_t Offset; ///< ℓ within the region.

  friend bool operator==(Address A, Address B) {
    return A.R == B.R && A.Offset == B.Offset;
  }
  friend bool operator<(Address A, Address B) {
    if (A.R != B.R)
      return A.R < B.R;
    return A.Offset < B.Offset;
  }
};

/// Hash for unordered address sets/maps (state checking, reachability).
struct AddressHash {
  size_t operator()(Address A) const {
    size_t H = (static_cast<size_t>(A.R.sym().id()) << 1) |
               (A.R.isName() ? 1u : 0u);
    return (H * 0x9e3779b97f4a7c15ULL) ^ A.Offset;
  }
};

enum class ValueKind {
  Int,        ///< n
  Var,        ///< x
  Addr,       ///< ν.ℓ
  Pair,       ///< (v1, v2)
  PackTag,    ///< ⟨t = τ, v : σ⟩
  TransApp,   ///< vJ~τK
  PackTyVar,  ///< ⟨α : ∆ = σ1, v : σ2⟩
  Code,       ///< λ[~t:~κ][~r](~x:~σ).e
  Inl,        ///< inl v   (λGC-forw)
  Inr,        ///< inr v   (λGC-forw)
  PackRegion, ///< ⟨r ∈ ∆ = ρ, v : σ⟩   (λGC-gen)
};

/// Code-only payload of a Value, split out so the (hot, allocated per
/// machine step) Value node stays small and trivially destructible; code
/// values are built once per program, so the extra indirection is cold.
struct CodeData {
  std::vector<Symbol> TagParams;
  std::vector<const Kind *> TagKinds;
  std::vector<Symbol> RegionParams;
  std::vector<Symbol> ValParams;
  std::vector<const Type *> ValTypes;
  const Term *Body = nullptr;
};

/// TransApp-only payload of a Value (see CodeData).
struct TransData {
  std::vector<const Tag *> TagArgs;
  std::vector<Region> RegionArgs;
};

/// A value; arena-allocated and immutable.
class Value {
public:
  ValueKind kind() const { return K; }
  bool is(ValueKind Which) const { return K == Which; }

  int64_t intValue() const {
    assert(K == ValueKind::Int && "not an int");
    return N;
  }

  /// Var: x. PackTag: t. PackTyVar: α. PackRegion: r.
  Symbol var() const {
    assert((K == ValueKind::Var || K == ValueKind::PackTag ||
            K == ValueKind::PackTyVar || K == ValueKind::PackRegion) &&
           "no variable");
    return V;
  }

  Address address() const {
    assert(K == ValueKind::Addr && "not an address");
    return Addr;
  }

  /// Pair components.
  const Value *first() const {
    assert(K == ValueKind::Pair && "not a pair");
    return A;
  }
  const Value *second() const {
    assert(K == ValueKind::Pair && "not a pair");
    return B;
  }

  /// PackTag/PackTyVar/PackRegion/Inl/Inr/TransApp: the wrapped value.
  const Value *payload() const {
    assert((K == ValueKind::PackTag || K == ValueKind::PackTyVar ||
            K == ValueKind::PackRegion || K == ValueKind::Inl ||
            K == ValueKind::Inr || K == ValueKind::TransApp) &&
           "no payload");
    return A;
  }

  /// PackTag: the witness tag τ.
  const Tag *tagWitness() const {
    assert(K == ValueKind::PackTag && "no tag witness");
    return TW;
  }

  /// PackTyVar: the witness type σ1.
  const Type *typeWitness() const {
    assert(K == ValueKind::PackTyVar && "no type witness");
    return TyW;
  }

  /// PackRegion: the witness region ρ.
  Region regionWitness() const {
    assert(K == ValueKind::PackRegion && "no region witness");
    return RW;
  }

  /// PackTag/PackTyVar/PackRegion: the annotated body type (binds var()).
  const Type *bodyType() const {
    assert((K == ValueKind::PackTag || K == ValueKind::PackTyVar ||
            K == ValueKind::PackRegion) &&
           "no body type");
    return BT;
  }

  /// PackTyVar/PackRegion: the ∆ bound of the package.
  const RegionSet &delta() const {
    assert((K == ValueKind::PackTyVar || K == ValueKind::PackRegion) &&
           "no ∆ bound");
    return *Delta;
  }

  /// TransApp: the pinned tag arguments ~τ of vJ~τK.
  const std::vector<const Tag *> &transTags() const {
    assert(K == ValueKind::TransApp && "no translucent tags");
    return Trans->TagArgs;
  }

  /// TransApp: the pinned region arguments ~ρ of vJ~ρK.
  const std::vector<Region> &transRegions() const {
    assert(K == ValueKind::TransApp && "no translucent regions");
    return Trans->RegionArgs;
  }

  // -- Code values ---------------------------------------------------------

  const std::vector<Symbol> &tagParams() const {
    assert(K == ValueKind::Code && "not code");
    return Code->TagParams;
  }
  const std::vector<const Kind *> &tagParamKinds() const {
    assert(K == ValueKind::Code && "not code");
    return Code->TagKinds;
  }
  const std::vector<Symbol> &regionParams() const {
    assert(K == ValueKind::Code && "not code");
    return Code->RegionParams;
  }
  const std::vector<Symbol> &valParams() const {
    assert(K == ValueKind::Code && "not code");
    return Code->ValParams;
  }
  const std::vector<const Type *> &valParamTypes() const {
    assert(K == ValueKind::Code && "not code");
    return Code->ValTypes;
  }
  const Term *codeBody() const {
    assert(K == ValueKind::Code && "not code");
    return Code->Body;
  }

private:
  friend class GcContext;
  friend class ValueBuilder; ///< Worker-arena factories (GcContext.h).
  Value(ValueKind K) : K(K) {}

  ValueKind K;
  int64_t N = 0;
  Symbol V;
  Address Addr{};
  const Value *A = nullptr;
  const Value *B = nullptr;
  const Tag *TW = nullptr;
  const Type *TyW = nullptr;
  Region RW;
  const Type *BT = nullptr;
  /// PackTyVar/PackRegion: ∆ bound, arena-allocated (shared when the
  /// producer caches it — see vm::TplInfo).
  const RegionSet *Delta = nullptr;
  const CodeData *Code = nullptr;   ///< Code only
  const TransData *Trans = nullptr; ///< TransApp only
};
static_assert(std::is_trivially_destructible_v<Value>,
              "Value is allocated per machine step; keep cold payloads in "
              "side structs so the arena skips destructor registration");

/// Integer primitives (documented extension).
enum class PrimOp { Add, Sub, Mul, Le };

inline const char *primOpName(PrimOp P) {
  switch (P) {
  case PrimOp::Add:
    return "+";
  case PrimOp::Sub:
    return "-";
  case PrimOp::Mul:
    return "*";
  case PrimOp::Le:
    return "<=";
  }
  return "?";
}

enum class OpKind {
  Val,   ///< v
  Proj1, ///< π1 v
  Proj2, ///< π2 v
  Put,   ///< put[ρ] v
  Get,   ///< get v
  Strip, ///< strip v   (λGC-forw)
  Prim,  ///< v1 ⊕ v2   (extension)
};

/// A let-bound operation.
class Op {
public:
  OpKind kind() const { return K; }
  bool is(OpKind Which) const { return K == Which; }

  const Value *value() const {
    assert(K != OpKind::Prim && "use lhs()/rhs() on prim");
    return A;
  }

  Region putRegion() const {
    assert(K == OpKind::Put && "not a put");
    return R;
  }

  PrimOp primOp() const {
    assert(K == OpKind::Prim && "not a prim");
    return P;
  }
  const Value *lhs() const {
    assert(K == OpKind::Prim && "not a prim");
    return A;
  }
  const Value *rhs() const {
    assert(K == OpKind::Prim && "not a prim");
    return B;
  }

private:
  friend class GcContext;
  Op(OpKind K) : K(K) {}

  OpKind K;
  const Value *A = nullptr;
  const Value *B = nullptr;
  Region R;
  PrimOp P = PrimOp::Add;
};

enum class TermKind {
  App,        ///< v[~τ][~ρ](~v)
  Let,        ///< let x = op in e
  Halt,       ///< halt v
  IfGc,       ///< ifgc ρ e1 e2
  OpenTag,    ///< open v as ⟨t, x⟩ in e
  OpenTyVar,  ///< open v as ⟨α, x⟩ in e
  LetRegion,  ///< let region r in e
  Only,       ///< only ∆ in e
  Typecase,   ///< typecase τ of (ei; eλ; t1 t2.e×; te.e∃)
  IfLeft,     ///< ifleft x = v el er        (λGC-forw)
  Set,        ///< set v1 := v2 ; e          (λGC-forw)
  LetWiden,   ///< let x = widen[ρ][τ](v) in e  (λGC-forw)
  OpenRegion, ///< open v as ⟨r, x⟩ in e     (λGC-gen)
  IfReg,      ///< ifreg (ρ1 = ρ2) e1 e2     (λGC-gen)
  If0,        ///< if0 v e1 e2               (extension)
};

/// A term; arena-allocated and immutable.
class Term {
public:
  TermKind kind() const { return K; }
  bool is(TermKind Which) const { return K == Which; }

  // -- App -------------------------------------------------------------
  const Value *appFun() const {
    assert(K == TermKind::App && "not an application");
    return V1;
  }
  const std::vector<const Tag *> &appTags() const {
    assert(K == TermKind::App && "not an application");
    return TagArgs;
  }
  const std::vector<Region> &appRegions() const {
    assert(K == TermKind::App && "not an application");
    return RegionArgs;
  }
  const std::vector<const Value *> &appArgs() const {
    assert(K == TermKind::App && "not an application");
    return ValArgs;
  }

  // -- Binders & scrutinees ---------------------------------------------
  /// Let/LetWiden/IfLeft: x. OpenTag: t then binderVar2 is x. OpenTyVar: α
  /// then x. OpenRegion: r then x. LetRegion: r.
  Symbol binderVar() const { return X1; }
  Symbol binderVar2() const { return X2; }

  const Op *letOp() const {
    assert(K == TermKind::Let && "not a let");
    return O;
  }

  /// Halt/OpenTag/OpenTyVar/OpenRegion/IfLeft/Set(dst)/LetWiden: scrutinee.
  const Value *scrutinee() const {
    assert((K == TermKind::Halt || K == TermKind::OpenTag ||
            K == TermKind::OpenTyVar || K == TermKind::OpenRegion ||
            K == TermKind::IfLeft || K == TermKind::Set ||
            K == TermKind::LetWiden || K == TermKind::If0) &&
           "no scrutinee");
    return V1;
  }

  /// Set: the stored value v2.
  const Value *setSource() const {
    assert(K == TermKind::Set && "not a set");
    return V2;
  }

  /// IfGc: ρ. LetWiden: the to-region ρ'.
  Region region() const {
    assert((K == TermKind::IfGc || K == TermKind::LetWiden) && "no region");
    return R1;
  }

  /// IfReg: ρ1 and ρ2.
  Region ifregLhs() const {
    assert(K == TermKind::IfReg && "not an ifreg");
    return R1;
  }
  Region ifregRhs() const {
    assert(K == TermKind::IfReg && "not an ifreg");
    return R2;
  }

  /// Only: the keep-set ∆.
  const RegionSet &onlySet() const {
    assert(K == TermKind::Only && "not an only");
    return Delta;
  }

  /// Typecase/LetWiden: the analysed tag τ.
  const Tag *tag() const {
    assert((K == TermKind::Typecase || K == TermKind::LetWiden) && "no tag");
    return T;
  }

  /// Sub-terms. Which slots are populated depends on kind():
  ///  * Let/Set/LetWiden/LetRegion/Only/OpenTag/OpenTyVar/OpenRegion: E1.
  ///  * IfGc/IfLeft/IfReg/If0: E1 (then / left), E2 (else / right).
  ///  * Typecase: E1 = ei, E2 = eλ, E3 = e× (binds X1, X2), E4 = e∃
  ///    (binds X1... stored in X3).
  const Term *sub1() const { return E1; }
  const Term *sub2() const { return E2; }

  // -- Typecase --------------------------------------------------------
  const Term *caseInt() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return E1;
  }
  const Term *caseArrow() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return E2;
  }
  Symbol prodVar1() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return X1;
  }
  Symbol prodVar2() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return X2;
  }
  const Term *caseProd() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return E3;
  }
  Symbol existsVar() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return X3;
  }
  const Term *caseExists() const {
    assert(K == TermKind::Typecase && "not a typecase");
    return E4;
  }

private:
  friend class GcContext;
  Term(TermKind K) : K(K) {}

  TermKind K;
  const Value *V1 = nullptr;
  const Value *V2 = nullptr;
  const Op *O = nullptr;
  Symbol X1;
  Symbol X2;
  Symbol X3;
  Region R1;
  Region R2;
  RegionSet Delta;
  const Tag *T = nullptr;
  const Term *E1 = nullptr;
  const Term *E2 = nullptr;
  const Term *E3 = nullptr;
  const Term *E4 = nullptr;
  std::vector<const Tag *> TagArgs;
  std::vector<Region> RegionArgs;
  std::vector<const Value *> ValArgs;
};

} // namespace scav::gc

#endif // SCAV_GC_TERM_H
