//===- gc/TypeCheck.h - Static semantics of the λGC family -----*- C++ -*-===//
///
/// \file
/// The typechecker for λGC / λGC-forw / λGC-gen (Figs 6, 8, 10). The
/// judgment forms are:
///
///   Θ ⊢ τ : κ            tag kinding            (kindOfTag, Ops.h)
///   ∆; Θ; Φ ⊢ σ          type well-formedness   (checkTypeWf)
///   Ψ; ∆; Θ; Φ; Γ ⊢ v:σ  value typing           (inferValue / checkValue)
///   Ψ; ∆; Θ; Φ; Γ ⊢ op:σ operation typing       (inferOp)
///   Ψ; ∆; Θ; Φ; Γ ⊢ e    term well-formedness   (checkTerm)
///
/// Value typing is algorithmic/bidirectional: inference produces principal
/// types; λGC-forw's sum subsumption (v:σ1 ⇒ v:σ1+σ2, Fig 8) is folded
/// into checkValue/subtypeOf. Two deliberate algorithmic compromises are
/// documented at their implementation sites:
///
///  * `ifleft` whose scrutinee is a manifest inl/inr value (this only
///    arises in mid-execution machine states) checks only the branch that
///    will be taken — the declarative system would guess a sum type;
///  * `typecase` on a stuck tag application is rejected (Fig 6 only
///    refines variables; the paper's collectors never need more).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_TYPECHECK_H
#define SCAV_GC_TYPECHECK_H

#include "gc/Memory.h"
#include "gc/Ops.h"
#include "support/Diag.h"

#include <map>
#include <string>
#include <unordered_set>
#include <utility>

namespace scav::gc {

/// A possibly-restricted view of a memory type Ψ. `only ∆ in e` and the
/// body of `widen` check their continuations under Ψ|∆; the view avoids
/// copying the underlying maps. cd is always visible (§A: "the code region
/// cd is always implicitly part of the environment").
struct PsiView {
  const MemoryType *M = nullptr;
  Symbol Cd;
  bool Restricted = false;
  RegionSet Allowed; ///< Meaningful only when Restricted.

  bool visible(Symbol RegionSym) const {
    if (RegionSym == Cd)
      return true;
    if (!M || !M->hasRegion(RegionSym))
      return false;
    return !Restricted || Allowed.contains(Region::name(RegionSym));
  }

  const Type *lookup(Address A) const {
    if (!M || !visible(A.R.sym()))
      return nullptr;
    return M->lookup(A);
  }

  /// Dom(Ψ) under the restriction.
  RegionSet domain() const {
    RegionSet Out;
    if (!M)
      return Out;
    for (const auto &[S, _] : M->Regions)
      if (visible(S))
        Out.insert(Region::name(S));
    return Out;
  }

  PsiView restrictedTo(const RegionSet &Keep) const {
    PsiView Out = *this;
    if (!Out.Restricted) {
      Out.Restricted = true;
      Out.Allowed = Keep;
      return Out;
    }
    RegionSet Inter;
    for (Region R : Keep)
      if (Allowed.contains(R))
        Inter.insert(R);
    Out.Allowed = Inter;
    return Out;
  }
};

/// The environment quintuple Ψ; ∆; Θ; Φ; Γ, plus (λGC-gen) the recorded
/// upper bounds of opened region variables: `open v as ⟨r, x⟩` with
/// v : ∃r∈∆'.(σ at r) records r ↦ ∆'. Fig 10 discards the bound, but then
/// Fig 11's copy cannot typecheck (its recursive calls pass M_{r,ρo} values
/// where M_{ρy,ρo} is expected, sound only because r ∈ {ρy,ρo}); the
/// paper's own Lemma D.4 appeals to "subtyping with the M_{ρ1,ρ2}(τ) type"
/// without stating it — this is the missing ingredient.
struct CheckEnv {
  PsiView Psi;
  RegionSet Delta;
  TagEnv Theta;
  std::map<Symbol, RegionSet> Phi;
  std::map<Symbol, const Type *> Gamma;
  std::map<Symbol, RegionSet> RegionBounds;
};

/// Success memo for heap-cell judgments Ψ ⊢ M(a) : Ψ(a), keyed on the
/// (value, cell-type) pointer pair — meaningful because both sides are
/// hash-consed machine-owned nodes. A hit is sound while every Ψ binding
/// the judgment consulted (the addresses embedded in the value) is
/// unchanged; callers invalidate coarsely by clearing on region events
/// (widen / only / external mutation). Only successes are stored:
/// failures must re-run to produce diagnostics.
class CellJudgmentCache {
public:
  bool contains(const Value *V, const Type *T) const {
    return Hits_.count(key(V, T)) != 0;
  }
  void insert(const Value *V, const Type *T) { Hits_.insert(key(V, T)); }
  void clear() { Hits_.clear(); }
  size_t size() const { return Hits_.size(); }

  /// Served / computed counters, for stats surfaces.
  uint64_t Hits = 0;
  uint64_t Misses = 0;

private:
  using Key = std::pair<const Value *, const Type *>;
  static Key key(const Value *V, const Type *T) { return Key{V, T}; }
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<const void *>{}(K.first);
      return H ^ (std::hash<const void *>{}(K.second) + 0x9e3779b97f4a7c15ull +
                  (H << 6) + (H >> 2));
    }
  };
  std::unordered_set<Key, KeyHash> Hits_;
};

/// Typechecker for one language level. Reports failures into a DiagEngine;
/// every entry point returns false / nullptr on error.
class TypeChecker {
public:
  TypeChecker(GcContext &C, LanguageLevel Level, DiagEngine &Diags)
      : C(C), Level(Level), Diags(Diags) {}

  LanguageLevel level() const { return Level; }

  /// When set, inferValue on a code value trusts its declared type and does
  /// not re-check the body. Used by the state checker to avoid re-checking
  /// the immutable cd region at every machine step.
  void setSkipCodeBodies(bool Skip) { SkipCodeBodies = Skip; }

  /// When set, inferValue on an address skips the Dom(Ψ) well-formedness
  /// premise of the ν.ℓ rule (Ψ lookup still happens). The machine's
  /// internal Ψ bookkeeping uses this — it stores only types it built
  /// itself; the state checker re-validates them with the full rule.
  void setTrustAddresses(bool Trust) { TrustAddresses = Trust; }

  /// ∆; Θ; Φ ⊢ σ. Silent (no diagnostics): used as a filter when
  /// restricting environments.
  bool checkTypeWf(const Type *T, const CheckEnv &E);

  /// Ψ; ∆; Θ; Φ; Γ ⊢ v : σ (inference). Returns nullptr on failure.
  const Type *inferValue(const Value *V, const CheckEnv &E);

  /// Ψ; ∆; Θ; Φ; Γ ⊢ v : Expected (checking, with sum subsumption).
  bool checkValue(const Value *V, const Type *Expected, const CheckEnv &E);

  /// σ1 ≤ σ2 with the Fig 8 sum subsumption and, at the Generational
  /// level, M/region-existential width subtyping (see CheckEnv).
  bool subtypeOf(const Type *A, const Type *B);
  bool subtypeOf(const Type *A, const Type *B, const CheckEnv &E);

  /// Ψ; ∆; Θ; Φ; Γ ⊢ op : σ. Returns nullptr on failure.
  const Type *inferOp(const Op *O, const CheckEnv &E);

  /// Ψ; ∆; Θ; Φ; Γ ⊢ e.
  bool checkTerm(const Term *E, const CheckEnv &Env);

  /// One heap-cell judgment Ψ ⊢ M(a) : Ψ(a), with Fig 7's cd discipline —
  /// the per-cell body of the ⊢ M : Ψ loop, factored out so the full and
  /// incremental state checkers produce identical verdicts and error text.
  /// \p CellTy may be null (reported as "cell missing from Psi"). For cd
  /// cells, \p CheckCodeBody selects between the full code-body re-check
  /// and the discipline-only check. \p Cache, when given, memoizes
  /// successful non-cd judgments. On failure returns false and, if
  /// \p Error is set, fills it with the same message checkState reports.
  bool checkHeapCell(Address A, const Value *V, const Type *CellTy, bool IsCd,
                     bool CheckCodeBody, const CheckEnv &E,
                     CellJudgmentCache *Cache = nullptr,
                     std::string *Error = nullptr);

  /// Builds the restricted environment of the `only ∆'` rule:
  /// Ψ|∆'; ∆',cd; Θ; Φ|∆'; Γ|∆'.
  CheckEnv restrictEnv(const CheckEnv &E, const RegionSet &DeltaPrime);

  /// ρ ∈ ∆ (cd is always a member).
  bool inDelta(Region R, const CheckEnv &E) const {
    return R == C.cd() || E.Delta.contains(R);
  }

private:
  bool fail(const std::string &Msg) {
    Diags.error(Msg);
    return false;
  }
  const Type *failT(const std::string &Msg) {
    Diags.error(Msg);
    return nullptr;
  }

  bool requireLevel(LanguageLevel Min, const char *Construct);

  const Type *inferValueImpl(const Value *V, const CheckEnv &E);

  GcContext &C;
  LanguageLevel Level;
  DiagEngine &Diags;
  bool SkipCodeBodies = false;
  bool TrustAddresses = false;
};

} // namespace scav::gc

#endif // SCAV_GC_TYPECHECK_H
