//===- gc/Translate.cpp - λCLOS → λGC translation (Fig 3) -----------------===//

#include "gc/Translate.h"

#include "gc/Builder.h"

using namespace scav;
using namespace scav::gc;

namespace {

using clos::ClosContext;
using clos::Exp;
using clos::ExpKind;
using clos::FunDef;
using clos::Program;
using clos::Val;
using clos::ValKind;

struct Translator {
  Machine &M;
  GcContext &C;
  ClosContext &CL;
  LanguageLevel Level;
  Address GcAddr;
  DiagEngine &Diags;
  bool Failed = false;

  std::map<Symbol, Address> FunAddrs;
  std::map<Symbol, const Tag *> FunTys;

  bool gen() const { return Level == LanguageLevel::Generational; }
  bool fwd() const { return Level == LanguageLevel::Forward; }

  void fail(const std::string &Msg) {
    if (!Failed)
      Diags.error(Msg);
    Failed = true;
  }

  /// The regions a mutator function abstracts over: [r] or [ry, ro].
  std::vector<Region> funRegions(Region R1, Region R2) {
    if (gen())
      return {R1, R2};
    return {R1};
  }

  /// M view of tag τ for the current level.
  const Type *mOf(Region Ry, Region Ro, const Tag *T) {
    if (gen())
      return C.typeM({Ry, Ro}, T);
    return C.typeM(Ry, T);
  }

  const Tag *typeOfVal(const Val *V, const gc::TagEnv &Theta,
                       const std::map<Symbol, const Tag *> &Gamma) {
    return clos::typeOfVal(CL, V, Theta, Gamma, FunTys, Diags);
  }

  /// Translates a λCLOS value, emitting allocations into \p B. \p Ry is
  /// the allocation (young) region, \p Ro the old region (gen only).
  const Value *transVal(BlockBuilder &B, const Val *V, Region Ry, Region Ro,
                        const gc::TagEnv &Theta,
                        const std::map<Symbol, const Tag *> &Gamma) {
    switch (V->kind()) {
    case ValKind::Int:
      return C.valInt(V->intValue());
    case ValKind::Var:
      return C.valVar(V->var());
    case ValKind::FunName: {
      auto It = FunAddrs.find(V->var());
      if (It == FunAddrs.end()) {
        fail("unknown function in translation");
        return C.valInt(0);
      }
      return C.valAddr(It->second);
    }
    case ValKind::Pair: {
      const Tag *T1 = typeOfVal(V->first(), Theta, Gamma);
      const Tag *T2 = typeOfVal(V->second(), Theta, Gamma);
      if (!T1 || !T2) {
        fail("pair does not typecheck during translation");
        return C.valInt(0);
      }
      const Value *L = transVal(B, V->first(), Ry, Ro, Theta, Gamma);
      const Value *R = transVal(B, V->second(), Ry, Ro, Theta, Gamma);
      const Value *P = C.valPair(L, R);
      if (fwd())
        P = C.valInl(P);
      const Value *A = B.put(Ry, P);
      if (!gen())
        return A;
      // pack ⟨r ∈ {ry,ro} = ry, a : M_{r,ro}(τ1) × M_{r,ro}(τ2)⟩
      Symbol RV = C.fresh("r");
      Region Rv = Region::var(RV);
      const Type *Body =
          C.typeProd(C.typeM({Rv, Ro}, T1), C.typeM({Rv, Ro}, T2));
      return C.valPackRegion(RV, RegionSet{Ry, Ro}, Ry, A, Body);
    }
    case ValKind::Pack: {
      const Value *Payload = transVal(B, V->payload(), Ry, Ro, Theta, Gamma);
      // ⟨t = τw, v : M(τbody)⟩, allocated in the current region.
      const Type *BodyTy = gen()
                               ? C.typeM({Ry, Ro}, V->bodyType())
                               : C.typeM(Ry, V->bodyType());
      const Value *Pk = C.valPackTag(V->var(), V->witness(), Payload, BodyTy);
      const Value *Content = fwd() ? C.valInl(Pk) : Pk;
      const Value *A = B.put(Ry, Content);
      if (!gen())
        return A;
      Symbol RV = C.fresh("r");
      Region Rv = Region::var(RV);
      Symbol U = C.fresh(C.name(V->var()));
      const Tag *BodyTag = gc::substTag(C, V->bodyType(), V->var(),
                                        C.tagVar(U));
      const Type *Body =
          C.typeExistsTag(U, C.omega(), C.typeM({Rv, Ro}, BodyTag));
      return C.valPackRegion(RV, RegionSet{Ry, Ro}, Ry, A, Body);
    }
    }
    fail("unknown value kind in translation");
    return C.valInt(0);
  }

  /// Fetches the contents of a translated heap reference \p V: applies the
  /// level-specific unwrapping (get; strip at Forward; region-open + get
  /// at Generational).
  const Value *fetch(BlockBuilder &B, const Value *V) {
    if (gen()) {
      auto [R, A] = B.openRegion(V, "r", "a");
      (void)R;
      return B.get(A);
    }
    const Value *G = B.get(V);
    if (fwd())
      G = B.strip(G);
    return G;
  }

  const Term *transExp(const Exp *E, Region Ry, Region Ro, gc::TagEnv Theta,
                       std::map<Symbol, const Tag *> Gamma) {
    BlockBuilder B(C);
    for (const Exp *Cur = E;;) {
      switch (Cur->kind()) {
      case ExpKind::LetVal: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T) {
          fail("value does not typecheck during translation");
          return C.termHalt(C.valInt(0));
        }
        const Value *V = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        B.bindExact(Cur->binder(), C.opVal(V));
        Gamma[Cur->binder()] = T;
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::LetProj1:
      case ExpKind::LetProj2: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T) {
          fail("projection does not typecheck during translation");
          return C.termHalt(C.valInt(0));
        }
        const Tag *N = normalizeTag(C, T);
        const Value *V = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        const Value *G = fetch(B, V);
        const Value *P = Cur->is(ExpKind::LetProj1) ? B.proj1(G) : B.proj2(G);
        B.bindExact(Cur->binder(), C.opVal(P));
        Gamma[Cur->binder()] =
            Cur->is(ExpKind::LetProj1) ? N->left() : N->right();
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::LetPrim: {
        const Value *L = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        const Value *R = transVal(B, Cur->val2(), Ry, Ro, Theta, Gamma);
        PrimOp P = PrimOp::Add;
        switch (Cur->primOp()) {
        case lambda::PrimOp::Add:
          P = PrimOp::Add;
          break;
        case lambda::PrimOp::Sub:
          P = PrimOp::Sub;
          break;
        case lambda::PrimOp::Mul:
          P = PrimOp::Mul;
          break;
        case lambda::PrimOp::Le:
          P = PrimOp::Le;
          break;
        }
        const Value *N = B.prim(P, L, R);
        B.bindExact(Cur->binder(), C.opVal(N));
        Gamma[Cur->binder()] = C.tagInt();
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::App: {
        const Value *F = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        const Value *A = transVal(B, Cur->val2(), Ry, Ro, Theta, Gamma);
        return B.finish(
            C.termApp(F, {}, funRegions(Ry, Ro), {A}));
      }
      case ExpKind::Open: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T) {
          fail("open does not typecheck during translation");
          return C.termHalt(C.valInt(0));
        }
        const Tag *N = normalizeTag(C, T);
        const Value *V = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        const Value *G = fetch(B, V);
        B.openTagExact(G, Cur->tagBinder(), Cur->binder());
        Theta[Cur->tagBinder()] = C.omega();
        Gamma[Cur->binder()] = gc::substTag(C, N->body(), N->var(),
                                            C.tagVar(Cur->tagBinder()));
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::Halt: {
        const Value *V = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        return B.finish(C.termHalt(V));
      }
      case ExpKind::If0: {
        const Value *V = transVal(B, Cur->val1(), Ry, Ro, Theta, Gamma);
        const Term *Z = transExp(Cur->sub1(), Ry, Ro, Theta, Gamma);
        const Term *NZ = transExp(Cur->sub2(), Ry, Ro, Theta, Gamma);
        return B.finish(C.termIf0(V, Z, NZ));
      }
      }
      fail("unknown expression kind in translation");
      return C.termHalt(C.valInt(0));
    }
  }
};

} // namespace

TranslatedProgram scav::gc::translateProgram(
    Machine &M, clos::ClosContext &CL, const clos::Program &P, Address GcAddr,
    DiagEngine &Diags, Address MajorGcAddr) {
  GcContext &C = M.context();
  Translator T{M, C, CL, M.level(), GcAddr, Diags, false, {}, {}};
  TranslatedProgram Out;

  bool HasGc = GcAddr.Offset != ~0u;
  bool HasMajor = MajorGcAddr.Offset != ~0u &&
                  M.level() == LanguageLevel::Generational;

  // Reserve all function labels first (mutual recursion).
  for (const FunDef &F : P.Funs) {
    T.FunAddrs[F.Name] = M.reserveCode(C.name(F.Name));
    T.FunTys[F.Name] = C.tagArrow({F.ParamTy});
  }

  // Translate and install each function.
  for (const FunDef &F : P.Funs) {
    CodeBuilder CB(C);
    Region R1 = CB.regionParam(T.gen() ? "ry" : "r");
    Region R2 = T.gen() ? CB.regionParam("ro") : Region();
    const Type *ParamTy = T.mOf(R1, R2, F.ParamTy);
    const Value *X = CB.valParam(C.name(F.Param), ParamTy);
    // The code parameter symbol is freshened; bind the λCLOS name to it.
    gc::TagEnv Theta;
    std::map<Symbol, const Tag *> Gamma;
    Gamma[F.Param] = F.ParamTy;
    const Term *Work = T.transExp(F.Body, R1, R2, Theta, Gamma);
    const Term *Body;
    if (HasGc) {
      const Term *GcCall =
          C.termApp(C.valAddr(GcAddr), {F.ParamTy}, T.funRegions(R1, R2),
                    {C.valAddr(T.FunAddrs[F.Name]), X});
      Body = C.termIfGc(R1, GcCall, Work);
      if (HasMajor) {
        // Major collections trigger on the old generation filling up.
        const Term *MajorCall = C.termApp(
            C.valAddr(MajorGcAddr), {F.ParamTy}, T.funRegions(R1, R2),
            {C.valAddr(T.FunAddrs[F.Name]), X});
        Body = C.termIfGc(R2, MajorCall, Body);
      }
    } else {
      Body = Work;
    }
    // Bind the λCLOS parameter name to the code parameter.
    Body = C.termLet(F.Param, C.opVal(X), Body);
    M.defineCode(T.FunAddrs[F.Name], CB.build(Body));
    if (T.Failed)
      return Out;
  }

  // Main term: create the region(s) and run.
  {
    BlockBuilder B(C);
    Region R1 = B.letRegion(T.gen() ? "ry" : "r");
    Region R2 = T.gen() ? B.letRegion("ro") : Region();
    gc::TagEnv Theta;
    std::map<Symbol, const Tag *> Gamma;
    const Term *MainBody = T.transExp(P.Main, R1, R2, Theta, Gamma);
    Out.Main = B.finish(MainBody);
  }

  if (T.Failed)
    return Out;
  Out.FunAddrs = std::move(T.FunAddrs);
  Out.Ok = true;
  return Out;
}
