//===- gc/Ops.h - Operations over λGC syntax -------------------*- C++ -*-===//
///
/// \file
/// Free functions over the λGC AST:
///
///  * simultaneous capture-avoiding substitution (tags, regions, type
///    variables, and term variables at once — exactly the shape of the
///    machine's β-step, Fig 5 line 2);
///  * tag β-normalization and M/C Typerec reduction (§4.2, §6.3, §7, §8;
///    strong normalization is Prop 6.1, confluence Prop 6.2);
///  * alpha-equivalence of tags and types;
///  * free-symbol and free-region collection;
///  * pretty-printing.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_OPS_H
#define SCAV_GC_OPS_H

#include "gc/GcContext.h"
#include "gc/Lang.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace scav::gc {

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

/// A simultaneous substitution over all four variable sorts.
struct Subst {
  std::unordered_map<Symbol, const Tag *, SymbolHash> Tags;
  std::unordered_map<Symbol, Region, SymbolHash> Regions;
  std::unordered_map<Symbol, const Type *, SymbolHash> Types;
  std::unordered_map<Symbol, const Value *, SymbolHash> Vals;

  bool empty() const {
    return Tags.empty() && Regions.empty() && Types.empty() && Vals.empty();
  }
};

const Tag *applySubst(GcContext &C, const Tag *T, const Subst &S);
const Type *applySubst(GcContext &C, const Type *T, const Subst &S);
const Value *applySubst(GcContext &C, const Value *V, const Subst &S);
const Op *applySubst(GcContext &C, const Op *O, const Subst &S);
const Term *applySubst(GcContext &C, const Term *E, const Subst &S);
Region applySubst(Region R, const Subst &S);
RegionSet applySubst(const RegionSet &RS, const Subst &S);

/// Counters reported by the close* entry points (environment-mode machine
/// statistics; see MachineStats::EnvLookups).
struct CloseCounters {
  uint64_t Lookups = 0; ///< environment hits at variable occurrences
};

/// Closing substitution: like applySubst, but specialized to environments
/// whose ranges are *closed* — no free variables of any sort, and every
/// region a concrete name — as maintained by the environment-mode machine
/// (Machine.h, EvalMode::Env). Closed ranges cannot be captured, so binders
/// are never freshened; they only *shadow* (mask) same-named environment
/// entries. The traversal returns the input node unchanged whenever no
/// substitution fires underneath it, so forcing an already-closed subtree
/// is pointer-identity.
const Tag *closeTag(GcContext &C, const Tag *T, const Subst &Env,
                    CloseCounters *Counters = nullptr);
const Type *closeType(GcContext &C, const Type *T, const Subst &Env,
                      CloseCounters *Counters = nullptr);
const Value *closeValue(GcContext &C, const Value *V, const Subst &Env,
                        CloseCounters *Counters = nullptr);
const Term *closeTerm(GcContext &C, const Term *E, const Subst &Env,
                      CloseCounters *Counters = nullptr);
Region closeRegion(Region R, const Subst &Env,
                   CloseCounters *Counters = nullptr);
RegionSet closeRegionSet(const RegionSet &RS, const Subst &Env,
                         CloseCounters *Counters = nullptr);

/// Convenience single-binding substitutions.
const Tag *substTag(GcContext &C, const Tag *In, Symbol Var, const Tag *Rep);
const Type *substTagInType(GcContext &C, const Type *In, Symbol Var,
                           const Tag *Rep);
const Type *substRegionInType(GcContext &C, const Type *In, Symbol Var,
                              Region Rep);
const Type *substTypeVarInType(GcContext &C, const Type *In, Symbol Var,
                               const Type *Rep);

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

using SymbolSet = std::unordered_set<Symbol, SymbolHash>;

/// Collects every symbol mentioned anywhere in the node (free or bound;
/// conservative — used only to steer binder freshening).
void collectSymbols(const Tag *T, SymbolSet &Out);
void collectSymbols(const Type *T, SymbolSet &Out);
void collectSymbols(const Value *V, SymbolSet &Out);
void collectSymbols(const Term *E, SymbolSet &Out);

/// Free tag variables of a tag.
void freeTagVars(const Tag *T, SymbolSet &Out);

/// Free regions (names and variables) of a type. Used to implement the
/// environment restrictions Γ|∆ / Φ|∆ and the ∆;Θ;Φ ⊢ σ judgment.
void freeRegionsOfType(const Type *T, RegionSet &Out);

/// Free term variables of a value / term.
void freeValVars(const Value *V, SymbolSet &Out);
void freeValVars(const Term *E, SymbolSet &Out);

//===----------------------------------------------------------------------===//
// Normalization (Props 6.1/6.2)
//===----------------------------------------------------------------------===//

/// β-normalizes a tag (normal order; strongly normalizing for well-kinded
/// tags since the tag language is a simply-kinded λ-calculus).
const Tag *normalizeTag(GcContext &C, const Tag *T);

/// Normalizes a type: normalizes embedded tags and reduces the M (§4.2 /
/// §7 / §8 equations, selected by \p Level) and C (§7) operators as far as
/// possible. M/C applications on variable-headed tags are normal forms.
const Type *normalizeType(GcContext &C, const Type *T, LanguageLevel Level);

/// One-step head expansion of M_ρs(τ) / C_{ρ,ρ'}(τ) for a *constructor*
/// -headed normal tag; returns nullptr if the tag is variable-headed
/// (stuck). Exposed for the translators and the native collector.
const Type *expandMOnce(GcContext &C, const std::vector<Region> &Rs,
                        const Tag *NormalTag, LanguageLevel Level);
const Type *expandCOnce(GcContext &C, Region From, Region To,
                        const Tag *NormalTag);

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

/// Alpha-equivalence of raw tags / types (no normalization).
bool alphaEqualTag(const Tag *A, const Tag *B);
bool alphaEqualType(const Type *A, const Type *B);

/// Semantic equality: normalize (at \p Level) then alpha-compare.
bool tagEqual(GcContext &C, const Tag *A, const Tag *B);
bool typeEqual(GcContext &C, const Type *A, const Type *B,
               LanguageLevel Level);

//===----------------------------------------------------------------------===//
// Kinding (Θ ⊢ τ : κ, Fig 6 top-left)
//===----------------------------------------------------------------------===//

using TagEnv = std::unordered_map<Symbol, const Kind *, SymbolHash>;

/// Infers the kind of \p T under \p Theta; returns nullptr if ill-kinded.
const Kind *kindOfTag(GcContext &C, const Tag *T, const TagEnv &Theta);

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

std::string printKind(const GcContext &C, const Kind *K);
std::string printTag(const GcContext &C, const Tag *T);
std::string printType(const GcContext &C, const Type *T);
std::string printRegion(const GcContext &C, Region R);
std::string printRegionSet(const GcContext &C, const RegionSet &RS);
std::string printValue(const GcContext &C, const Value *V);
std::string printTerm(const GcContext &C, const Term *E);

//===----------------------------------------------------------------------===//
// Size metrics (used by the E6 type-growth ablation)
//===----------------------------------------------------------------------===//

size_t tagSize(const Tag *T);
size_t typeSize(const Type *T);
size_t termSize(const Term *E);
size_t valueSize(const Value *V);

} // namespace scav::gc

#endif // SCAV_GC_OPS_H
