//===- gc/NativeCollector.h - Meta-level C++ collector ----------*- C++ -*-===//
///
/// \file
/// A stop-and-copy collector implemented natively in C++ over the same
/// region memory the λGC machine uses. It serves two purposes:
///
///  * an *oracle* for the certified collectors: both must produce
///    isomorphic to-spaces from the same from-space;
///  * the performance baseline of experiment E8 (certified-but-interpreted
///    λGC collector vs native code).
///
/// Unlike the certified collectors it is not written in λGC and is
/// therefore part of the trusted computing base — exactly the situation
/// the paper is trying to eliminate (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_NATIVECOLLECTOR_H
#define SCAV_GC_NATIVECOLLECTOR_H

#include "gc/Machine.h"

namespace scav::gc {

struct NativeGcStats {
  uint64_t ObjectsCopied = 0;
  uint64_t ForwardingHits = 0; ///< Shared objects found already copied.
};

/// Copy order. The paper's certified collectors are depth-first (their
/// stack is the continuation region, §6.1); §10 names Cheney-style
/// breadth-first copying as the desired extension — provided here at the
/// native level, with the classic reserved-slot forwarding trick standing
/// in for Cheney's scan pointer.
enum class CopyOrder { DepthFirst, BreadthFirst };

/// Copies everything reachable from \p Root out of region \p From into a
/// fresh region of \p M, then reclaims \p From. With \p PreserveSharing, a
/// forwarding table keeps DAGs intact (the Fig 9 behaviour); without it,
/// sharing is lost (the Fig 4 behaviour). Returns the relocated root and
/// the new region.
///
/// Ψ is refreshed for the new region when the machine tracks types.
std::pair<const Value *, Region>
nativeCollect(Machine &M, const Value *Root, Region From,
              bool PreserveSharing, NativeGcStats &Stats,
              CopyOrder Order = CopyOrder::DepthFirst);

} // namespace scav::gc

#endif // SCAV_GC_NATIVECOLLECTOR_H
