//===- gc/NativeCollector.h - Meta-level C++ collector ----------*- C++ -*-===//
///
/// \file
/// A stop-and-copy collector implemented natively in C++ over the same
/// region memory the λGC machine uses. It serves two purposes:
///
///  * an *oracle* for the certified collectors: both must produce
///    isomorphic to-spaces from the same from-space;
///  * the performance baseline of experiment E8 (certified-but-interpreted
///    λGC collector vs native code).
///
/// Unlike the certified collectors it is not written in λGC and is
/// therefore part of the trusted computing base — exactly the situation
/// the paper is trying to eliminate (§2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_NATIVECOLLECTOR_H
#define SCAV_GC_NATIVECOLLECTOR_H

#include "gc/Machine.h"
#include "support/Metrics.h"

#include <vector>

namespace scav::gc {

struct NativeGcStats {
  uint64_t ObjectsCopied = 0;
  uint64_t ForwardingHits = 0; ///< Shared objects found already copied.
  // Parallel-copy counters (gc.parallel.* in bench JSON). Zero/empty on the
  // serial paths.
  unsigned Workers = 0;          ///< Worker threads that ran.
  uint64_t Steals = 0;           ///< Chunks taken from another worker.
  uint64_t ChunksPublished = 0;  ///< Chunks made visible for stealing.
  std::vector<uint64_t> WorkerCopyNs;   ///< Per-worker wall time in the loop.
  std::vector<uint64_t> WorkerObjects;  ///< Per-worker cells copied.

  /// Publishes under "gc.parallel.*": the scalar counters plus per-worker
  /// copy-loop time and copied-cell distributions as histograms (the JSON
  /// record then carries count/mean/p50/p99/max for each).
  void exportTo(support::MetricsRegistry &Reg) const {
    Reg.setCounter("gc.parallel.workers", Workers);
    Reg.setCounter("gc.parallel.steals", Steals);
    Reg.setCounter("gc.parallel.chunks_published", ChunksPublished);
    Reg.setCounter("gc.parallel.objects_copied", ObjectsCopied);
    Reg.setCounter("gc.parallel.forwarding_hits", ForwardingHits);
    for (uint64_t Ns : WorkerCopyNs)
      Reg.histogram("gc.parallel.worker_copy_ns").record(double(Ns));
    for (uint64_t N : WorkerObjects)
      Reg.histogram("gc.parallel.worker_objects").record(double(N));
  }
};

/// Copy order. The paper's certified collectors are depth-first (their
/// stack is the continuation region, §6.1); §10 names Cheney-style
/// breadth-first copying as the desired extension — provided here at the
/// native level, with the classic reserved-slot forwarding trick standing
/// in for Cheney's scan pointer.
enum class CopyOrder { DepthFirst, BreadthFirst };

/// Copies everything reachable from \p Root out of region \p From into a
/// fresh region of \p M, then reclaims \p From. With \p PreserveSharing, a
/// forwarding table keeps DAGs intact (the Fig 9 behaviour); without it,
/// sharing is lost (the Fig 4 behaviour). Returns the relocated root and
/// the new region.
///
/// With \p Threads > 1 and BreadthFirst order, the Cheney copy runs on that
/// many worker threads over chunked work-stealing queues (the mutator is
/// parked for the whole collection, so the from-space is stable). Cell
/// order in the to-region then depends on claim interleaving; `Threads ==
/// 1` always takes the sequential path, which is bit-identical to the
/// pre-parallel collector (the differential/golden tests rely on this).
/// `Threads == 0` resolves to the process default (setNativeGcThreads /
/// SCAV_THREADS, else 1). DepthFirst ignores \p Threads: its copy order
/// *is* the recursion order.
///
/// Ψ is refreshed for the new region when the machine tracks types.
std::pair<const Value *, Region>
nativeCollect(Machine &M, const Value *Root, Region From,
              bool PreserveSharing, NativeGcStats &Stats,
              CopyOrder Order = CopyOrder::DepthFirst, unsigned Threads = 0);

/// Default worker count for parallel native copies, used when nativeCollect
/// is called with Threads == 0: a calling thread's scoped override when one
/// is active (ScopedNativeGcThreads), else the process-wide default.
/// The process default is initialized from SCAV_THREADS — malformed values
/// are diagnosed on stderr and fall back to 1 (support/ParseInt.h) — and
/// certgc_run's --threads flag overrides it via the setter; 1 preserves the
/// deterministic sequential path.
unsigned nativeGcThreads();

/// Sets the process-wide default. The slot is atomic, so a late call is
/// safe, but configure-at-startup is the intended use; concurrent sessions
/// wanting different counts use ScopedNativeGcThreads instead of fighting
/// over this.
void setNativeGcThreads(unsigned N);

/// RAII thread-local override of nativeGcThreads() for the current thread:
/// lets each certgc_serve session carry its own `threads` knob without
/// mutating (and racing on) the process default from worker threads.
/// N == 0 means "no override" — the process default stays in effect.
class ScopedNativeGcThreads {
public:
  explicit ScopedNativeGcThreads(unsigned N);
  ~ScopedNativeGcThreads();
  ScopedNativeGcThreads(const ScopedNativeGcThreads &) = delete;
  ScopedNativeGcThreads &operator=(const ScopedNativeGcThreads &) = delete;

private:
  unsigned Prev;
};

} // namespace scav::gc

#endif // SCAV_GC_NATIVECOLLECTOR_H
