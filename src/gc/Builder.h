//===- gc/Builder.h - Ergonomic λGC term construction ----------*- C++ -*-===//
///
/// \file
/// A small forward-style builder for λGC terms. λGC code is A-normal /
/// continuation-passing, so straight-line prefixes (lets, opens, region
/// allocation, set, widen) compose naturally: build the prefix with a
/// BlockBuilder, then `finish(tail)` wraps the accumulated binders around
/// the tail term. Branching constructs (ifgc, typecase, ifleft, ifreg, if0)
/// take fully-built sub-terms.
///
/// CodeBuilder assembles λ[~t:~κ][~r](~x:~σ).e code values, giving the
/// collectors (CollectorBasic/Forward/Gen) a readable shape that tracks the
/// paper's Figs 9, 11, and 12 closely.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_BUILDER_H
#define SCAV_GC_BUILDER_H

#include "gc/GcContext.h"

#include <functional>
#include <string_view>
#include <vector>

namespace scav::gc {

/// Accumulates straight-line binders and wraps them around a tail term.
class BlockBuilder {
public:
  explicit BlockBuilder(GcContext &C) : C(C) {}

  GcContext &context() { return C; }

  /// let x = op in ...; returns the variable as a value.
  const Value *bind(std::string_view Base, const Op *O) {
    return bindExact(C.fresh(Base), O);
  }

  /// let X = op in ... with the exact symbol (used by the translators,
  /// whose binders come from the source program).
  const Value *bindExact(Symbol X, const Op *O) {
    Wrappers.push_back(
        [this, X, O](const Term *T) { return C.termLet(X, O, T); });
    return C.valVar(X);
  }

  const Value *name(std::string_view Base, const Value *V) {
    return bind(Base, C.opVal(V));
  }
  const Value *proj1(const Value *V) { return bind("p1", C.opProj(1, V)); }
  const Value *proj2(const Value *V) { return bind("p2", C.opProj(2, V)); }
  const Value *put(Region R, const Value *V) {
    return bind("a", C.opPut(R, V));
  }
  const Value *get(const Value *V) { return bind("g", C.opGet(V)); }
  const Value *strip(const Value *V) { return bind("s", C.opStrip(V)); }
  const Value *prim(PrimOp P, const Value *L, const Value *R) {
    return bind("n", C.opPrim(P, L, R));
  }

  /// let region r in ...; returns the region variable.
  Region letRegion(std::string_view Base) {
    Symbol R = C.fresh(Base);
    Wrappers.push_back(
        [this, R](const Term *T) { return C.termLetRegion(R, T); });
    return Region::var(R);
  }

  /// only ∆ in ...
  void only(RegionSet Keep) {
    Wrappers.push_back([this, Keep = std::move(Keep)](const Term *T) {
      return C.termOnly(Keep, T);
    });
  }

  /// open v as ⟨t, x⟩ in ...; returns {tag variable, value variable}.
  std::pair<const Tag *, const Value *> openTag(const Value *V,
                                                std::string_view TagBase,
                                                std::string_view ValBase) {
    return openTagExact(V, C.fresh(TagBase), C.fresh(ValBase));
  }

  /// open v as ⟨T, X⟩ in ... with exact symbols.
  std::pair<const Tag *, const Value *> openTagExact(const Value *V, Symbol T,
                                                     Symbol X) {
    Wrappers.push_back([this, V, T, X](const Term *Body) {
      return C.termOpenTag(V, T, X, Body);
    });
    return {C.tagVar(T), C.valVar(X)};
  }

  /// open v as ⟨α, x⟩ in ...; returns {type variable, value variable}.
  std::pair<const Type *, const Value *> openTyVar(const Value *V,
                                                   std::string_view TyBase,
                                                   std::string_view ValBase) {
    Symbol A = C.fresh(TyBase);
    Symbol X = C.fresh(ValBase);
    Wrappers.push_back([this, V, A, X](const Term *Body) {
      return C.termOpenTyVar(V, A, X, Body);
    });
    return {C.typeVar(A), C.valVar(X)};
  }

  /// open v as ⟨r, x⟩ in ...; returns {region variable, value variable}.
  std::pair<Region, const Value *> openRegion(const Value *V,
                                              std::string_view RegBase,
                                              std::string_view ValBase) {
    Symbol R = C.fresh(RegBase);
    Symbol X = C.fresh(ValBase);
    Wrappers.push_back([this, V, R, X](const Term *Body) {
      return C.termOpenRegion(V, R, X, Body);
    });
    return {Region::var(R), C.valVar(X)};
  }

  /// set dst := src ; ...
  void setCell(const Value *Dst, const Value *Src) {
    Wrappers.push_back([this, Dst, Src](const Term *T) {
      return C.termSet(Dst, Src, T);
    });
  }

  /// let x = widen[ρ][τ](v) in ...; returns the variable.
  const Value *widen(Region To, const Tag *Tau, const Value *V) {
    Symbol X = C.fresh("w");
    Wrappers.push_back([this, X, To, Tau, V](const Term *T) {
      return C.termLetWiden(X, To, Tau, V, T);
    });
    return C.valVar(X);
  }

  /// Wraps the accumulated binders around \p Tail.
  const Term *finish(const Term *Tail) {
    const Term *Out = Tail;
    for (auto It = Wrappers.rbegin(), E = Wrappers.rend(); It != E; ++It)
      Out = (*It)(Out);
    Wrappers.clear();
    return Out;
  }

private:
  GcContext &C;
  std::vector<std::function<const Term *(const Term *)>> Wrappers;
};

/// Assembles a code value λ[~t:~κ][~r](~x:~σ).e.
class CodeBuilder {
public:
  explicit CodeBuilder(GcContext &C) : C(C) {}

  /// Adds a tag parameter of kind Ω (or the given kind).
  const Tag *tagParam(std::string_view Base) {
    return tagParam(Base, C.omega());
  }
  const Tag *tagParam(std::string_view Base, const Kind *K) {
    Symbol S = C.fresh(Base);
    TagParams.push_back(S);
    TagKinds.push_back(K);
    return C.tagVar(S);
  }

  Region regionParam(std::string_view Base) {
    Symbol S = C.fresh(Base);
    RegionParams.push_back(S);
    return Region::var(S);
  }

  const Value *valParam(std::string_view Base, const Type *T) {
    Symbol S = C.fresh(Base);
    ValParams.push_back(S);
    ValTypes.push_back(T);
    return C.valVar(S);
  }

  /// Value-parameter types may need to be fixed up after the fact (the
  /// closure-converted collector's continuation types mention tags created
  /// later); index is the parameter's position.
  void setValParamType(size_t Index, const Type *T) {
    assert(Index < ValTypes.size() && "bad parameter index");
    ValTypes[Index] = T;
  }

  const Value *build(const Term *Body) {
    return C.valCode(TagParams, TagKinds, RegionParams, ValParams, ValTypes,
                     Body);
  }

private:
  GcContext &C;
  std::vector<Symbol> TagParams;
  std::vector<const Kind *> TagKinds;
  std::vector<Symbol> RegionParams;
  std::vector<Symbol> ValParams;
  std::vector<const Type *> ValTypes;
};

} // namespace scav::gc

#endif // SCAV_GC_BUILDER_H
