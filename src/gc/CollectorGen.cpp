//===- gc/CollectorGen.cpp - Certified generational collector (§8) --------===//
///
/// \file
/// See CollectorGen.h. CPS/closure-converted form of Fig 11, following the
/// Fig 12 continuation discipline with a temporary continuation region r3.
///
//===----------------------------------------------------------------------===//

#include "gc/CollectorGen.h"

#include "gc/ContClosure.h"

using namespace scav;
using namespace scav::gc;

namespace {

ContLayout genLayout(Region Ry, Region Ro, Region R3) {
  ContLayout L;
  L.Regions = {Ry, Ro, R3};
  L.To = Ro;
  L.Holder = R3;
  L.ExtraM = {Ro};
  return L;
}

} // namespace

GenCollectorLib scav::gc::installGenCollector(Machine &M) {
  assert(M.level() == LanguageLevel::Generational &&
         "generational collector requires lambda-GC-gen");
  GcContext &C = M.context();

  GenCollectorLib Lib;
  Lib.Gc = M.reserveCode("gcG");
  Lib.GcEnd = M.reserveCode("gcendG");
  Lib.Copy = M.reserveCode("copyG");
  Lib.CopyPair1 = M.reserveCode("copypair1G");
  Lib.CopyPair2 = M.reserveCode("copypair2G");
  Lib.CopyExist1 = M.reserveCode("copyexist1G");

  const Tag *IdFun = C.tagIdFun();

  // M_{a,b}(τ) and M_{a,b}(τ→0).
  auto MM = [&](Region A, Region B, const Tag *T) {
    return C.typeM({A, B}, T);
  };
  auto MArrow = [&](Region A, Region B, const Tag *Arg) {
    return MM(A, B, C.tagArrow({Arg}));
  };

  //--------------------------------------------------------------------//
  // copy[t:Ω][ry,ro,r3](x : M_{ry,ro}(t), k : tk[t])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region R3 = CB.regionParam("r3");
    ContLayout L = genLayout(Ry, Ro, R3);
    const Value *X = CB.valParam("x", MM(Ry, Ro, T));
    const Value *K = CB.valParam("k", contType(C, L, T));

    const Term *IntArm = applyCont(C, L, K, X);
    const Term *ArrowArm = applyCont(C, L, K, X);

    // t1 × t2 arm.
    Symbol TP1 = C.fresh("t1"), TP2 = C.fresh("t2");
    const Term *ProdArm;
    {
      const Tag *T1 = C.tagVar(TP1), *T2 = C.tagVar(TP2);
      const Tag *ProdTag = C.tagProd(T1, T2);
      BlockBuilder B(C);
      auto [R, Xp] = B.openRegion(X, "r", "xp");

      // r = ro: the object is already old; re-pack at the tighter bound.
      const Term *OldArm;
      {
        BlockBuilder OB(C);
        Symbol R2 = C.fresh("r");
        const Type *Body =
            C.typeProd(MM(Region::var(R2), Ro, T1),
                       MM(Region::var(R2), Ro, T2));
        const Value *Pk =
            C.valPackRegion(R2, RegionSet{Ro}, Ro, Xp, Body);
        OldArm = OB.finish(applyCont(C, L, K, Pk));
      }

      // r ≠ ro: young; copy both components into the old generation.
      const Term *YoungArm;
      {
        BlockBuilder YB(C);
        const Value *G = YB.get(Xp);
        const Value *X2 = YB.proj2(G);
        const Value *Env = C.valPair(X2, K);
        const Type *EnvTy =
            C.typeProd(MM(Ry, Ro, T2), contType(C, L, ProdTag));
        const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair1),
                                          {T1, T2, IdFun}, {Ry, Ro, R3});
        const Value *Pk =
            packCont(C, L, T1, T1, T2, IdFun, EnvTy, Code, Env);
        const Value *K2 = YB.put(R3, Pk);
        const Value *X1 = YB.proj1(G);
        YoungArm = YB.finish(
            C.termApp(C.valAddr(Lib.Copy), {T1}, {Ry, Ro, R3}, {X1, K2}));
      }

      ProdArm = B.finish(C.termIfReg(R, Ro, OldArm, YoungArm));
    }

    // ∃ arm.
    Symbol TEv = C.fresh("te");
    const Term *ExistsArm;
    {
      const Tag *Te = C.tagVar(TEv);
      Symbol U = C.fresh("u");
      const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
      BlockBuilder B(C);
      auto [R, Xp] = B.openRegion(X, "r", "xp");

      const Term *OldArm;
      {
        BlockBuilder OB(C);
        Symbol R2 = C.fresh("r");
        Symbol U2 = C.fresh("u");
        const Type *Body = C.typeExistsTag(
            U2, C.omega(),
            MM(Region::var(R2), Ro, C.tagApp(Te, C.tagVar(U2))));
        const Value *Pk =
            C.valPackRegion(R2, RegionSet{Ro}, Ro, Xp, Body);
        OldArm = OB.finish(applyCont(C, L, K, Pk));
      }

      const Term *YoungArm;
      {
        BlockBuilder YB(C);
        const Value *G = YB.get(Xp);
        auto [Tx, Y] = YB.openTag(G, "tx", "y");
        const Tag *PayloadTag = C.tagApp(Te, Tx);
        const Type *EnvTy = contType(C, L, ExTag);
        const Value *Code = C.valTransApp(C.valAddr(Lib.CopyExist1),
                                          {Tx, C.tagInt(), Te}, {Ry, Ro, R3});
        const Value *Pk = packCont(C, L, PayloadTag, Tx, C.tagInt(), Te,
                                   EnvTy, Code, K);
        const Value *K2 = YB.put(R3, Pk);
        YoungArm = YB.finish(C.termApp(C.valAddr(Lib.Copy), {PayloadTag},
                                       {Ry, Ro, R3}, {Y, K2}));
      }

      ExistsArm = B.finish(C.termIfReg(R, Ro, OldArm, YoungArm));
    }

    const Term *Body = C.termTypecase(T, IntArm, ArrowArm, TP1, TP2, ProdArm,
                                      TEv, ExistsArm);
    M.defineCode(Lib.Copy, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair1[t1,t2,te][ry,ro,r3](x1 : M_{ro,ro}(t1),
  //                               c : M_{ry,ro}(t2) × tk[t1×t2])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region R3 = CB.regionParam("r3");
    ContLayout L = genLayout(Ry, Ro, R3);
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X1 = CB.valParam("x1", MM(Ro, Ro, T1));
    const Value *Cv = CB.valParam(
        "c", C.typeProd(MM(Ry, Ro, T2), contType(C, L, ProdTag)));

    BlockBuilder B(C);
    const Value *K = B.proj2(Cv);
    const Value *Env = C.valPair(X1, K);
    const Type *EnvTy =
        C.typeProd(MM(Ro, Ro, T1), contType(C, L, ProdTag));
    const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair2),
                                      {T1, T2, IdFun}, {Ry, Ro, R3});
    const Value *Pk = packCont(C, L, T2, T1, T2, IdFun, EnvTy, Code, Env);
    const Value *K2 = B.put(R3, Pk);
    const Value *Second = B.proj1(Cv);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T2}, {Ry, Ro, R3}, {Second, K2}));
    M.defineCode(Lib.CopyPair1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair2[t1,t2,te][ry,ro,r3](x2 : M_{ro,ro}(t2),
  //                               c : M_{ro,ro}(t1) × tk[t1×t2])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region R3 = CB.regionParam("r3");
    ContLayout L = genLayout(Ry, Ro, R3);
    const Value *X2 = CB.valParam("x2", MM(Ro, Ro, T2));
    const Value *Cv = CB.valParam(
        "c",
        C.typeProd(MM(Ro, Ro, T1), contType(C, L, C.tagProd(T1, T2))));

    BlockBuilder B(C);
    const Value *X1 = B.proj1(Cv);
    const Value *A = B.put(Ro, C.valPair(X1, X2));
    Symbol R2 = C.fresh("r");
    const Type *Body2 = C.typeProd(MM(Region::var(R2), Ro, T1),
                                   MM(Region::var(R2), Ro, T2));
    const Value *Pk = C.valPackRegion(R2, RegionSet{Ro}, Ro, A, Body2);
    const Value *K = B.proj2(Cv);
    const Term *Body = B.finish(applyCont(C, L, K, Pk));
    M.defineCode(Lib.CopyPair2, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copyexist1[t1,t2,te][ry,ro,r3](z1 : M_{ro,ro}(te t1), c : tk[∃u.te u])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    const Tag *Te = CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region R3 = CB.regionParam("r3");
    ContLayout L = genLayout(Ry, Ro, R3);
    Symbol U = C.fresh("u");
    const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
    const Value *Z1 = CB.valParam("z1", MM(Ro, Ro, C.tagApp(Te, T1)));
    const Value *Cv = CB.valParam("c", contType(C, L, ExTag));

    BlockBuilder B(C);
    Symbol V = C.fresh("v");
    const Value *Inner = C.valPackTag(
        V, T1, Z1, MM(Ro, Ro, C.tagApp(Te, C.tagVar(V))));
    const Value *A = B.put(Ro, Inner);
    Symbol R2 = C.fresh("r");
    Symbol U2 = C.fresh("u");
    const Type *Body2 = C.typeExistsTag(
        U2, C.omega(),
        MM(Region::var(R2), Ro, C.tagApp(Te, C.tagVar(U2))));
    const Value *Pk = C.valPackRegion(R2, RegionSet{Ro}, Ro, A, Body2);
    const Term *Body = B.finish(applyCont(C, L, Cv, Pk));
    M.defineCode(Lib.CopyExist1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gcend[t1,t2,te][ry,ro,r3](y : M_{ro,ro}(t1), f : M_{ro,ro}(t1→0))
  // Free the young generation and continuation region, allocate a fresh
  // young generation, and re-enter the mutator.
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    (void)CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    (void)CB.regionParam("r3");
    const Value *Y = CB.valParam("y", MM(Ro, Ro, T1));
    const Value *F = CB.valParam("f", MArrow(Ro, Ro, T1));

    BlockBuilder B(C);
    B.only(RegionSet{Ro});
    Region Ry2 = B.letRegion("ry");
    const Term *Body = B.finish(C.termApp(F, {}, {Ry2, Ro}, {Y}));
    M.defineCode(Lib.GcEnd, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gc[t:Ω][ry,ro](f : M_{ry,ro}(t→0), x : M_{ry,ro}(t))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    const Value *F = CB.valParam("f", MArrow(Ry, Ro, T));
    const Value *X = CB.valParam("x", MM(Ry, Ro, T));

    BlockBuilder B(C);
    Region R3 = B.letRegion("r3");
    ContLayout L = genLayout(Ry, Ro, R3);
    const Type *EnvTy = MArrow(Ro, Ro, T);
    const Value *Code = C.valTransApp(C.valAddr(Lib.GcEnd),
                                      {T, C.tagInt(), IdFun}, {Ry, Ro, R3});
    const Value *Pk =
        packCont(C, L, T, T, C.tagInt(), IdFun, EnvTy, Code, F);
    const Value *K = B.put(R3, Pk);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T}, {Ry, Ro, R3}, {X, K}));
    M.defineCode(Lib.Gc, CB.build(Body));
  }

  markCollectorPhases(M, Lib);
  return Lib;
}

//===----------------------------------------------------------------------===//
// The major collector (§8's "same as the non-generational one", written at
// the Generational level): regions (ry, ro, rn, r3), everything reachable
// is copied into rn unconditionally.
//===----------------------------------------------------------------------===//

namespace {

ContLayout fullLayout(Region Ry, Region Ro, Region Rn, Region R3) {
  ContLayout L;
  L.Regions = {Ry, Ro, Rn, R3};
  L.To = Rn;
  L.Holder = R3;
  L.ExtraM = {Rn};
  return L;
}

} // namespace

GenCollectorLib scav::gc::installGenFullCollector(Machine &M) {
  assert(M.level() == LanguageLevel::Generational &&
         "major collector requires lambda-GC-gen");
  GcContext &C = M.context();

  GenCollectorLib Lib;
  Lib.Gc = M.reserveCode("gcFull");
  Lib.GcEnd = M.reserveCode("gcendFull");
  Lib.Copy = M.reserveCode("copyFull");
  Lib.CopyPair1 = M.reserveCode("copypair1Full");
  Lib.CopyPair2 = M.reserveCode("copypair2Full");
  Lib.CopyExist1 = M.reserveCode("copyexist1Full");

  const Tag *IdFun = C.tagIdFun();
  auto MM = [&](Region A, Region B, const Tag *T) {
    return C.typeM({A, B}, T);
  };
  auto MArrow = [&](Region A, Region B, const Tag *Arg) {
    return MM(A, B, C.tagArrow({Arg}));
  };

  //--------------------------------------------------------------------//
  // copyFull[t:Ω][ry,ro,rn,r3](x : M_{ry,ro}(t), k : tk[t])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region Rn = CB.regionParam("rn");
    Region R3 = CB.regionParam("r3");
    ContLayout L = fullLayout(Ry, Ro, Rn, R3);
    const Value *X = CB.valParam("x", MM(Ry, Ro, T));
    const Value *K = CB.valParam("k", contType(C, L, T));

    const Term *IntArm = applyCont(C, L, K, X);
    const Term *ArrowArm = applyCont(C, L, K, X);

    Symbol TP1 = C.fresh("t1"), TP2 = C.fresh("t2");
    const Term *ProdArm;
    {
      const Tag *T1 = C.tagVar(TP1), *T2 = C.tagVar(TP2);
      const Tag *ProdTag = C.tagProd(T1, T2);
      BlockBuilder B(C);
      auto [R, Xp] = B.openRegion(X, "r", "xp");
      (void)R;
      const Value *G = B.get(Xp);
      const Value *X2 = B.proj2(G);
      const Value *Env = C.valPair(X2, K);
      const Type *EnvTy =
          C.typeProd(MM(Ry, Ro, T2), contType(C, L, ProdTag));
      const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair1),
                                        {T1, T2, IdFun}, L.Regions);
      const Value *Pk = packCont(C, L, T1, T1, T2, IdFun, EnvTy, Code, Env);
      const Value *K2 = B.put(R3, Pk);
      const Value *X1 = B.proj1(G);
      ProdArm = B.finish(
          C.termApp(C.valAddr(Lib.Copy), {T1}, L.Regions, {X1, K2}));
    }

    Symbol TEv = C.fresh("te");
    const Term *ExistsArm;
    {
      const Tag *Te = C.tagVar(TEv);
      Symbol U = C.fresh("u");
      const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
      BlockBuilder B(C);
      auto [R, Xp] = B.openRegion(X, "r", "xp");
      (void)R;
      const Value *G = B.get(Xp);
      auto [Tx, Y] = B.openTag(G, "tx", "y");
      const Tag *PayloadTag = C.tagApp(Te, Tx);
      const Type *EnvTy = contType(C, L, ExTag);
      const Value *Code = C.valTransApp(C.valAddr(Lib.CopyExist1),
                                        {Tx, C.tagInt(), Te}, L.Regions);
      const Value *Pk =
          packCont(C, L, PayloadTag, Tx, C.tagInt(), Te, EnvTy, Code, K);
      const Value *K2 = B.put(R3, Pk);
      ExistsArm = B.finish(C.termApp(C.valAddr(Lib.Copy), {PayloadTag},
                                     L.Regions, {Y, K2}));
    }

    const Term *Body = C.termTypecase(T, IntArm, ArrowArm, TP1, TP2, ProdArm,
                                      TEv, ExistsArm);
    M.defineCode(Lib.Copy, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair1Full[t1,t2,te][ry,ro,rn,r3](x1 : M_{rn,rn}(t1),
  //                                      c : M_{ry,ro}(t2) × tk[t1×t2])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region Rn = CB.regionParam("rn");
    Region R3 = CB.regionParam("r3");
    ContLayout L = fullLayout(Ry, Ro, Rn, R3);
    const Tag *ProdTag = C.tagProd(T1, T2);
    const Value *X1 = CB.valParam("x1", MM(Rn, Rn, T1));
    const Value *Cv = CB.valParam(
        "c", C.typeProd(MM(Ry, Ro, T2), contType(C, L, ProdTag)));

    BlockBuilder B(C);
    const Value *K = B.proj2(Cv);
    const Value *Env = C.valPair(X1, K);
    const Type *EnvTy =
        C.typeProd(MM(Rn, Rn, T1), contType(C, L, ProdTag));
    const Value *Code = C.valTransApp(C.valAddr(Lib.CopyPair2),
                                      {T1, T2, IdFun}, L.Regions);
    const Value *Pk = packCont(C, L, T2, T1, T2, IdFun, EnvTy, Code, Env);
    const Value *K2 = B.put(R3, Pk);
    const Value *Second = B.proj1(Cv);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T2}, L.Regions, {Second, K2}));
    M.defineCode(Lib.CopyPair1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copypair2Full[t1,t2,te][ry,ro,rn,r3](x2 : M_{rn,rn}(t2),
  //                                      c : M_{rn,rn}(t1) × tk[t1×t2])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    const Tag *T2 = CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region Rn = CB.regionParam("rn");
    Region R3 = CB.regionParam("r3");
    ContLayout L = fullLayout(Ry, Ro, Rn, R3);
    const Value *X2 = CB.valParam("x2", MM(Rn, Rn, T2));
    const Value *Cv = CB.valParam(
        "c",
        C.typeProd(MM(Rn, Rn, T1), contType(C, L, C.tagProd(T1, T2))));

    BlockBuilder B(C);
    const Value *X1 = B.proj1(Cv);
    const Value *A = B.put(Rn, C.valPair(X1, X2));
    Symbol R2 = C.fresh("r");
    const Type *Body2 = C.typeProd(MM(Region::var(R2), Rn, T1),
                                   MM(Region::var(R2), Rn, T2));
    const Value *Pk = C.valPackRegion(R2, RegionSet{Rn}, Rn, A, Body2);
    const Value *K = B.proj2(Cv);
    const Term *Body = B.finish(applyCont(C, L, K, Pk));
    M.defineCode(Lib.CopyPair2, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // copyexist1Full[t1,t2,te][ry,ro,rn,r3](z1 : M_{rn,rn}(te t1),
  //                                       c : tk[∃u.te u])
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    const Tag *Te = CB.tagParam("te", C.omegaToOmega());
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    Region Rn = CB.regionParam("rn");
    Region R3 = CB.regionParam("r3");
    ContLayout L = fullLayout(Ry, Ro, Rn, R3);
    Symbol U = C.fresh("u");
    const Tag *ExTag = C.tagExists(U, C.tagApp(Te, C.tagVar(U)));
    const Value *Z1 = CB.valParam("z1", MM(Rn, Rn, C.tagApp(Te, T1)));
    const Value *Cv = CB.valParam("c", contType(C, L, ExTag));

    BlockBuilder B(C);
    Symbol V = C.fresh("v");
    const Value *Inner = C.valPackTag(
        V, T1, Z1, MM(Rn, Rn, C.tagApp(Te, C.tagVar(V))));
    const Value *A = B.put(Rn, Inner);
    Symbol R2 = C.fresh("r");
    Symbol U2 = C.fresh("u");
    const Type *Body2 = C.typeExistsTag(
        U2, C.omega(),
        MM(Region::var(R2), Rn, C.tagApp(Te, C.tagVar(U2))));
    const Value *Pk = C.valPackRegion(R2, RegionSet{Rn}, Rn, A, Body2);
    const Term *Body = B.finish(applyCont(C, L, Cv, Pk));
    M.defineCode(Lib.CopyExist1, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gcendFull[t1,t2,te][ry,ro,rn,r3](y : M_{rn,rn}(t1), f : M_{rn,rn}(t1→0))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T1 = CB.tagParam("t1");
    (void)CB.tagParam("t2");
    (void)CB.tagParam("te", C.omegaToOmega());
    (void)CB.regionParam("ry");
    (void)CB.regionParam("ro");
    Region Rn = CB.regionParam("rn");
    (void)CB.regionParam("r3");
    const Value *Y = CB.valParam("y", MM(Rn, Rn, T1));
    const Value *F = CB.valParam("f", MArrow(Rn, Rn, T1));

    BlockBuilder B(C);
    B.only(RegionSet{Rn});
    Region Ry2 = B.letRegion("ry");
    const Term *Body = B.finish(C.termApp(F, {}, {Ry2, Rn}, {Y}));
    M.defineCode(Lib.GcEnd, CB.build(Body));
  }

  //--------------------------------------------------------------------//
  // gcFull[t:Ω][ry,ro](f : M_{ry,ro}(t→0), x : M_{ry,ro}(t))
  //--------------------------------------------------------------------//
  {
    CodeBuilder CB(C);
    const Tag *T = CB.tagParam("t");
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    const Value *F = CB.valParam("f", MArrow(Ry, Ro, T));
    const Value *X = CB.valParam("x", MM(Ry, Ro, T));

    BlockBuilder B(C);
    Region Rn = B.letRegion("rn");
    Region R3 = B.letRegion("r3");
    ContLayout L = fullLayout(Ry, Ro, Rn, R3);
    const Type *EnvTy = MArrow(Rn, Rn, T);
    const Value *Code = C.valTransApp(C.valAddr(Lib.GcEnd),
                                      {T, C.tagInt(), IdFun}, L.Regions);
    const Value *Pk =
        packCont(C, L, T, T, C.tagInt(), IdFun, EnvTy, Code, F);
    const Value *K = B.put(R3, Pk);
    const Term *Body = B.finish(
        C.termApp(C.valAddr(Lib.Copy), {T}, L.Regions, {X, K}));
    M.defineCode(Lib.Gc, CB.build(Body));
  }

  markCollectorPhases(M, Lib);
  return Lib;
}
