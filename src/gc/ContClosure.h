//===- gc/ContClosure.h - Continuation closures for the collectors -*-C++-*-=//
///
/// \file
/// The typed closure-conversion machinery shared by all three collectors
/// (§6.1, Fig 12 and its λGC-forw / λGC-gen analogues): the uniform
/// continuation type tk[s], construction of the nested continuation
/// packages, and the open-and-apply sequence.
///
///   tk[s] = (∃t1:Ω.∃t2:Ω.∃te:Ω→Ω.∃αc:∆.
///             (∀Jt1,t2,teKJ~ρK(M_{ρto}(s), αc) → 0) × αc) at ρk
///
/// where ~ρ is the collector's region vector (r1,r2,r3 for basic/forwarding
/// collectors; ry,ro for the generational one), ρto is the region copied
/// values land in, and ρk is the region holding continuation closures.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_CONTCLOSURE_H
#define SCAV_GC_CONTCLOSURE_H

#include "gc/Builder.h"

namespace scav::gc {

/// Describes the region layout of a collector's continuations.
struct ContLayout {
  std::vector<Region> Regions; ///< The collector's region vector ~ρ.
  Region To;                   ///< Where copied values land (M_{To}(s)).
  Region Holder;               ///< Where continuation closures live.
  /// Regions the generational M operator needs (empty = base/forward,
  /// one region = the old generation for M_{r,ρo}).
  std::vector<Region> ExtraM;

  /// M view of tag S in region R, honoring ExtraM.
  const Type *mOf(GcContext &C, Region R, const Tag *S) const {
    std::vector<Region> Rs{R};
    for (Region E : ExtraM)
      Rs.push_back(E);
    return C.typeM(std::move(Rs), S);
  }
};

/// The uniform continuation type tk[S].
const Type *contType(GcContext &C, const ContLayout &L, const Tag *S);

/// Builds the nested continuation package
///   ⟨t1=W1, ⟨t2=W2, ⟨te=We, ⟨αc=EnvTy, (Code, Env)⟩⟩⟩⟩ : body of tk[S].
const Value *packCont(GcContext &C, const ContLayout &L, const Tag *S,
                      const Tag *W1, const Tag *W2, const Tag *We,
                      const Type *EnvTy, const Value *Code, const Value *Env);

/// Opens K : tk[s] and applies it to CopiedVal.
const Term *applyCont(GcContext &C, const ContLayout &L, const Value *K,
                      const Value *CopiedVal);

/// M_ρ(τ→0) for a unary arrow (the type of mutator return functions).
const Type *mArrowType(GcContext &C, const ContLayout &L, Region R,
                       const Tag *Arg);

} // namespace scav::gc

#endif // SCAV_GC_CONTCLOSURE_H
