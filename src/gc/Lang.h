//===- gc/Lang.h - Language levels of the λGC family -----------*- C++ -*-===//
///
/// \file
/// The paper defines a base calculus λGC (§4–§6) and two extensions:
/// λGC-forw (§7, forwarding pointers) and λGC-gen (§8, generations). We use
/// one shared AST; the typechecker, the type operator M, and the machine are
/// parameterized by the LanguageLevel, which gates the extension constructs
/// and selects the matching M equations.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_LANG_H
#define SCAV_GC_LANG_H

namespace scav::gc {

enum class LanguageLevel {
  /// λGC: regions + intensional type analysis (Fig 2/5/6).
  Base,
  /// λGC-forw: adds left/right/sum types, inl/inr/strip, ifleft, set, widen
  /// (Fig 8, §7).
  Forward,
  /// λGC-gen: adds region existentials and ifreg (Fig 10, §8).
  Generational,
};

inline const char *languageLevelName(LanguageLevel L) {
  switch (L) {
  case LanguageLevel::Base:
    return "lambda-GC";
  case LanguageLevel::Forward:
    return "lambda-GC-forw";
  case LanguageLevel::Generational:
    return "lambda-GC-gen";
  }
  return "<invalid>";
}

} // namespace scav::gc

#endif // SCAV_GC_LANG_H
