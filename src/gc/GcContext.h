//===- gc/GcContext.h - Owning, uniquing context and node factories -------===//
///
/// \file
/// GcContext owns the arena behind every λGC AST node and provides the only
/// way to construct nodes. For Tag, Type, and Kind nodes it is additionally a
/// *uniquing (hash-consing) context*: every factory canonicalizes through a
/// per-class hash table keyed on a structural hash stored in the node, so
/// structurally identical nodes are pointer-identical. Because children are
/// canonicalized before their parents, a parent only needs a *shallow*
/// hash/equality over its own fields and child pointers — the classic
/// FoldingSet discipline.
///
/// Each node carries three derived-fact bits, computed bottom-up at
/// construction:
///
///  * Normal — the node is a normal form: normalizeTag/normalizeType would
///    return it unchanged (level-independent: whether an M/C application is
///    stuck depends only on its tag's head constructor).
///  * Ground — no variables of any sort and no binders anywhere in the
///    subtree (for types, every region mentioned is a concrete name). On
///    ground nodes alpha-equivalence degenerates to structural equality, so
///    canonical ground nodes compare by pointer in both directions. The bit
///    deliberately excludes *binders*, not just free variables: interning is
///    name-sensitive, so λt.t and λs.s are alpha-equal yet distinct nodes.
///  * Canonical — the node went through the uniquing table (only set while
///    interning is enabled), licensing the negative pointer-compare.
///
/// The context also owns the normalization memo caches (keyed by node
/// pointer — sound precisely because nodes are unique — plus the
/// LanguageLevel for types, whose M-expansions differ per level) and a
/// Stats block with hit counters and an exclusive wall-clock accumulator
/// for type-level work (see TypeworkTimer).
///
/// Interning can be disabled — `GcContext C(false)`, or process-wide via the
/// SCAV_DISABLE_INTERN environment variable — which restores the seed's
/// allocate-fresh behavior and turns off every fast path keyed on the bits,
/// giving benchmarks an honest baseline (bench/e10_typework).
///
/// Lifetime: transient checking phases (StateCheck) bulk-free their
/// allocations via Arena::mark/release. Uniquing tables and memo caches
/// would then hold dangling pointers, so GcContext keeps insertion logs and
/// exposes its own Checkpoint/Scope that unwinds table and memo entries
/// *before* releasing the arena. Use GcContext::Scope, never a raw arena
/// checkpoint, when nodes may be created inside the scope.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_GCCONTEXT_H
#define SCAV_GC_GCCONTEXT_H

#include "gc/Lang.h"
#include "gc/Term.h"
#include "support/Arena.h"
#include "support/Symbol.h"

#include <array>
#include <chrono>
#include <cstdlib>
#include <map>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scav::gc {

/// Owns all λGC AST nodes and the symbol table used for their variables.
class GcContext {
public:
  /// Counters for the uniquing tables, the normalization memo caches, and
  /// the equality fast paths, plus an exclusive typework clock. Cheap enough
  /// to maintain unconditionally; read by bench/e10_typework and
  /// tests/gc_intern_test.
  struct Stats {
    // Uniquing: hit = factory returned an existing node.
    uint64_t TagInternHits = 0;
    uint64_t TagInternMisses = 0;
    uint64_t TypeInternHits = 0;
    uint64_t TypeInternMisses = 0;
    uint64_t KindInternHits = 0;
    uint64_t KindInternMisses = 0;
    // Of the hits above, how many were served by a frozen shared base
    // context (session contexts only; see the shared-base constructor).
    uint64_t TagBaseHits = 0;
    uint64_t TypeBaseHits = 0;
    uint64_t KindBaseHits = 0;
    // Normalization: NormalBit = O(1) already-normal exit; Memo = cache hit.
    uint64_t NormalizeTagCalls = 0;
    uint64_t NormalizeTagNormalBitHits = 0;
    uint64_t NormalizeTagMemoHits = 0;
    uint64_t NormalizeTypeCalls = 0;
    uint64_t NormalizeTypeNormalBitHits = 0;
    uint64_t NormalizeTypeMemoHits = 0;
    // Semantic equality (tagEqual/typeEqual).
    uint64_t EqualTagCalls = 0;
    uint64_t EqualTypeCalls = 0;
    uint64_t EqualPointerHits = 0;
    // Substitution short-circuits on ground subtrees.
    uint64_t SubstGroundSkips = 0;
    // Exclusive wall time spent in normalize/equal/infer (TypeworkTimer).
    bool TimingEnabled = false;
    unsigned TimingDepth = 0;
    double TypeworkSeconds = 0.0;
  };

  /// Depth-guarded RAII accumulator for Stats::TypeworkSeconds: only the
  /// outermost timed frame reads the clock, so nested normalize-inside-infer
  /// calls are not double counted. Off (zero clock reads) unless
  /// Stats::TimingEnabled is set by a measurement harness.
  class TypeworkTimer {
  public:
    explicit TypeworkTimer(Stats &S) : S(S), Active(S.TimingEnabled) {
      if (Active && S.TimingDepth++ == 0)
        Start = std::chrono::steady_clock::now();
    }
    ~TypeworkTimer() {
      if (Active && --S.TimingDepth == 0)
        S.TypeworkSeconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count();
    }
    TypeworkTimer(const TypeworkTimer &) = delete;
    TypeworkTimer &operator=(const TypeworkTimer &) = delete;

  private:
    Stats &S;
    bool Active;
    std::chrono::steady_clock::time_point Start;
  };

  /// Process-wide default: interning is on unless SCAV_DISABLE_INTERN is set
  /// in the environment (the e10 baseline toggle).
  static bool interningEnabledByDefault() {
    return std::getenv("SCAV_DISABLE_INTERN") == nullptr;
  }

  explicit GcContext(bool EnableInterning = interningEnabledByDefault())
      : GcContext(nullptr, EnableInterning, /*MarkCanonicalBit=*/true) {}

  /// Observer-context constructor: shares \p SharedSyms (the mutator
  /// context's symbol table — thread-safe, see support/Symbol.h) instead of
  /// owning one, so symbols captured from machine state resolve here too.
  /// Built with MarkCanonicalBit off: this context's uniquing tables are
  /// disjoint from the mutator's, so marking its nodes Canonical would
  /// license the negative pointer-compare fast path (Equal.cpp) *across*
  /// contexts, where structurally equal nodes are not pointer-identical.
  /// Interning still dedupes (and memoizes) within this context; only the
  /// cross-context-unsound bit is withheld.
  GcContext(SymbolTable &SharedSyms, bool EnableInterning)
      : GcContext(&SharedSyms, EnableInterning, /*MarkCanonicalBit=*/false) {}

  /// Session-context constructor: layers this context over \p SharedBase, a
  /// *frozen* (freeze()) context whose tables are consulted read-only before
  /// this context's own. This is the multi-session sharing seam: a service
  /// builds one base context, warms it (collector installation interns the
  /// runtime's tag/type vocabulary), freezes it, and then every concurrent
  /// session layers a private context on top — all writes (interning, memo
  /// fills, arena allocation) land in the session's own tables, so sessions
  /// never synchronize with each other beyond the already-thread-safe shared
  /// SymbolTable.
  ///
  /// Soundness of sharing hash-consed nodes:
  ///  * Kinds are hashed by address (finishTag/finishType), so the base's
  ///    Kind singletons (OmegaKind, ArrowKinds) MUST be reused — a private
  ///    Omega would change every dependent hash and the base tables would
  ///    never hit. The singleton Tag/Type nodes are copied for the same
  ///    reason, and because derived-fact bits must agree.
  ///  * The Canonical bit stays on: within one session's canonicalization
  ///    domain (base tables ∪ session tables, probed in that order) every
  ///    structurally-equal canonical node IS pointer-identical, which is all
  ///    the negative pointer-compare fast path (Equal.cpp) needs. Two
  ///    *different* sessions may each mint a canonical node for the same
  ///    structure, but nodes never flow between sessions, so the domains
  ///    never mix.
  ///  * The base must outlive every session layered on it (its arena owns
  ///    the shared nodes).
  ///
  /// \p SessionNamespace prefixes every fresh() mint of this context
  /// (`Base$<ns><n>`). Sessions sharing a SymbolTable must use pairwise
  /// distinct namespaces, each terminated unambiguously (e.g. "s3."), so
  /// their name streams are disjoint — otherwise concurrent internNew
  /// collisions would make counter skips (and hence spellings) depend on
  /// thread interleaving.
  GcContext(const GcContext &SharedBase, std::string SessionNamespace)
      : OwnedSyms(nullptr), Syms(SharedBase.Syms),
        InternOn(SharedBase.InternOn), MarkCanonical(SharedBase.MarkCanonical),
        Base(&SharedBase), FreshTag(std::move(SessionNamespace)) {
    assert(SharedBase.Frozen &&
           "shared base must be frozen before sessions layer on it");
    if (InternOn) {
      // Sessions start with the warmed base vocabulary already available;
      // their private tables only hold workload-specific nodes, so start
      // them a few powers of two smaller than a standalone context's.
      TagTable.reserve(1u << 10);
      TypeTable.reserve(1u << 12);
      TagNormalMemo.reserve(1u << 10);
      TypeNormalMemo.reserve(1u << 12);
    }
    OmegaKind = SharedBase.OmegaKind;
    IntTagNode = SharedBase.IntTagNode;
    IntTypeNode = SharedBase.IntTypeNode;
    IdFunTag = SharedBase.IdFunTag;
    CdRegion = SharedBase.CdRegion;
  }

private:
  GcContext(SymbolTable *Shared, bool EnableInterning, bool MarkCanonicalBit)
      : OwnedSyms(Shared ? nullptr : std::make_unique<SymbolTable>()),
        Syms(Shared ? *Shared : *OwnedSyms), InternOn(EnableInterning),
        MarkCanonical(MarkCanonicalBit) {
    if (InternOn) {
      // Collections create nodes by the tens of thousands and the tables
      // only ever grow (Scope unwinds aside), so incremental rehashing of
      // a near-full table is pure overhead on the hot path — and it lands
      // inside the typework timer. Start roomy instead.
      TagTable.reserve(1u << 14);
      TypeTable.reserve(1u << 16);
      TagNormalMemo.reserve(1u << 12);
      TypeNormalMemo.reserve(1u << 14);
    }
    OmegaKind = Alloc.create<Kind>(Kind());
    IntTagNode = internTag(Tag(TagKind::Int));
    IntTypeNode = internType(Type(TypeKind::Int));
    CdRegion = Region::name(Syms.intern("cd"));
    // Eagerly build the identity tag singleton so it can never be created
    // (and then rolled back) inside a transient Scope.
    Symbol IdVar = Syms.intern("t_id");
    IdFunTag = tagLam(IdVar, tagVar(IdVar));
  }

public:
  GcContext(const GcContext &) = delete;
  GcContext &operator=(const GcContext &) = delete;

  /// True when hash-consing (and every fast path that relies on it) is on.
  bool interningEnabled() const { return InternOn; }

  /// Makes this context a read-only shared base: after this call no node may
  /// be created, interned, memoized, or freshly named through it — only
  /// lookups (performed by session contexts layered on it) remain legal.
  /// Enforced by asserts on the mutating entry points; the TSan CI job is
  /// the backstop in NDEBUG builds. Irreversible by design: a base that
  /// could thaw while sessions race over it is exactly the bug class this
  /// exists to remove.
  void freeze() { Frozen = true; }
  bool frozen() const { return Frozen; }

  /// The frozen shared base this session context layers over, or null.
  const GcContext *base() const { return Base; }

  /// Re-tags fresh() mints (`Base$<ns><n>`). Must be called before the
  /// first mint; used to give checker mirrors the session's namespace so
  /// their "c"-scoped mints stay session-disjoint too (FreshScope appends
  /// to this tag).
  void setFreshNamespace(std::string Ns) {
    assert(FreshCtr == 0 && "re-namespacing an already-minting context");
    FreshTag = std::move(Ns);
  }
  const std::string &freshNamespace() const { return FreshTag; }

  Stats &stats() { return S; }
  const Stats &stats() const { return S; }

  size_t internedTags() const { return TagTable.size(); }
  size_t internedTypes() const { return TypeTable.size(); }

  SymbolTable &symbols() { return Syms; }
  const SymbolTable &symbols() const { return Syms; }

  Symbol intern(std::string_view Sv) { return Syms.intern(Sv); }

  /// Creates a fresh symbol `Base$<tag><n>` distinct from everything
  /// interned so far. The counter is per *context* and the spelling carries
  /// the context's namespace tag, so an observer context (a state checker)
  /// minting names against the shared table can never perturb the mutator
  /// context's numbering — the mutator's name stream is a pure function of
  /// the program, regardless of when or on which thread checks run.
  Symbol fresh(std::string_view Stem) {
    assert(!Frozen && "minting fresh names through a frozen shared base");
    for (;;) {
      std::string Candidate(Stem);
      Candidate += '$';
      Candidate += FreshTag;
      Candidate += std::to_string(FreshCtr++);
      auto [Sym, New] = Syms.internNew(Candidate);
      if (New)
        return Sym;
      // Collision with an already-interned spelling (a source-program name,
      // or an earlier mint in this namespace): skip the counter value. The
      // skip is deterministic for a deterministic interning history.
    }
  }

  std::string_view name(Symbol Sym) const { return Syms.name(Sym); }

  /// Re-namespaces fresh() for the duration of the scope: names become
  /// `Base$<Tag><n>` drawn from the caller-owned counter \p Ctr (updated on
  /// exit, so a long-lived owner — an incremental checker — numbers
  /// monotonically across scopes). Checking phases wrap themselves in one of
  /// these so their transient fresh names live in a namespace disjoint from
  /// the mutator's ("" ↔ "c"/"o"), which keeps checker-minted symbols from
  /// ever aliasing machine-state names and keeps both streams deterministic
  /// when checks run asynchronously. The scope tag *appends* to the
  /// context's namespace tag rather than replacing it: in a session context
  /// namespaced "s3." the checker mints under "s3.c", so checker streams of
  /// concurrent sessions sharing one SymbolTable stay disjoint too (for a
  /// standalone context the base tag is empty and nothing changes).
  class FreshScope {
  public:
    FreshScope(GcContext &C, std::string Tag, uint64_t &Ctr)
        : C(C), SavedTag(std::move(C.FreshTag)), SavedCtr(C.FreshCtr),
          Ext(&Ctr) {
      C.FreshTag = SavedTag;
      C.FreshTag += Tag;
      C.FreshCtr = Ctr;
    }
    ~FreshScope() {
      *Ext = C.FreshCtr;
      C.FreshTag = std::move(SavedTag);
      C.FreshCtr = SavedCtr;
    }
    FreshScope(const FreshScope &) = delete;
    FreshScope &operator=(const FreshScope &) = delete;

  private:
    GcContext &C;
    std::string SavedTag;
    uint64_t SavedCtr;
    uint64_t *Ext;
  };

  /// Counter for the full checkState oracle's "o" namespace. Per-context
  /// and persistent so back-to-back oracle calls number monotonically: a
  /// restarted-at-zero counter would make every call re-skip all previous
  /// "o" mints in fresh() — quadratic over a per-step checking run.
  uint64_t &oracleFreshCtr() { return OracleCtr; }

  /// The distinguished code region cd (§4.3).
  Region cd() const { return CdRegion; }

  // -- Kinds -------------------------------------------------------------

  const Kind *omega() const { return OmegaKind; }
  const Kind *arrowKind(const Kind *From, const Kind *To) {
    if (!InternOn)
      return Alloc.create<Kind>(Kind(From, To));
    auto Key = std::pair(From, To);
    auto It = ArrowKinds.find(Key);
    if (It != ArrowKinds.end()) {
      ++S.KindInternHits;
      return It->second;
    }
    if (Base) {
      auto BIt = Base->ArrowKinds.find(Key);
      if (BIt != Base->ArrowKinds.end()) {
        ++S.KindInternHits;
        ++S.KindBaseHits;
        return BIt->second;
      }
    }
    assert(!Frozen && "interning kinds into a frozen shared base");
    ++S.KindInternMisses;
    const Kind *K = Alloc.create<Kind>(Kind(From, To));
    ArrowKinds.emplace(Key, K);
    KindLog.push_back(Key);
    return K;
  }
  /// Ω → Ω, the kind of tag functions.
  const Kind *omegaToOmega() { return arrowKind(OmegaKind, OmegaKind); }

  // -- Tags ----------------------------------------------------------------

  const Tag *tagInt() const { return IntTagNode; }

  const Tag *tagVar(Symbol Sym) {
    Tag T(TagKind::Var);
    T.V = Sym;
    return internTag(std::move(T));
  }

  const Tag *tagProd(const Tag *L, const Tag *R) {
    Tag T(TagKind::Prod);
    T.A = L;
    T.B = R;
    return internTag(std::move(T));
  }

  const Tag *tagArrow(std::vector<const Tag *> Args) {
    Tag T(TagKind::Arrow);
    T.Args = std::move(Args);
    return internTag(std::move(T));
  }

  const Tag *tagExists(Symbol Var, const Tag *Body) {
    Tag T(TagKind::Exists);
    T.V = Var;
    T.A = Body;
    return internTag(std::move(T));
  }

  const Tag *tagLam(Symbol Var, const Kind *K, const Tag *Body) {
    Tag T(TagKind::Lam);
    T.V = Var;
    T.BK = K;
    T.A = Body;
    return internTag(std::move(T));
  }
  const Tag *tagLam(Symbol Var, const Tag *Body) {
    return tagLam(Var, omega(), Body);
  }

  const Tag *tagApp(const Tag *Fun, const Tag *Arg) {
    Tag T(TagKind::App);
    T.A = Fun;
    T.B = Arg;
    return internTag(std::move(T));
  }

  /// λt.t — the identity tag function, used to fill unused te slots in the
  /// closure-converted collector (Fig 12). A singleton: all uses are
  /// alpha-equivalent, so one shared binder is as good as a fresh one.
  const Tag *tagIdFun() { return IdFunTag; }

  // -- Types ---------------------------------------------------------------

  const Type *typeInt() const { return IntTypeNode; }

  const Type *typeProd(const Type *L, const Type *R) {
    Type T(TypeKind::Prod);
    T.A = L;
    T.B = R;
    return internType(std::move(T));
  }

  const Type *typeCode(std::vector<Symbol> TagParams,
                       std::vector<const Kind *> TagKinds,
                       std::vector<Symbol> RegionParams,
                       std::vector<const Type *> Args) {
    assert(TagParams.size() == TagKinds.size() && "mismatched tag binders");
    Type T(TypeKind::Code);
    T.TagParams = std::move(TagParams);
    T.TagKinds = std::move(TagKinds);
    T.RegionParams = std::move(RegionParams);
    T.Args = std::move(Args);
    return internType(std::move(T));
  }

  /// ∀J~τKJ~ρK(~σ) →At 0: translucent code with pinned tag and region
  /// arguments (see the note in Type.h).
  const Type *typeTransCode(std::vector<const Tag *> TagArgs,
                            std::vector<Region> RegionArgs,
                            std::vector<const Type *> Args, Region At) {
    Type T(TypeKind::TransCode);
    T.TagArgs = std::move(TagArgs);
    T.Regions = std::move(RegionArgs);
    T.Args = std::move(Args);
    T.R1 = At;
    return internType(std::move(T));
  }

  const Type *typeExistsTag(Symbol Var, const Kind *K, const Type *Body) {
    Type T(TypeKind::ExistsTag);
    T.V = Var;
    T.BK = K;
    T.A = Body;
    return internType(std::move(T));
  }

  const Type *typeExistsTyVar(Symbol Var, RegionSet Delta, const Type *Body) {
    Type T(TypeKind::ExistsTyVar);
    T.V = Var;
    T.Delta = std::move(Delta);
    T.A = Body;
    return internType(std::move(T));
  }

  /// ∃r∈∆.(Body at r); Body may mention r.
  const Type *typeExistsRegion(Symbol Var, RegionSet Delta, const Type *Body) {
    Type T(TypeKind::ExistsRegion);
    T.V = Var;
    T.Delta = std::move(Delta);
    T.A = Body;
    return internType(std::move(T));
  }

  const Type *typeAt(const Type *Body, Region R) {
    Type T(TypeKind::At);
    T.A = Body;
    T.R1 = R;
    return internType(std::move(T));
  }

  /// M_ρ(τ) (Base/Forward: one region) or M_{ρy,ρo}(τ) (Generational: two).
  const Type *typeM(std::vector<Region> Regions, const Tag *T) {
    assert((Regions.size() == 1 || Regions.size() == 2) &&
           "M takes one or two regions");
    Type Ty(TypeKind::MApp);
    Ty.Regions = std::move(Regions);
    Ty.T = T;
    return internType(std::move(Ty));
  }
  const Type *typeM(Region R, const Tag *T) {
    return typeM(std::vector<Region>{R}, T);
  }

  const Type *typeC(Region From, Region To, const Tag *T) {
    Type Ty(TypeKind::CApp);
    Ty.R1 = From;
    Ty.R2 = To;
    Ty.T = T;
    return internType(std::move(Ty));
  }

  const Type *typeVar(Symbol Sym) {
    Type T(TypeKind::TyVar);
    T.V = Sym;
    return internType(std::move(T));
  }

  const Type *typeLeft(const Type *Body) {
    Type T(TypeKind::Left);
    T.A = Body;
    return internType(std::move(T));
  }

  const Type *typeRight(const Type *Body) {
    Type T(TypeKind::Right);
    T.A = Body;
    return internType(std::move(T));
  }

  const Type *typeSum(const Type *L, const Type *R) {
    Type T(TypeKind::Sum);
    T.A = L;
    T.B = R;
    return internType(std::move(T));
  }

  // -- Normalization memo caches ------------------------------------------
  //
  // Keyed by node pointer, which is sound because nodes are unique; the type
  // cache additionally keys on the LanguageLevel since the M equations (and
  // hence normal forms) differ per level. Only consulted/filled while
  // interning is enabled (Normalize.cpp).

  // Session contexts fall through to the frozen base's memos: normal forms
  // of base nodes computed during warmup are shared read-only. A local miss
  // must consult the base even when the local key exists (the type memo is
  // per-level — the base may hold the level this context does not).
  const Tag *lookupNormalTagMemo(const Tag *T) const {
    auto It = TagNormalMemo.find(T);
    if (It != TagNormalMemo.end())
      return It->second;
    return Base ? Base->lookupNormalTagMemo(T) : nullptr;
  }
  void rememberNormalTag(const Tag *T, const Tag *N) {
    assert(!Frozen && "memoizing into a frozen shared base");
    if (TagNormalMemo.emplace(T, N).second)
      TagMemoLog.push_back(T);
  }

  const Type *lookupNormalTypeMemo(const Type *T, LanguageLevel L) const {
    auto It = TypeNormalMemo.find(T);
    if (It != TypeNormalMemo.end() && It->second[levelIndex(L)])
      return It->second[levelIndex(L)];
    return Base ? Base->lookupNormalTypeMemo(T, L) : nullptr;
  }
  void rememberNormalType(const Type *T, LanguageLevel L, const Type *N) {
    assert(!Frozen && "memoizing into a frozen shared base");
    auto &Slot = TypeNormalMemo[T][levelIndex(L)];
    if (Slot == N)
      return;
    assert(!Slot && "normalization memo slot rebound to a different result");
    Slot = N;
    TypeMemoLog.push_back({T, levelIndex(L)});
  }

  // -- Checkpoint / Scope --------------------------------------------------

  /// A rollback point for transient allocation phases: the arena checkpoint
  /// plus the sizes of the uniquing-table and memo insertion logs.
  struct Checkpoint {
    Arena::Checkpoint Mem;
    size_t Tags, Types, Kinds, TagMemo, TypeMemo;
  };

  Checkpoint mark() const {
    return Checkpoint{Alloc.mark(),        TagLog.size(),
                      TypeLog.size(),      KindLog.size(),
                      TagMemoLog.size(),   TypeMemoLog.size()};
  }

  /// Unwinds every uniquing-table and memo entry inserted since \p Cp, then
  /// bulk-frees the arena back to it. Entry removal must come first: the
  /// hash tables need the (about-to-be-freed) node memory to rehash keys.
  /// Entries inserted before the mark can only reference pre-mark nodes
  /// (both key and value existed at insertion time), so they stay valid.
  void release(const Checkpoint &Cp) {
    assert(!Frozen && "rolling back a frozen shared base");
    for (size_t I = TagLog.size(); I > Cp.Tags; --I)
      TagTable.erase(TagLog[I - 1]);
    TagLog.resize(Cp.Tags);
    for (size_t I = TypeLog.size(); I > Cp.Types; --I)
      TypeTable.erase(TypeLog[I - 1]);
    TypeLog.resize(Cp.Types);
    for (size_t I = KindLog.size(); I > Cp.Kinds; --I)
      ArrowKinds.erase(KindLog[I - 1]);
    KindLog.resize(Cp.Kinds);
    for (size_t I = TagMemoLog.size(); I > Cp.TagMemo; --I)
      TagNormalMemo.erase(TagMemoLog[I - 1]);
    TagMemoLog.resize(Cp.TagMemo);
    for (size_t I = TypeMemoLog.size(); I > Cp.TypeMemo; --I) {
      auto [T, L] = TypeMemoLog[I - 1];
      auto It = TypeNormalMemo.find(T);
      if (It == TypeNormalMemo.end())
        continue;
      It->second[L] = nullptr;
      if (!It->second[0] && !It->second[1] && !It->second[2])
        TypeNormalMemo.erase(It);
    }
    TypeMemoLog.resize(Cp.TypeMemo);
    Alloc.release(Cp.Mem);
  }

  /// RAII over mark()/release(): scopes the transient allocations of a
  /// checking phase without leaving dangling intern/memo entries behind.
  class Scope {
  public:
    explicit Scope(GcContext &C) : C(C), Cp(C.mark()) {}
    ~Scope() { C.release(Cp); }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    GcContext &C;
    Checkpoint Cp;
  };

  // -- Values ----------------------------------------------------------

  const Value *valInt(int64_t N) {
    Value *V = allocValue(ValueKind::Int);
    V->N = N;
    return V;
  }

  const Value *valVar(Symbol Sym) {
    Value *V = allocValue(ValueKind::Var);
    V->V = Sym;
    return V;
  }

  const Value *valAddr(Address A) {
    assert(A.R.isName() && "addresses live in concrete regions");
    Value *V = allocValue(ValueKind::Addr);
    V->Addr = A;
    return V;
  }

  const Value *valPair(const Value *A, const Value *B) {
    Value *V = allocValue(ValueKind::Pair);
    V->A = A;
    V->B = B;
    return V;
  }

  const Value *valPackTag(Symbol Var, const Tag *Witness, const Value *Payload,
                          const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTag);
    V->V = Var;
    V->TW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  /// vJ~τKJ~ρK: translucent application pinning tags and regions.
  const Value *valTransApp(const Value *Inner, std::vector<const Tag *> TagArgs,
                           std::vector<Region> RegionArgs) {
    return valTransApp(Inner,
                       allocTransData(std::move(TagArgs),
                                      std::move(RegionArgs)));
  }

  /// Shared-argument variant: \p Args must outlive the context
  /// (arena-allocated). Producers that materialize the same vJ~τKJ~ρK
  /// template many times share one argument block (see vm::TplInfo).
  const Value *valTransApp(const Value *Inner, const TransData *Args) {
    Value *V = allocValue(ValueKind::TransApp);
    V->A = Inner;
    V->Trans = Args;
    return V;
  }

  /// Arena-allocates a TransApp argument block (see valTransApp).
  const TransData *allocTransData(std::vector<const Tag *> TagArgs,
                                  std::vector<Region> RegionArgs) {
    auto *D = Alloc.create<TransData>();
    D->TagArgs = std::move(TagArgs);
    D->RegionArgs = std::move(RegionArgs);
    return D;
  }

  /// Arena-allocates a ∆ set for sharing across pack values (the Value node
  /// holds deltas by pointer so it stays trivially destructible).
  const RegionSet *allocRegionSet(RegionSet RS) {
    return Alloc.create<RegionSet>(std::move(RS));
  }

  const Value *valPackTyVar(Symbol Var, RegionSet Delta, const Type *Witness,
                            const Value *Payload, const Type *BodyType) {
    return valPackTyVar(Var, allocRegionSet(std::move(Delta)), Witness,
                        Payload, BodyType);
  }

  /// Pointer-∆ variant: \p Delta must outlive the context (arena-allocated
  /// or owned by a producer cache). Lets hot paths share one set across
  /// many pack values instead of copying it per materialization.
  const Value *valPackTyVar(Symbol Var, const RegionSet *Delta,
                            const Type *Witness, const Value *Payload,
                            const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTyVar);
    V->V = Var;
    V->Delta = Delta;
    V->TyW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  const Value *valCode(std::vector<Symbol> TagParams,
                       std::vector<const Kind *> TagKinds,
                       std::vector<Symbol> RegionParams,
                       std::vector<Symbol> ValParams,
                       std::vector<const Type *> ValTypes, const Term *Body) {
    assert(TagParams.size() == TagKinds.size() && "mismatched tag binders");
    assert(ValParams.size() == ValTypes.size() && "mismatched val binders");
    Value *V = allocValue(ValueKind::Code);
    auto *D = Alloc.create<CodeData>();
    D->TagParams = std::move(TagParams);
    D->TagKinds = std::move(TagKinds);
    D->RegionParams = std::move(RegionParams);
    D->ValParams = std::move(ValParams);
    D->ValTypes = std::move(ValTypes);
    D->Body = Body;
    V->Code = D;
    return V;
  }

  const Value *valInl(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inl);
    V->A = Payload;
    return V;
  }

  const Value *valInr(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inr);
    V->A = Payload;
    return V;
  }

  const Value *valPackRegion(Symbol Var, RegionSet Delta, Region Witness,
                             const Value *Payload, const Type *BodyType) {
    return valPackRegion(Var, allocRegionSet(std::move(Delta)), Witness,
                         Payload, BodyType);
  }

  /// Pointer-∆ variant of valPackRegion (see valPackTyVar).
  const Value *valPackRegion(Symbol Var, const RegionSet *Delta,
                             Region Witness, const Value *Payload,
                             const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackRegion);
    V->V = Var;
    V->Delta = Delta;
    V->RW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  // -- Operations --------------------------------------------------------

  const Op *opVal(const Value *V) {
    Op *O = allocOp(OpKind::Val);
    O->A = V;
    return O;
  }

  const Op *opProj(unsigned Index, const Value *V) {
    assert((Index == 1 || Index == 2) && "projection index must be 1 or 2");
    Op *O = allocOp(Index == 1 ? OpKind::Proj1 : OpKind::Proj2);
    O->A = V;
    return O;
  }

  const Op *opPut(Region R, const Value *V) {
    Op *O = allocOp(OpKind::Put);
    O->R = R;
    O->A = V;
    return O;
  }

  const Op *opGet(const Value *V) {
    Op *O = allocOp(OpKind::Get);
    O->A = V;
    return O;
  }

  const Op *opStrip(const Value *V) {
    Op *O = allocOp(OpKind::Strip);
    O->A = V;
    return O;
  }

  const Op *opPrim(PrimOp P, const Value *L, const Value *R) {
    Op *O = allocOp(OpKind::Prim);
    O->P = P;
    O->A = L;
    O->B = R;
    return O;
  }

  // -- Terms ---------------------------------------------------------------

  const Term *termApp(const Value *Fun, std::vector<const Tag *> Tags,
                      std::vector<Region> Regions,
                      std::vector<const Value *> Args) {
    Term *T = allocTerm(TermKind::App);
    T->V1 = Fun;
    T->TagArgs = std::move(Tags);
    T->RegionArgs = std::move(Regions);
    T->ValArgs = std::move(Args);
    return T;
  }

  const Term *termLet(Symbol X, const Op *O, const Term *Body) {
    Term *T = allocTerm(TermKind::Let);
    T->X1 = X;
    T->O = O;
    T->E1 = Body;
    return T;
  }

  const Term *termHalt(const Value *V) {
    Term *T = allocTerm(TermKind::Halt);
    T->V1 = V;
    return T;
  }

  const Term *termIfGc(Region R, const Term *Full, const Term *NotFull) {
    Term *T = allocTerm(TermKind::IfGc);
    T->R1 = R;
    T->E1 = Full;
    T->E2 = NotFull;
    return T;
  }

  const Term *termOpenTag(const Value *V, Symbol TagVar, Symbol ValVar,
                          const Term *Body) {
    Term *T = allocTerm(TermKind::OpenTag);
    T->V1 = V;
    T->X1 = TagVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termOpenTyVar(const Value *V, Symbol TyVar, Symbol ValVar,
                            const Term *Body) {
    Term *T = allocTerm(TermKind::OpenTyVar);
    T->V1 = V;
    T->X1 = TyVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termLetRegion(Symbol R, const Term *Body) {
    Term *T = allocTerm(TermKind::LetRegion);
    T->X1 = R;
    T->E1 = Body;
    return T;
  }

  const Term *termOnly(RegionSet Keep, const Term *Body) {
    Term *T = allocTerm(TermKind::Only);
    T->Delta = std::move(Keep);
    T->E1 = Body;
    return T;
  }

  const Term *termTypecase(const Tag *Scrutinee, const Term *CaseInt,
                           const Term *CaseArrow, Symbol ProdVar1,
                           Symbol ProdVar2, const Term *CaseProd,
                           Symbol ExistsVar, const Term *CaseExists) {
    Term *T = allocTerm(TermKind::Typecase);
    T->T = Scrutinee;
    T->E1 = CaseInt;
    T->E2 = CaseArrow;
    T->X1 = ProdVar1;
    T->X2 = ProdVar2;
    T->E3 = CaseProd;
    T->X3 = ExistsVar;
    T->E4 = CaseExists;
    return T;
  }

  const Term *termIfLeft(Symbol X, const Value *Scrutinee, const Term *IfL,
                         const Term *IfR) {
    Term *T = allocTerm(TermKind::IfLeft);
    T->X1 = X;
    T->V1 = Scrutinee;
    T->E1 = IfL;
    T->E2 = IfR;
    return T;
  }

  const Term *termSet(const Value *Dst, const Value *Src, const Term *Rest) {
    Term *T = allocTerm(TermKind::Set);
    T->V1 = Dst;
    T->V2 = Src;
    T->E1 = Rest;
    return T;
  }

  const Term *termLetWiden(Symbol X, Region ToRegion, const Tag *Tau,
                           const Value *V, const Term *Body) {
    Term *T = allocTerm(TermKind::LetWiden);
    T->X1 = X;
    T->R1 = ToRegion;
    T->T = Tau;
    T->V1 = V;
    T->E1 = Body;
    return T;
  }

  const Term *termOpenRegion(const Value *V, Symbol RegionVar, Symbol ValVar,
                             const Term *Body) {
    Term *T = allocTerm(TermKind::OpenRegion);
    T->V1 = V;
    T->X1 = RegionVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termIfReg(Region A, Region B, const Term *Eq, const Term *Ne) {
    Term *T = allocTerm(TermKind::IfReg);
    T->R1 = A;
    T->R2 = B;
    T->E1 = Eq;
    T->E2 = Ne;
    return T;
  }

  const Term *termIf0(const Value *V, const Term *Zero, const Term *NonZero) {
    Term *T = allocTerm(TermKind::If0);
    T->V1 = V;
    T->E1 = Zero;
    T->E2 = NonZero;
    return T;
  }

  Arena &arena() { return Alloc; }

  /// Takes ownership of \p A, keeping every node allocated in it alive for
  /// this context's lifetime. The parallel collector's workers build copied
  /// values in private arenas (no lock on the context's allocator); once the
  /// workers join, their arenas are adopted here so the values installed in
  /// machine memory stay valid.
  void adoptArena(std::unique_ptr<Arena> A) {
    assert(!Frozen && "adopting arenas into a frozen shared base");
    AdoptedArenas.push_back(std::move(A));
  }

private:
  static size_t hashCombine(size_t Seed, size_t V) {
    return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
  }
  static size_t symbolHash(Symbol Sym) {
    return Sym.isValid() ? Sym.id() : static_cast<size_t>(~0u);
  }
  static size_t regionHash(Region R) {
    if (!R.isValid())
      return ~size_t(0);
    return (static_cast<size_t>(R.sym().id()) << 1) | (R.isName() ? 1 : 0);
  }
  static size_t levelIndex(LanguageLevel L) {
    return static_cast<size_t>(L); // Base/Forward/Generational → 0/1/2.
  }

  /// Computes and stores the structural hash and the Normal/Ground bits of a
  /// freshly built tag from its (already canonical) children.
  void finishTag(Tag &T) {
    size_t H = hashCombine(0x517cc1b727220a95ULL, static_cast<size_t>(T.K));
    uint8_t Bits = 0;
    constexpr uint8_t NG = Tag::FlagNormal | Tag::FlagGround;
    switch (T.K) {
    case TagKind::Int:
      Bits = NG;
      break;
    case TagKind::Var:
      H = hashCombine(H, symbolHash(T.V));
      Bits = Tag::FlagNormal;
      break;
    case TagKind::Prod:
      H = hashCombine(hashCombine(H, T.A->hash()), T.B->hash());
      Bits = (T.A->flags() & T.B->flags()) & NG;
      break;
    case TagKind::Arrow: {
      Bits = NG;
      for (const Tag *A : T.Args) {
        H = hashCombine(H, A->hash());
        Bits &= A->flags();
      }
      Bits &= NG;
      break;
    }
    case TagKind::Exists:
      H = hashCombine(hashCombine(H, symbolHash(T.V)), T.A->hash());
      Bits = T.A->flags() & Tag::FlagNormal; // a binder: never ground
      break;
    case TagKind::Lam:
      H = hashCombine(hashCombine(H, symbolHash(T.V)),
                      reinterpret_cast<size_t>(T.BK));
      H = hashCombine(H, T.A->hash());
      Bits = T.A->flags() & Tag::FlagNormal; // a binder: never ground
      break;
    case TagKind::App:
      H = hashCombine(hashCombine(H, T.A->hash()), T.B->hash());
      Bits = (T.A->flags() & T.B->flags()) & Tag::FlagGround;
      if (T.A->isNormal() && T.B->isNormal() && !T.A->is(TagKind::Lam))
        Bits |= Tag::FlagNormal; // stuck application
      break;
    }
    T.H = H;
    T.Bits = Bits;
  }

  /// Same for types. The hash folds every field uniformly (unused fields are
  /// empty/null and hash to constants); the bits are per-kind. Normality of
  /// an M/C application depends only on whether its tag's *head constructor*
  /// is analyzable (Int/Arrow/Prod/Exists) or stuck (Var/App/Lam) — the same
  /// distinction at every LanguageLevel, so one bit suffices.
  void finishType(Type &T) {
    size_t H = hashCombine(0x2545f4914f6cdd1dULL, static_cast<size_t>(T.K));
    H = hashCombine(H, T.A ? T.A->hash() : 0);
    H = hashCombine(H, T.B ? T.B->hash() : 0);
    H = hashCombine(H, symbolHash(T.V));
    H = hashCombine(H, reinterpret_cast<size_t>(T.BK));
    for (Region R : T.Delta)
      H = hashCombine(H, regionHash(R));
    H = hashCombine(H, regionHash(T.R1));
    H = hashCombine(H, regionHash(T.R2));
    H = hashCombine(H, T.T ? T.T->hash() : 0);
    for (Region R : T.Regions)
      H = hashCombine(H, regionHash(R));
    for (Symbol Sym : T.TagParams)
      H = hashCombine(H, symbolHash(Sym));
    for (const Kind *K : T.TagKinds)
      H = hashCombine(H, reinterpret_cast<size_t>(K));
    for (Symbol Sym : T.RegionParams)
      H = hashCombine(H, symbolHash(Sym));
    for (const Type *A : T.Args)
      H = hashCombine(H, A->hash());
    for (const Tag *A : T.TagArgs)
      H = hashCombine(H, A->hash());
    T.H = H;
    T.Bits = typeBits(T);
  }

  uint8_t typeBits(const Type &T) const {
    constexpr uint8_t NG = Type::FlagNormal | Type::FlagGround;
    switch (T.K) {
    case TypeKind::Int:
      return NG;
    case TypeKind::TyVar:
      return Type::FlagNormal;
    case TypeKind::Prod:
    case TypeKind::Sum:
      return (T.A->flags() & T.B->flags()) & NG;
    case TypeKind::Left:
    case TypeKind::Right:
      return T.A->flags() & NG;
    case TypeKind::At: {
      uint8_t Bits = T.A->flags() & NG;
      if (!T.R1.isName())
        Bits &= ~Type::FlagGround;
      return Bits;
    }
    case TypeKind::MApp:
    case TypeKind::CApp: {
      bool Stuck = T.T->is(TagKind::Var) || T.T->is(TagKind::App) ||
                   T.T->is(TagKind::Lam);
      uint8_t Bits = 0;
      if (Stuck && T.T->isNormal())
        Bits |= Type::FlagNormal;
      bool Ground = T.T->isGround();
      if (T.K == TypeKind::MApp) {
        for (Region R : T.Regions)
          Ground &= R.isName();
      } else {
        Ground &= T.R1.isName() && T.R2.isName();
      }
      if (Ground)
        Bits |= Type::FlagGround;
      return Bits;
    }
    case TypeKind::ExistsTag:
    case TypeKind::ExistsTyVar:
    case TypeKind::ExistsRegion:
      return T.A->flags() & Type::FlagNormal; // binders: never ground
    case TypeKind::Code: {
      uint8_t Bits = Type::FlagNormal; // binders: never ground
      for (const Type *A : T.Args)
        Bits &= A->flags();
      return Bits & Type::FlagNormal;
    }
    case TypeKind::TransCode: {
      uint8_t Bits = NG;
      for (const Tag *A : T.TagArgs)
        Bits &= A->flags();
      for (const Type *A : T.Args)
        Bits &= A->flags();
      bool RegionsGround = T.R1.isName();
      for (Region R : T.Regions)
        RegionsGround &= R.isName();
      if (!RegionsGround)
        Bits &= ~Type::FlagGround;
      return Bits & NG;
    }
    }
    return 0;
  }

  struct TagHash {
    size_t operator()(const Tag *T) const { return T->hash(); }
  };
  struct TagEq {
    bool operator()(const Tag *A, const Tag *B) const {
      return A->shallowEquals(*B);
    }
  };
  struct TypeHash {
    size_t operator()(const Type *T) const { return T->hash(); }
  };
  struct TypeEq {
    bool operator()(const Type *A, const Type *B) const {
      return A->shallowEquals(*B);
    }
  };

  const Tag *internTag(Tag &&T) {
    finishTag(T);
    if (!InternOn) {
      assert(!Frozen && "allocating tags in a frozen shared base");
      return Alloc.create<Tag>(std::move(T));
    }
    // Base probe first: the frozen base holds the warm shared vocabulary
    // (collector/runtime types), the hot case for session contexts. A node
    // is inserted locally only after missing both tables, so the two are
    // disjoint and probe order is a pure performance choice.
    if (Base) {
      auto BIt = Base->TagTable.find(&T);
      if (BIt != Base->TagTable.end()) {
        ++S.TagInternHits;
        ++S.TagBaseHits;
        return *BIt;
      }
    }
    auto It = TagTable.find(&T);
    if (It != TagTable.end()) {
      ++S.TagInternHits;
      return *It;
    }
    assert(!Frozen && "interning tags into a frozen shared base");
    ++S.TagInternMisses;
    Tag *N = Alloc.create<Tag>(std::move(T));
    if (MarkCanonical)
      N->Bits |= Tag::FlagCanonical;
    TagTable.insert(N);
    TagLog.push_back(N);
    return N;
  }

  const Type *internType(Type &&T) {
    finishType(T);
    if (!InternOn) {
      assert(!Frozen && "allocating types in a frozen shared base");
      return Alloc.create<Type>(std::move(T));
    }
    if (Base) {
      auto BIt = Base->TypeTable.find(&T);
      if (BIt != Base->TypeTable.end()) {
        ++S.TypeInternHits;
        ++S.TypeBaseHits;
        return *BIt;
      }
    }
    auto It = TypeTable.find(&T);
    if (It != TypeTable.end()) {
      ++S.TypeInternHits;
      return *It;
    }
    assert(!Frozen && "interning types into a frozen shared base");
    ++S.TypeInternMisses;
    Type *N = Alloc.create<Type>(std::move(T));
    if (MarkCanonical)
      N->Bits |= Type::FlagCanonical;
    TypeTable.insert(N);
    TypeLog.push_back(N);
    return N;
  }

  // In-place construction: node constructors are private (friends of this
  // context), so Arena::create can't call them — and the temporary-then-move
  // detour it would need writes every fat node twice. allocateFor +
  // placement new keeps one write pass; the kind-only constructors are
  // noexcept, which allocateFor requires.
  Value *allocValue(ValueKind K) {
    assert(!Frozen && "allocating values in a frozen shared base");
    return new (Alloc.allocateFor<Value>()) Value(K);
  }
  Op *allocOp(OpKind K) {
    assert(!Frozen && "allocating ops in a frozen shared base");
    return new (Alloc.allocateFor<Op>()) Op(K);
  }
  Term *allocTerm(TermKind K) {
    assert(!Frozen && "allocating terms in a frozen shared base");
    return new (Alloc.allocateFor<Term>()) Term(K);
  }

  friend class ValueBuilder;

  Arena Alloc;
  /// Owned unless constructed over a shared table (observer contexts).
  /// OwnedSyms must be declared before the reference that may bind to it.
  std::unique_ptr<SymbolTable> OwnedSyms;
  SymbolTable &Syms;
  Stats S;
  bool InternOn;
  /// Whether interned nodes get FlagCanonical (off for observer contexts —
  /// see the shared-table constructor).
  bool MarkCanonical;
  /// Frozen read-only context whose tables are probed before this one's
  /// (session contexts only; see the shared-base constructor). Null for
  /// standalone and observer contexts.
  const GcContext *Base = nullptr;
  /// Set by freeze(): this context is now a read-only shared base; every
  /// mutating entry point asserts against it.
  bool Frozen = false;
  /// fresh() namespace tag + counter; see FreshScope.
  std::string FreshTag;
  uint64_t FreshCtr = 0;
  uint64_t OracleCtr = 0; ///< see oracleFreshCtr()
  /// Worker arenas adopted after a parallel collection (adoptArena).
  std::vector<std::unique_ptr<Arena>> AdoptedArenas;

  const Kind *OmegaKind;
  const Tag *IntTagNode;
  const Type *IntTypeNode;
  const Tag *IdFunTag = nullptr;
  Region CdRegion;

  // Uniquing tables + insertion logs (for Checkpoint rollback).
  std::unordered_set<Tag *, TagHash, TagEq> TagTable;
  std::unordered_set<Type *, TypeHash, TypeEq> TypeTable;
  std::map<std::pair<const Kind *, const Kind *>, const Kind *> ArrowKinds;
  std::vector<Tag *> TagLog;
  std::vector<Type *> TypeLog;
  std::vector<std::pair<const Kind *, const Kind *>> KindLog;

  // Normalization memos + insertion logs.
  std::unordered_map<const Tag *, const Tag *> TagNormalMemo;
  std::unordered_map<const Type *, std::array<const Type *, 3>> TypeNormalMemo;
  std::vector<const Tag *> TagMemoLog;
  std::vector<std::pair<const Type *, size_t>> TypeMemoLog;
};

/// Value factories over a caller-owned arena, for the parallel collector's
/// worker threads. GcContext's factories funnel through its single Arena,
/// which is not thread-safe; each copy worker instead builds the copied
/// values through one of these over a private Arena, and the machine's
/// context adopts the arena (GcContext::adoptArena) after the workers join.
/// Only the value shapes a collector can copy are provided — workers never
/// build Code/Var values, Ops, or Terms.
class ValueBuilder {
public:
  explicit ValueBuilder(Arena &A) : A(A) {}
  ValueBuilder(const ValueBuilder &) = delete;
  ValueBuilder &operator=(const ValueBuilder &) = delete;

  const Value *valInt(int64_t N) {
    Value *V = allocValue(ValueKind::Int);
    V->N = N;
    return V;
  }

  const Value *valAddr(Address Addr) {
    assert(Addr.R.isName() && "addresses live in concrete regions");
    Value *V = allocValue(ValueKind::Addr);
    V->Addr = Addr;
    return V;
  }

  const Value *valPair(const Value *L, const Value *R) {
    Value *V = allocValue(ValueKind::Pair);
    V->A = L;
    V->B = R;
    return V;
  }

  const Value *valInl(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inl);
    V->A = Payload;
    return V;
  }

  const Value *valInr(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inr);
    V->A = Payload;
    return V;
  }

  const Value *valPackTag(Symbol Var, const Tag *Witness, const Value *Payload,
                          const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTag);
    V->V = Var;
    V->TW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  const Value *valPackTyVar(Symbol Var, const RegionSet *Delta,
                            const Type *Witness, const Value *Payload,
                            const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTyVar);
    V->V = Var;
    V->Delta = Delta;
    V->TyW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  const Value *valPackTyVar(Symbol Var, RegionSet Delta, const Type *Witness,
                            const Value *Payload, const Type *BodyType) {
    return valPackTyVar(Var, allocRegionSet(std::move(Delta)), Witness,
                        Payload, BodyType);
  }

  const Value *valPackRegion(Symbol Var, const RegionSet *Delta,
                             Region Witness, const Value *Payload,
                             const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackRegion);
    V->V = Var;
    V->Delta = Delta;
    V->RW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  const Value *valPackRegion(Symbol Var, RegionSet Delta, Region Witness,
                             const Value *Payload, const Type *BodyType) {
    return valPackRegion(Var, allocRegionSet(std::move(Delta)), Witness,
                         Payload, BodyType);
  }

  const Value *valTransApp(const Value *Inner, const TransData *Args) {
    Value *V = allocValue(ValueKind::TransApp);
    V->A = Inner;
    V->Trans = Args;
    return V;
  }

  const Value *valTransApp(const Value *Inner, std::vector<const Tag *> TagArgs,
                           std::vector<Region> RegionArgs) {
    return valTransApp(Inner,
                       allocTransData(std::move(TagArgs),
                                      std::move(RegionArgs)));
  }

  const TransData *allocTransData(std::vector<const Tag *> TagArgs,
                                  std::vector<Region> RegionArgs) {
    auto *D = A.create<TransData>();
    D->TagArgs = std::move(TagArgs);
    D->RegionArgs = std::move(RegionArgs);
    return D;
  }

  const RegionSet *allocRegionSet(RegionSet RS) {
    return A.create<RegionSet>(std::move(RS));
  }

private:
  Value *allocValue(ValueKind K) {
    return new (A.allocateFor<Value>()) Value(K);
  }

  Arena &A;
};

} // namespace scav::gc

#endif // SCAV_GC_GCCONTEXT_H
