//===- gc/GcContext.h - Owning context and node factories ------*- C++ -*-===//
///
/// \file
/// GcContext owns the arena behind every λGC AST node and provides the only
/// way to construct nodes. It also interns the handful of singletons (Ω,
/// int, the Int tag, the cd region) used everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_GC_GCCONTEXT_H
#define SCAV_GC_GCCONTEXT_H

#include "gc/Term.h"
#include "support/Arena.h"
#include "support/Symbol.h"

#include <string_view>

namespace scav::gc {

/// Owns all λGC AST nodes and the symbol table used for their variables.
class GcContext {
public:
  GcContext() {
    OmegaKind = Alloc.create<Kind>(Kind());
    IntTagNode = allocTag(TagKind::Int);
    IntTypeNode = allocType(TypeKind::Int);
    CdRegion = Region::name(Syms.intern("cd"));
  }

  GcContext(const GcContext &) = delete;
  GcContext &operator=(const GcContext &) = delete;

  SymbolTable &symbols() { return Syms; }
  const SymbolTable &symbols() const { return Syms; }

  Symbol intern(std::string_view S) { return Syms.intern(S); }
  Symbol fresh(std::string_view Base) { return Syms.fresh(Base); }
  std::string_view name(Symbol S) const { return Syms.name(S); }

  /// The distinguished code region cd (§4.3).
  Region cd() const { return CdRegion; }

  // -- Kinds -------------------------------------------------------------

  const Kind *omega() const { return OmegaKind; }
  const Kind *arrowKind(const Kind *From, const Kind *To) {
    return Alloc.create<Kind>(Kind(From, To));
  }
  /// Ω → Ω, the kind of tag functions.
  const Kind *omegaToOmega() { return arrowKind(OmegaKind, OmegaKind); }

  // -- Tags ----------------------------------------------------------------

  const Tag *tagInt() const { return IntTagNode; }

  const Tag *tagVar(Symbol S) {
    Tag *T = allocTag(TagKind::Var);
    T->V = S;
    return T;
  }

  const Tag *tagProd(const Tag *L, const Tag *R) {
    Tag *T = allocTag(TagKind::Prod);
    T->A = L;
    T->B = R;
    return T;
  }

  const Tag *tagArrow(std::vector<const Tag *> Args) {
    Tag *T = allocTag(TagKind::Arrow);
    T->Args = std::move(Args);
    return T;
  }

  const Tag *tagExists(Symbol Var, const Tag *Body) {
    Tag *T = allocTag(TagKind::Exists);
    T->V = Var;
    T->A = Body;
    return T;
  }

  const Tag *tagLam(Symbol Var, const Kind *K, const Tag *Body) {
    Tag *T = allocTag(TagKind::Lam);
    T->V = Var;
    T->BK = K;
    T->A = Body;
    return T;
  }
  const Tag *tagLam(Symbol Var, const Tag *Body) {
    return tagLam(Var, omega(), Body);
  }

  const Tag *tagApp(const Tag *Fun, const Tag *Arg) {
    Tag *T = allocTag(TagKind::App);
    T->A = Fun;
    T->B = Arg;
    return T;
  }

  /// λt.t — the identity tag function, used to fill unused te slots in the
  /// closure-converted collector (Fig 12).
  const Tag *tagIdFun() {
    Symbol T = fresh("t");
    return tagLam(T, tagVar(T));
  }

  // -- Types ---------------------------------------------------------------

  const Type *typeInt() const { return IntTypeNode; }

  const Type *typeProd(const Type *L, const Type *R) {
    Type *T = allocType(TypeKind::Prod);
    T->A = L;
    T->B = R;
    return T;
  }

  const Type *typeCode(std::vector<Symbol> TagParams,
                       std::vector<const Kind *> TagKinds,
                       std::vector<Symbol> RegionParams,
                       std::vector<const Type *> Args) {
    assert(TagParams.size() == TagKinds.size() && "mismatched tag binders");
    Type *T = allocType(TypeKind::Code);
    T->TagParams = std::move(TagParams);
    T->TagKinds = std::move(TagKinds);
    T->RegionParams = std::move(RegionParams);
    T->Args = std::move(Args);
    return T;
  }

  /// ∀J~τKJ~ρK(~σ) →At 0: translucent code with pinned tag and region
  /// arguments (see the note in Type.h).
  const Type *typeTransCode(std::vector<const Tag *> TagArgs,
                            std::vector<Region> RegionArgs,
                            std::vector<const Type *> Args, Region At) {
    Type *T = allocType(TypeKind::TransCode);
    T->TagArgs = std::move(TagArgs);
    T->Regions = std::move(RegionArgs);
    T->Args = std::move(Args);
    T->R1 = At;
    return T;
  }

  const Type *typeExistsTag(Symbol Var, const Kind *K, const Type *Body) {
    Type *T = allocType(TypeKind::ExistsTag);
    T->V = Var;
    T->BK = K;
    T->A = Body;
    return T;
  }

  const Type *typeExistsTyVar(Symbol Var, RegionSet Delta, const Type *Body) {
    Type *T = allocType(TypeKind::ExistsTyVar);
    T->V = Var;
    T->Delta = std::move(Delta);
    T->A = Body;
    return T;
  }

  /// ∃r∈∆.(Body at r); Body may mention r.
  const Type *typeExistsRegion(Symbol Var, RegionSet Delta, const Type *Body) {
    Type *T = allocType(TypeKind::ExistsRegion);
    T->V = Var;
    T->Delta = std::move(Delta);
    T->A = Body;
    return T;
  }

  const Type *typeAt(const Type *Body, Region R) {
    Type *T = allocType(TypeKind::At);
    T->A = Body;
    T->R1 = R;
    return T;
  }

  /// M_ρ(τ) (Base/Forward: one region) or M_{ρy,ρo}(τ) (Generational: two).
  const Type *typeM(std::vector<Region> Regions, const Tag *T) {
    assert((Regions.size() == 1 || Regions.size() == 2) &&
           "M takes one or two regions");
    Type *Ty = allocType(TypeKind::MApp);
    Ty->Regions = std::move(Regions);
    Ty->T = T;
    return Ty;
  }
  const Type *typeM(Region R, const Tag *T) {
    return typeM(std::vector<Region>{R}, T);
  }

  const Type *typeC(Region From, Region To, const Tag *T) {
    Type *Ty = allocType(TypeKind::CApp);
    Ty->R1 = From;
    Ty->R2 = To;
    Ty->T = T;
    return Ty;
  }

  const Type *typeVar(Symbol S) {
    Type *T = allocType(TypeKind::TyVar);
    T->V = S;
    return T;
  }

  const Type *typeLeft(const Type *Body) {
    Type *T = allocType(TypeKind::Left);
    T->A = Body;
    return T;
  }

  const Type *typeRight(const Type *Body) {
    Type *T = allocType(TypeKind::Right);
    T->A = Body;
    return T;
  }

  const Type *typeSum(const Type *L, const Type *R) {
    Type *T = allocType(TypeKind::Sum);
    T->A = L;
    T->B = R;
    return T;
  }

  // -- Values ----------------------------------------------------------

  const Value *valInt(int64_t N) {
    Value *V = allocValue(ValueKind::Int);
    V->N = N;
    return V;
  }

  const Value *valVar(Symbol S) {
    Value *V = allocValue(ValueKind::Var);
    V->V = S;
    return V;
  }

  const Value *valAddr(Address A) {
    assert(A.R.isName() && "addresses live in concrete regions");
    Value *V = allocValue(ValueKind::Addr);
    V->Addr = A;
    return V;
  }

  const Value *valPair(const Value *A, const Value *B) {
    Value *V = allocValue(ValueKind::Pair);
    V->A = A;
    V->B = B;
    return V;
  }

  const Value *valPackTag(Symbol Var, const Tag *Witness, const Value *Payload,
                          const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTag);
    V->V = Var;
    V->TW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  /// vJ~τKJ~ρK: translucent application pinning tags and regions.
  const Value *valTransApp(const Value *Inner, std::vector<const Tag *> TagArgs,
                           std::vector<Region> RegionArgs) {
    Value *V = allocValue(ValueKind::TransApp);
    V->A = Inner;
    V->TagArgs = std::move(TagArgs);
    V->RegionArgs = std::move(RegionArgs);
    return V;
  }

  const Value *valPackTyVar(Symbol Var, RegionSet Delta, const Type *Witness,
                            const Value *Payload, const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackTyVar);
    V->V = Var;
    V->Delta = std::move(Delta);
    V->TyW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  const Value *valCode(std::vector<Symbol> TagParams,
                       std::vector<const Kind *> TagKinds,
                       std::vector<Symbol> RegionParams,
                       std::vector<Symbol> ValParams,
                       std::vector<const Type *> ValTypes, const Term *Body) {
    assert(TagParams.size() == TagKinds.size() && "mismatched tag binders");
    assert(ValParams.size() == ValTypes.size() && "mismatched val binders");
    Value *V = allocValue(ValueKind::Code);
    V->TagParams = std::move(TagParams);
    V->TagKinds = std::move(TagKinds);
    V->RegionParams = std::move(RegionParams);
    V->ValParams = std::move(ValParams);
    V->ValTypes = std::move(ValTypes);
    V->Body = Body;
    return V;
  }

  const Value *valInl(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inl);
    V->A = Payload;
    return V;
  }

  const Value *valInr(const Value *Payload) {
    Value *V = allocValue(ValueKind::Inr);
    V->A = Payload;
    return V;
  }

  const Value *valPackRegion(Symbol Var, RegionSet Delta, Region Witness,
                             const Value *Payload, const Type *BodyType) {
    Value *V = allocValue(ValueKind::PackRegion);
    V->V = Var;
    V->Delta = std::move(Delta);
    V->RW = Witness;
    V->A = Payload;
    V->BT = BodyType;
    return V;
  }

  // -- Operations --------------------------------------------------------

  const Op *opVal(const Value *V) {
    Op *O = allocOp(OpKind::Val);
    O->A = V;
    return O;
  }

  const Op *opProj(unsigned Index, const Value *V) {
    assert((Index == 1 || Index == 2) && "projection index must be 1 or 2");
    Op *O = allocOp(Index == 1 ? OpKind::Proj1 : OpKind::Proj2);
    O->A = V;
    return O;
  }

  const Op *opPut(Region R, const Value *V) {
    Op *O = allocOp(OpKind::Put);
    O->R = R;
    O->A = V;
    return O;
  }

  const Op *opGet(const Value *V) {
    Op *O = allocOp(OpKind::Get);
    O->A = V;
    return O;
  }

  const Op *opStrip(const Value *V) {
    Op *O = allocOp(OpKind::Strip);
    O->A = V;
    return O;
  }

  const Op *opPrim(PrimOp P, const Value *L, const Value *R) {
    Op *O = allocOp(OpKind::Prim);
    O->P = P;
    O->A = L;
    O->B = R;
    return O;
  }

  // -- Terms ---------------------------------------------------------------

  const Term *termApp(const Value *Fun, std::vector<const Tag *> Tags,
                      std::vector<Region> Regions,
                      std::vector<const Value *> Args) {
    Term *T = allocTerm(TermKind::App);
    T->V1 = Fun;
    T->TagArgs = std::move(Tags);
    T->RegionArgs = std::move(Regions);
    T->ValArgs = std::move(Args);
    return T;
  }

  const Term *termLet(Symbol X, const Op *O, const Term *Body) {
    Term *T = allocTerm(TermKind::Let);
    T->X1 = X;
    T->O = O;
    T->E1 = Body;
    return T;
  }

  const Term *termHalt(const Value *V) {
    Term *T = allocTerm(TermKind::Halt);
    T->V1 = V;
    return T;
  }

  const Term *termIfGc(Region R, const Term *Full, const Term *NotFull) {
    Term *T = allocTerm(TermKind::IfGc);
    T->R1 = R;
    T->E1 = Full;
    T->E2 = NotFull;
    return T;
  }

  const Term *termOpenTag(const Value *V, Symbol TagVar, Symbol ValVar,
                          const Term *Body) {
    Term *T = allocTerm(TermKind::OpenTag);
    T->V1 = V;
    T->X1 = TagVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termOpenTyVar(const Value *V, Symbol TyVar, Symbol ValVar,
                            const Term *Body) {
    Term *T = allocTerm(TermKind::OpenTyVar);
    T->V1 = V;
    T->X1 = TyVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termLetRegion(Symbol R, const Term *Body) {
    Term *T = allocTerm(TermKind::LetRegion);
    T->X1 = R;
    T->E1 = Body;
    return T;
  }

  const Term *termOnly(RegionSet Keep, const Term *Body) {
    Term *T = allocTerm(TermKind::Only);
    T->Delta = std::move(Keep);
    T->E1 = Body;
    return T;
  }

  const Term *termTypecase(const Tag *Scrutinee, const Term *CaseInt,
                           const Term *CaseArrow, Symbol ProdVar1,
                           Symbol ProdVar2, const Term *CaseProd,
                           Symbol ExistsVar, const Term *CaseExists) {
    Term *T = allocTerm(TermKind::Typecase);
    T->T = Scrutinee;
    T->E1 = CaseInt;
    T->E2 = CaseArrow;
    T->X1 = ProdVar1;
    T->X2 = ProdVar2;
    T->E3 = CaseProd;
    T->X3 = ExistsVar;
    T->E4 = CaseExists;
    return T;
  }

  const Term *termIfLeft(Symbol X, const Value *Scrutinee, const Term *IfL,
                         const Term *IfR) {
    Term *T = allocTerm(TermKind::IfLeft);
    T->X1 = X;
    T->V1 = Scrutinee;
    T->E1 = IfL;
    T->E2 = IfR;
    return T;
  }

  const Term *termSet(const Value *Dst, const Value *Src, const Term *Rest) {
    Term *T = allocTerm(TermKind::Set);
    T->V1 = Dst;
    T->V2 = Src;
    T->E1 = Rest;
    return T;
  }

  const Term *termLetWiden(Symbol X, Region ToRegion, const Tag *Tau,
                           const Value *V, const Term *Body) {
    Term *T = allocTerm(TermKind::LetWiden);
    T->X1 = X;
    T->R1 = ToRegion;
    T->T = Tau;
    T->V1 = V;
    T->E1 = Body;
    return T;
  }

  const Term *termOpenRegion(const Value *V, Symbol RegionVar, Symbol ValVar,
                             const Term *Body) {
    Term *T = allocTerm(TermKind::OpenRegion);
    T->V1 = V;
    T->X1 = RegionVar;
    T->X2 = ValVar;
    T->E1 = Body;
    return T;
  }

  const Term *termIfReg(Region A, Region B, const Term *Eq, const Term *Ne) {
    Term *T = allocTerm(TermKind::IfReg);
    T->R1 = A;
    T->R2 = B;
    T->E1 = Eq;
    T->E2 = Ne;
    return T;
  }

  const Term *termIf0(const Value *V, const Term *Zero, const Term *NonZero) {
    Term *T = allocTerm(TermKind::If0);
    T->V1 = V;
    T->E1 = Zero;
    T->E2 = NonZero;
    return T;
  }

  Arena &arena() { return Alloc; }

private:
  Tag *allocTag(TagKind K) { return Alloc.create<Tag>(Tag(K)); }
  Type *allocType(TypeKind K) { return Alloc.create<Type>(Type(K)); }
  Value *allocValue(ValueKind K) { return Alloc.create<Value>(Value(K)); }
  Op *allocOp(OpKind K) { return Alloc.create<Op>(Op(K)); }
  Term *allocTerm(TermKind K) { return Alloc.create<Term>(Term(K)); }

  Arena Alloc;
  SymbolTable Syms;
  const Kind *OmegaKind;
  const Tag *IntTagNode;
  const Type *IntTypeNode;
  Region CdRegion;
};

} // namespace scav::gc

#endif // SCAV_GC_GCCONTEXT_H
