//===- gc/Snapshot.cpp - Versioned machine-state snapshots ----------------===//
//
// Format v1 ("SCAVSNP1", little-endian throughout, host-independent):
//
//   magic[8] u32(version)
//   header:  u8 level, u8 layout, u8 status, u8 typeTrackingOk,
//            u64 steps, str stuckReason, str typeTrackingError,
//            str freshNamespace, u64 oracleFreshCtr,
//            str meta.kind, str meta.diagnostic, str meta.checker,
//            u8 meta.restrict, u8 meta.checkCode
//   symbols: u32 count, count × str   (the whole SymbolTable, in id order —
//            positions ARE the file symbol ids)
//   nodes:   u32 count, count × record (post-order: children always refer
//            to smaller indices; one shared index space across node classes)
//   roots:   ref currentTerm, ref haltValue
//   memory:  u32 regionCount, per region (sorted by live symbol id):
//            sym, u32 capacity, u64 totalAllocated, u64 epoch,
//            u32 cellCount, cellCount × ref value   (decoded view)
//   psi:     u32 regionCount, per region (sorted): sym, u32 cellCount,
//            cellCount × ref type   (exact extent, trailing nulls included)
//   journal: u64 base, u32 count, count × (u8 kind, sym R, sym R2)
//
// A node record is u8 class (Kind/Tag/Type/Value/Op/Term), u8 kind, then
// kind-specific fields. `ref` is u32 (0xFFFFFFFF = null); `sym` is the u32
// file symbol id (0xFFFFFFFF = invalid Symbol); `str` is u32 length + bytes.
//
//===----------------------------------------------------------------------===//

#include "gc/Snapshot.h"

#include "gc/Ops.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

using namespace scav;
using namespace scav::gc;

namespace {

constexpr char Magic[8] = {'S', 'C', 'A', 'V', 'S', 'N', 'P', '1'};
constexpr uint32_t FormatVersion = 1;
constexpr uint32_t None = 0xFFFFFFFFu;

enum NodeClass : uint8_t {
  ClassKind = 0,
  ClassTag = 1,
  ClassType = 2,
  ClassValue = 3,
  ClassOp = 4,
  ClassTerm = 5,
};

//===----------------------------------------------------------------------===//
// Little-endian writer
//===----------------------------------------------------------------------===//

class Writer {
public:
  std::string Out;

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xFF));
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.append(S.data(), S.size());
  }
};

//===----------------------------------------------------------------------===//
// Node encoder (post-order, memoized per node class)
//===----------------------------------------------------------------------===//

class Encoder {
public:
  Writer Nodes;
  uint32_t Count = 0;

  void sym(Symbol S) { Nodes.u32(S.isValid() ? S.id() : None); }

  void region(Region R) {
    if (!R.isValid()) {
      Nodes.u8(0);
      Nodes.u32(None);
    } else {
      Nodes.u8(R.isName() ? 2 : 1);
      Nodes.u32(R.sym().id());
    }
  }

  void regionSet(const RegionSet &RS) {
    Nodes.u32(static_cast<uint32_t>(RS.size()));
    for (Region R : RS)
      region(R);
  }

  void address(Address A) {
    region(A.R);
    Nodes.u32(A.Offset);
  }

  uint32_t kind(const Kind *K) {
    if (!K)
      return None;
    auto It = KindIds.find(K);
    if (It != KindIds.end())
      return It->second;
    uint32_t From = None, To = None;
    if (K->isArrow()) {
      From = kind(K->from());
      To = kind(K->to());
    }
    Nodes.u8(ClassKind);
    Nodes.u8(static_cast<uint8_t>(K->kind()));
    if (K->isArrow()) {
      Nodes.u32(From);
      Nodes.u32(To);
    }
    return KindIds[K] = Count++;
  }

  uint32_t tag(const Tag *T) {
    if (!T)
      return None;
    auto It = TagIds.find(T);
    if (It != TagIds.end())
      return It->second;
    uint32_t A = None, B = None, BK = None;
    std::vector<uint32_t> Args;
    switch (T->kind()) {
    case TagKind::Var:
    case TagKind::Int:
      break;
    case TagKind::Prod:
    case TagKind::App:
      A = tag(T->left());
      B = tag(T->right());
      break;
    case TagKind::Arrow:
      for (const Tag *X : T->arrowArgs())
        Args.push_back(tag(X));
      break;
    case TagKind::Exists:
      A = tag(T->body());
      break;
    case TagKind::Lam:
      BK = kind(T->binderKind());
      A = tag(T->body());
      break;
    }
    Nodes.u8(ClassTag);
    Nodes.u8(static_cast<uint8_t>(T->kind()));
    switch (T->kind()) {
    case TagKind::Int:
      break;
    case TagKind::Var:
      sym(T->var());
      break;
    case TagKind::Prod:
    case TagKind::App:
      Nodes.u32(A);
      Nodes.u32(B);
      break;
    case TagKind::Arrow:
      refs(Args);
      break;
    case TagKind::Exists:
      sym(T->var());
      Nodes.u32(A);
      break;
    case TagKind::Lam:
      sym(T->var());
      Nodes.u32(BK);
      Nodes.u32(A);
      break;
    }
    return TagIds[T] = Count++;
  }

  uint32_t type(const Type *T) {
    if (!T)
      return None;
    auto It = TypeIds.find(T);
    if (It != TypeIds.end())
      return It->second;
    // Children first (post-order), collected into locals so the record is
    // written contiguously.
    uint32_t A = None, B = None, BK = None, TG = None;
    std::vector<uint32_t> KindRefs, TypeRefs, TagRefs;
    switch (T->kind()) {
    case TypeKind::Int:
    case TypeKind::TyVar:
      break;
    case TypeKind::Prod:
    case TypeKind::Sum:
      A = type(T->left());
      B = type(T->right());
      break;
    case TypeKind::Left:
    case TypeKind::Right:
    case TypeKind::At:
      A = type(T->body());
      break;
    case TypeKind::ExistsTag:
      BK = kind(T->binderKind());
      A = type(T->body());
      break;
    case TypeKind::ExistsTyVar:
    case TypeKind::ExistsRegion:
      A = type(T->body());
      break;
    case TypeKind::MApp:
    case TypeKind::CApp:
      TG = tag(T->tag());
      break;
    case TypeKind::Code:
      for (const Kind *K : T->tagParamKinds())
        KindRefs.push_back(kind(K));
      for (const Type *X : T->argTypes())
        TypeRefs.push_back(type(X));
      break;
    case TypeKind::TransCode:
      for (const Tag *X : T->transTags())
        TagRefs.push_back(tag(X));
      for (const Type *X : T->argTypes())
        TypeRefs.push_back(type(X));
      break;
    }
    Nodes.u8(ClassType);
    Nodes.u8(static_cast<uint8_t>(T->kind()));
    switch (T->kind()) {
    case TypeKind::Int:
      break;
    case TypeKind::TyVar:
      sym(T->var());
      break;
    case TypeKind::Prod:
    case TypeKind::Sum:
      Nodes.u32(A);
      Nodes.u32(B);
      break;
    case TypeKind::Left:
    case TypeKind::Right:
      Nodes.u32(A);
      break;
    case TypeKind::At:
      Nodes.u32(A);
      region(T->atRegion());
      break;
    case TypeKind::ExistsTag:
      sym(T->var());
      Nodes.u32(BK);
      Nodes.u32(A);
      break;
    case TypeKind::ExistsTyVar:
    case TypeKind::ExistsRegion:
      sym(T->var());
      regionSet(T->delta());
      Nodes.u32(A);
      break;
    case TypeKind::MApp:
      Nodes.u32(static_cast<uint32_t>(T->mRegions().size()));
      for (Region R : T->mRegions())
        region(R);
      Nodes.u32(TG);
      break;
    case TypeKind::CApp:
      region(T->cFrom());
      region(T->cTo());
      Nodes.u32(TG);
      break;
    case TypeKind::Code:
      syms(T->tagParams());
      refs(KindRefs);
      syms(T->regionParams());
      refs(TypeRefs);
      break;
    case TypeKind::TransCode:
      refs(TagRefs);
      Nodes.u32(static_cast<uint32_t>(T->transRegions().size()));
      for (Region R : T->transRegions())
        region(R);
      refs(TypeRefs);
      region(T->atRegion());
      break;
    }
    return TypeIds[T] = Count++;
  }

  uint32_t value(const Value *V) {
    if (!V)
      return None;
    auto It = ValueIds.find(V);
    if (It != ValueIds.end())
      return It->second;
    uint32_t A = None, B = None, TW = None, TyW = None, BT = None,
             Body = None;
    std::vector<uint32_t> KindRefs, TypeRefs, TagRefs;
    switch (V->kind()) {
    case ValueKind::Int:
    case ValueKind::Var:
    case ValueKind::Addr:
      break;
    case ValueKind::Pair:
      A = value(V->first());
      B = value(V->second());
      break;
    case ValueKind::Inl:
    case ValueKind::Inr:
      A = value(V->payload());
      break;
    case ValueKind::PackTag:
      TW = tag(V->tagWitness());
      A = value(V->payload());
      BT = type(V->bodyType());
      break;
    case ValueKind::PackTyVar:
      TyW = type(V->typeWitness());
      A = value(V->payload());
      BT = type(V->bodyType());
      break;
    case ValueKind::PackRegion:
      A = value(V->payload());
      BT = type(V->bodyType());
      break;
    case ValueKind::TransApp:
      A = value(V->payload());
      for (const Tag *X : V->transTags())
        TagRefs.push_back(tag(X));
      break;
    case ValueKind::Code:
      for (const Kind *K : V->tagParamKinds())
        KindRefs.push_back(kind(K));
      for (const Type *X : V->valParamTypes())
        TypeRefs.push_back(type(X));
      Body = term(V->codeBody());
      break;
    }
    Nodes.u8(ClassValue);
    Nodes.u8(static_cast<uint8_t>(V->kind()));
    switch (V->kind()) {
    case ValueKind::Int:
      Nodes.i64(V->intValue());
      break;
    case ValueKind::Var:
      sym(V->var());
      break;
    case ValueKind::Addr:
      address(V->address());
      break;
    case ValueKind::Pair:
      Nodes.u32(A);
      Nodes.u32(B);
      break;
    case ValueKind::Inl:
    case ValueKind::Inr:
      Nodes.u32(A);
      break;
    case ValueKind::PackTag:
      sym(V->var());
      Nodes.u32(TW);
      Nodes.u32(A);
      Nodes.u32(BT);
      break;
    case ValueKind::PackTyVar:
      sym(V->var());
      regionSet(V->delta());
      Nodes.u32(TyW);
      Nodes.u32(A);
      Nodes.u32(BT);
      break;
    case ValueKind::PackRegion:
      sym(V->var());
      regionSet(V->delta());
      region(V->regionWitness());
      Nodes.u32(A);
      Nodes.u32(BT);
      break;
    case ValueKind::TransApp:
      Nodes.u32(A);
      refs(TagRefs);
      Nodes.u32(static_cast<uint32_t>(V->transRegions().size()));
      for (Region R : V->transRegions())
        region(R);
      break;
    case ValueKind::Code:
      syms(V->tagParams());
      refs(KindRefs);
      syms(V->regionParams());
      syms(V->valParams());
      refs(TypeRefs);
      Nodes.u32(Body);
      break;
    }
    return ValueIds[V] = Count++;
  }

  uint32_t op(const Op *O) {
    if (!O)
      return None;
    auto It = OpIds.find(O);
    if (It != OpIds.end())
      return It->second;
    uint32_t A = None, B = None;
    if (O->is(OpKind::Prim)) {
      A = value(O->lhs());
      B = value(O->rhs());
    } else {
      A = value(O->value());
    }
    Nodes.u8(ClassOp);
    Nodes.u8(static_cast<uint8_t>(O->kind()));
    if (O->is(OpKind::Prim)) {
      Nodes.u8(static_cast<uint8_t>(O->primOp()));
      Nodes.u32(A);
      Nodes.u32(B);
    } else {
      if (O->is(OpKind::Put))
        region(O->putRegion());
      Nodes.u32(A);
    }
    return OpIds[O] = Count++;
  }

  uint32_t term(const Term *E) {
    if (!E)
      return None;
    auto It = TermIds.find(E);
    if (It != TermIds.end())
      return It->second;
    uint32_t V1 = None, V2 = None, O = None, TG = None;
    uint32_t E1 = None, E2 = None, E3 = None, E4 = None;
    std::vector<uint32_t> TagRefs, ValRefs;
    switch (E->kind()) {
    case TermKind::App:
      V1 = value(E->appFun());
      for (const Tag *X : E->appTags())
        TagRefs.push_back(tag(X));
      for (const Value *X : E->appArgs())
        ValRefs.push_back(value(X));
      break;
    case TermKind::Let:
      O = op(E->letOp());
      E1 = term(E->sub1());
      break;
    case TermKind::Halt:
      V1 = value(E->scrutinee());
      break;
    case TermKind::IfGc:
    case TermKind::IfReg:
      E1 = term(E->sub1());
      E2 = term(E->sub2());
      break;
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion:
      V1 = value(E->scrutinee());
      E1 = term(E->sub1());
      break;
    case TermKind::LetRegion:
    case TermKind::Only:
      E1 = term(E->sub1());
      break;
    case TermKind::Typecase:
      TG = tag(E->tag());
      E1 = term(E->caseInt());
      E2 = term(E->caseArrow());
      E3 = term(E->caseProd());
      E4 = term(E->caseExists());
      break;
    case TermKind::IfLeft:
    case TermKind::If0:
      V1 = value(E->scrutinee());
      E1 = term(E->sub1());
      E2 = term(E->sub2());
      break;
    case TermKind::Set:
      V1 = value(E->scrutinee());
      V2 = value(E->setSource());
      E1 = term(E->sub1());
      break;
    case TermKind::LetWiden:
      TG = tag(E->tag());
      V1 = value(E->scrutinee());
      E1 = term(E->sub1());
      break;
    }
    Nodes.u8(ClassTerm);
    Nodes.u8(static_cast<uint8_t>(E->kind()));
    switch (E->kind()) {
    case TermKind::App:
      Nodes.u32(V1);
      refs(TagRefs);
      Nodes.u32(static_cast<uint32_t>(E->appRegions().size()));
      for (Region R : E->appRegions())
        region(R);
      refs(ValRefs);
      break;
    case TermKind::Let:
      sym(E->binderVar());
      Nodes.u32(O);
      Nodes.u32(E1);
      break;
    case TermKind::Halt:
      Nodes.u32(V1);
      break;
    case TermKind::IfGc:
      region(E->region());
      Nodes.u32(E1);
      Nodes.u32(E2);
      break;
    case TermKind::IfReg:
      region(E->ifregLhs());
      region(E->ifregRhs());
      Nodes.u32(E1);
      Nodes.u32(E2);
      break;
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion:
      Nodes.u32(V1);
      sym(E->binderVar());
      sym(E->binderVar2());
      Nodes.u32(E1);
      break;
    case TermKind::LetRegion:
      sym(E->binderVar());
      Nodes.u32(E1);
      break;
    case TermKind::Only:
      regionSet(E->onlySet());
      Nodes.u32(E1);
      break;
    case TermKind::Typecase:
      Nodes.u32(TG);
      Nodes.u32(E1);
      Nodes.u32(E2);
      sym(E->prodVar1());
      sym(E->prodVar2());
      Nodes.u32(E3);
      sym(E->existsVar());
      Nodes.u32(E4);
      break;
    case TermKind::IfLeft:
      sym(E->binderVar());
      Nodes.u32(V1);
      Nodes.u32(E1);
      Nodes.u32(E2);
      break;
    case TermKind::If0:
      Nodes.u32(V1);
      Nodes.u32(E1);
      Nodes.u32(E2);
      break;
    case TermKind::Set:
      Nodes.u32(V1);
      Nodes.u32(V2);
      Nodes.u32(E1);
      break;
    case TermKind::LetWiden:
      sym(E->binderVar());
      region(E->region());
      Nodes.u32(TG);
      Nodes.u32(V1);
      Nodes.u32(E1);
      break;
    }
    return TermIds[E] = Count++;
  }

private:
  void refs(const std::vector<uint32_t> &Rs) {
    Nodes.u32(static_cast<uint32_t>(Rs.size()));
    for (uint32_t R : Rs)
      Nodes.u32(R);
  }
  void syms(const std::vector<Symbol> &Ss) {
    Nodes.u32(static_cast<uint32_t>(Ss.size()));
    for (Symbol S : Ss)
      sym(S);
  }

  std::unordered_map<const void *, uint32_t> KindIds, TagIds, TypeIds,
      ValueIds, OpIds, TermIds;
};

//===----------------------------------------------------------------------===//
// Reader / decoder
//===----------------------------------------------------------------------===//

class Reader {
public:
  Reader(std::string_view In) : In(In) {}

  bool ok() const { return Err.empty(); }
  std::string takeError() { return Err; }
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }
  bool atEnd() const { return Pos == In.size(); }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(In[Pos++]);
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(In[Pos++])) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(In[Pos++])) << (8 * I);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(In.substr(Pos, N));
    Pos += N;
    return S;
  }

private:
  bool need(size_t N) {
    if (Err.empty() && Pos + N <= In.size())
      return true;
    fail("truncated snapshot");
    return false;
  }

  std::string_view In;
  size_t Pos = 0;
  std::string Err;
};

/// Rebuilds the node stream into context-owned nodes. Tags/types/kinds go
/// through the interning factories, so pointer identity (hash-consing) is
/// restored; values/ops/terms are fresh arena nodes.
class Decoder {
public:
  Decoder(Reader &R, GcContext &C, const std::vector<Symbol> &Syms)
      : R(R), C(C), Syms(Syms) {}

  Symbol sym() {
    uint32_t Id = R.u32();
    if (Id == None)
      return Symbol();
    if (Id >= Syms.size()) {
      R.fail("symbol id out of range");
      return Symbol();
    }
    return Syms[Id];
  }

  Region region() {
    uint8_t T = R.u8();
    Symbol S = sym();
    if (T == 0)
      return Region();
    if (!S.isValid()) {
      R.fail("region with invalid symbol");
      return Region();
    }
    return T == 2 ? Region::name(S) : Region::var(S);
  }

  RegionSet regionSet() {
    uint32_t N = R.u32();
    RegionSet RS;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      RS.insert(region());
    return RS;
  }

  Address address() {
    Region Rg = region();
    uint32_t Off = R.u32();
    if (R.ok() && !Rg.isName())
      R.fail("address region is not a name");
    return Address{Rg, Off};
  }

  /// Reads \p Count node records. False on malformed input.
  bool decodeAllNodes(uint32_t Count) {
    Nodes.reserve(Count);
    for (uint32_t I = 0; I != Count && R.ok(); ++I)
      decodeOne();
    return R.ok();
  }

  const Kind *kindAt(uint32_t Ref) { return at<Kind>(Ref, ClassKind); }
  const Tag *tagAt(uint32_t Ref) { return at<Tag>(Ref, ClassTag); }
  const Type *typeAt(uint32_t Ref) { return at<Type>(Ref, ClassType); }
  const Value *valueAt(uint32_t Ref) { return at<Value>(Ref, ClassValue); }
  const Op *opAt(uint32_t Ref) { return at<Op>(Ref, ClassOp); }
  const Term *termAt(uint32_t Ref) { return at<Term>(Ref, ClassTerm); }

private:
  struct NodeRef {
    uint8_t Class;
    const void *P;
  };

  template <typename T> const T *at(uint32_t Ref, uint8_t Class) {
    if (Ref == None)
      return nullptr;
    if (Ref >= Nodes.size() || Nodes[Ref].Class != Class) {
      R.fail("node reference out of range or wrong class");
      return nullptr;
    }
    return static_cast<const T *>(Nodes[Ref].P);
  }

  const Kind *kindRef() { return kindAt(R.u32()); }
  const Tag *tagRef() { return tagAt(R.u32()); }
  const Type *typeRef() { return typeAt(R.u32()); }
  const Value *valueRef() { return valueAt(R.u32()); }
  const Term *termRef() { return termAt(R.u32()); }

  std::vector<const Tag *> tagRefs() {
    uint32_t N = R.u32();
    std::vector<const Tag *> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(tagRef());
    return Out;
  }
  std::vector<const Kind *> kindRefs() {
    uint32_t N = R.u32();
    std::vector<const Kind *> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(kindRef());
    return Out;
  }
  std::vector<const Type *> typeRefs() {
    uint32_t N = R.u32();
    std::vector<const Type *> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(typeRef());
    return Out;
  }
  std::vector<const Value *> valueRefs() {
    uint32_t N = R.u32();
    std::vector<const Value *> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(valueRef());
    return Out;
  }
  std::vector<Region> regions() {
    uint32_t N = R.u32();
    std::vector<Region> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(region());
    return Out;
  }
  std::vector<Symbol> symList() {
    uint32_t N = R.u32();
    std::vector<Symbol> Out;
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Out.push_back(sym());
    return Out;
  }

  void push(uint8_t Class, const void *P) {
    if (R.ok() && !P)
      R.fail("node construction failed");
    Nodes.push_back(NodeRef{Class, P});
  }

  void decodeOne() {
    uint8_t Class = R.u8();
    uint8_t K = R.u8();
    if (!R.ok())
      return;
    switch (Class) {
    case ClassKind:
      decodeKind(K);
      return;
    case ClassTag:
      decodeTag(K);
      return;
    case ClassType:
      decodeType(K);
      return;
    case ClassValue:
      decodeValue(K);
      return;
    case ClassOp:
      decodeOp(K);
      return;
    case ClassTerm:
      decodeTerm(K);
      return;
    }
    R.fail("unknown node class");
  }

  void decodeKind(uint8_t K) {
    switch (static_cast<KindKind>(K)) {
    case KindKind::Omega:
      push(ClassKind, C.omega());
      return;
    case KindKind::Arrow: {
      const Kind *From = kindRef();
      const Kind *To = kindRef();
      if (R.ok() && (!From || !To))
        R.fail("arrow kind with null child");
      push(ClassKind, R.ok() ? C.arrowKind(From, To) : nullptr);
      return;
    }
    }
    R.fail("unknown kind kind");
  }

  void decodeTag(uint8_t K) {
    switch (static_cast<TagKind>(K)) {
    case TagKind::Int:
      push(ClassTag, C.tagInt());
      return;
    case TagKind::Var:
      push(ClassTag, C.tagVar(sym()));
      return;
    case TagKind::Prod: {
      const Tag *A = tagRef();
      const Tag *B = tagRef();
      push(ClassTag, R.ok() ? C.tagProd(A, B) : nullptr);
      return;
    }
    case TagKind::App: {
      const Tag *A = tagRef();
      const Tag *B = tagRef();
      push(ClassTag, R.ok() ? C.tagApp(A, B) : nullptr);
      return;
    }
    case TagKind::Arrow:
      push(ClassTag, C.tagArrow(tagRefs()));
      return;
    case TagKind::Exists: {
      Symbol V = sym();
      const Tag *Body = tagRef();
      push(ClassTag, R.ok() ? C.tagExists(V, Body) : nullptr);
      return;
    }
    case TagKind::Lam: {
      Symbol V = sym();
      const Kind *BK = kindRef();
      const Tag *Body = tagRef();
      push(ClassTag, R.ok() ? C.tagLam(V, BK, Body) : nullptr);
      return;
    }
    }
    R.fail("unknown tag kind");
  }

  void decodeType(uint8_t K) {
    switch (static_cast<TypeKind>(K)) {
    case TypeKind::Int:
      push(ClassType, C.typeInt());
      return;
    case TypeKind::TyVar:
      push(ClassType, C.typeVar(sym()));
      return;
    case TypeKind::Prod: {
      const Type *A = typeRef();
      const Type *B = typeRef();
      push(ClassType, R.ok() ? C.typeProd(A, B) : nullptr);
      return;
    }
    case TypeKind::Sum: {
      const Type *A = typeRef();
      const Type *B = typeRef();
      push(ClassType, R.ok() ? C.typeSum(A, B) : nullptr);
      return;
    }
    case TypeKind::Left:
      push(ClassType, C.typeLeft(typeRef()));
      return;
    case TypeKind::Right:
      push(ClassType, C.typeRight(typeRef()));
      return;
    case TypeKind::At: {
      const Type *Body = typeRef();
      Region Rg = region();
      push(ClassType, R.ok() ? C.typeAt(Body, Rg) : nullptr);
      return;
    }
    case TypeKind::ExistsTag: {
      Symbol V = sym();
      const Kind *BK = kindRef();
      const Type *Body = typeRef();
      push(ClassType, R.ok() ? C.typeExistsTag(V, BK, Body) : nullptr);
      return;
    }
    case TypeKind::ExistsTyVar: {
      Symbol V = sym();
      RegionSet Delta = regionSet();
      const Type *Body = typeRef();
      push(ClassType,
           R.ok() ? C.typeExistsTyVar(V, std::move(Delta), Body) : nullptr);
      return;
    }
    case TypeKind::ExistsRegion: {
      Symbol V = sym();
      RegionSet Delta = regionSet();
      const Type *Body = typeRef();
      push(ClassType,
           R.ok() ? C.typeExistsRegion(V, std::move(Delta), Body) : nullptr);
      return;
    }
    case TypeKind::MApp: {
      std::vector<Region> Rs = regions();
      const Tag *T = tagRef();
      if (R.ok() && (Rs.size() != 1 && Rs.size() != 2))
        R.fail("M type with bad region count");
      push(ClassType, R.ok() ? C.typeM(std::move(Rs), T) : nullptr);
      return;
    }
    case TypeKind::CApp: {
      Region From = region();
      Region To = region();
      const Tag *T = tagRef();
      push(ClassType, R.ok() ? C.typeC(From, To, T) : nullptr);
      return;
    }
    case TypeKind::Code: {
      std::vector<Symbol> TagParams = symList();
      std::vector<const Kind *> TagKinds = kindRefs();
      std::vector<Symbol> RegionParams = symList();
      std::vector<const Type *> Args = typeRefs();
      if (R.ok() && TagParams.size() != TagKinds.size())
        R.fail("code type with mismatched tag binders");
      push(ClassType,
           R.ok() ? C.typeCode(std::move(TagParams), std::move(TagKinds),
                               std::move(RegionParams), std::move(Args))
                  : nullptr);
      return;
    }
    case TypeKind::TransCode: {
      std::vector<const Tag *> TagArgs = tagRefs();
      std::vector<Region> RegionArgs = regions();
      std::vector<const Type *> Args = typeRefs();
      Region At = region();
      push(ClassType,
           R.ok() ? C.typeTransCode(std::move(TagArgs), std::move(RegionArgs),
                                    std::move(Args), At)
                  : nullptr);
      return;
    }
    }
    R.fail("unknown type kind");
  }

  void decodeValue(uint8_t K) {
    switch (static_cast<ValueKind>(K)) {
    case ValueKind::Int:
      push(ClassValue, C.valInt(R.i64()));
      return;
    case ValueKind::Var:
      push(ClassValue, C.valVar(sym()));
      return;
    case ValueKind::Addr: {
      Address A = address();
      push(ClassValue, R.ok() ? C.valAddr(A) : nullptr);
      return;
    }
    case ValueKind::Pair: {
      const Value *A = valueRef();
      const Value *B = valueRef();
      push(ClassValue, R.ok() ? C.valPair(A, B) : nullptr);
      return;
    }
    case ValueKind::Inl:
      push(ClassValue, C.valInl(valueRef()));
      return;
    case ValueKind::Inr:
      push(ClassValue, C.valInr(valueRef()));
      return;
    case ValueKind::PackTag: {
      Symbol V = sym();
      const Tag *TW = tagRef();
      const Value *Payload = valueRef();
      const Type *BT = typeRef();
      push(ClassValue,
           R.ok() ? C.valPackTag(V, TW, Payload, BT) : nullptr);
      return;
    }
    case ValueKind::PackTyVar: {
      Symbol V = sym();
      RegionSet Delta = regionSet();
      const Type *TyW = typeRef();
      const Value *Payload = valueRef();
      const Type *BT = typeRef();
      push(ClassValue,
           R.ok() ? C.valPackTyVar(V, std::move(Delta), TyW, Payload, BT)
                  : nullptr);
      return;
    }
    case ValueKind::PackRegion: {
      Symbol V = sym();
      RegionSet Delta = regionSet();
      Region RW = region();
      const Value *Payload = valueRef();
      const Type *BT = typeRef();
      push(ClassValue,
           R.ok() ? C.valPackRegion(V, std::move(Delta), RW, Payload, BT)
                  : nullptr);
      return;
    }
    case ValueKind::TransApp: {
      const Value *Inner = valueRef();
      std::vector<const Tag *> TagArgs = tagRefs();
      std::vector<Region> RegionArgs = regions();
      push(ClassValue,
           R.ok() ? C.valTransApp(Inner, std::move(TagArgs),
                                  std::move(RegionArgs))
                  : nullptr);
      return;
    }
    case ValueKind::Code: {
      std::vector<Symbol> TagParams = symList();
      std::vector<const Kind *> TagKinds = kindRefs();
      std::vector<Symbol> RegionParams = symList();
      std::vector<Symbol> ValParams = symList();
      std::vector<const Type *> ValTypes = typeRefs();
      const Term *Body = termRef();
      if (R.ok() && (TagParams.size() != TagKinds.size() ||
                     ValParams.size() != ValTypes.size()))
        R.fail("code value with mismatched binders");
      push(ClassValue,
           R.ok() ? C.valCode(std::move(TagParams), std::move(TagKinds),
                              std::move(RegionParams), std::move(ValParams),
                              std::move(ValTypes), Body)
                  : nullptr);
      return;
    }
    }
    R.fail("unknown value kind");
  }

  void decodeOp(uint8_t K) {
    switch (static_cast<OpKind>(K)) {
    case OpKind::Val:
      push(ClassOp, C.opVal(valueRef()));
      return;
    case OpKind::Proj1:
      push(ClassOp, C.opProj(1, valueRef()));
      return;
    case OpKind::Proj2:
      push(ClassOp, C.opProj(2, valueRef()));
      return;
    case OpKind::Get:
      push(ClassOp, C.opGet(valueRef()));
      return;
    case OpKind::Strip:
      push(ClassOp, C.opStrip(valueRef()));
      return;
    case OpKind::Put: {
      Region Rg = region();
      const Value *V = valueRef();
      push(ClassOp, R.ok() ? C.opPut(Rg, V) : nullptr);
      return;
    }
    case OpKind::Prim: {
      uint8_t P = R.u8();
      const Value *L = valueRef();
      const Value *Rv = valueRef();
      if (R.ok() && P > static_cast<uint8_t>(PrimOp::Le))
        R.fail("unknown prim op");
      push(ClassOp,
           R.ok() ? C.opPrim(static_cast<PrimOp>(P), L, Rv) : nullptr);
      return;
    }
    }
    R.fail("unknown op kind");
  }

  void decodeTerm(uint8_t K) {
    switch (static_cast<TermKind>(K)) {
    case TermKind::App: {
      const Value *Fun = valueRef();
      std::vector<const Tag *> Tags = tagRefs();
      std::vector<Region> Rs = regions();
      std::vector<const Value *> Args = valueRefs();
      push(ClassTerm,
           R.ok() ? C.termApp(Fun, std::move(Tags), std::move(Rs),
                              std::move(Args))
                  : nullptr);
      return;
    }
    case TermKind::Let: {
      Symbol X = sym();
      const Op *O = opAt(R.u32());
      const Term *Body = termRef();
      push(ClassTerm, R.ok() ? C.termLet(X, O, Body) : nullptr);
      return;
    }
    case TermKind::Halt:
      push(ClassTerm, C.termHalt(valueRef()));
      return;
    case TermKind::IfGc: {
      Region Rg = region();
      const Term *E1 = termRef();
      const Term *E2 = termRef();
      push(ClassTerm, R.ok() ? C.termIfGc(Rg, E1, E2) : nullptr);
      return;
    }
    case TermKind::IfReg: {
      Region A = region();
      Region B = region();
      const Term *E1 = termRef();
      const Term *E2 = termRef();
      push(ClassTerm, R.ok() ? C.termIfReg(A, B, E1, E2) : nullptr);
      return;
    }
    case TermKind::OpenTag:
    case TermKind::OpenTyVar:
    case TermKind::OpenRegion: {
      const Value *V = valueRef();
      Symbol X1 = sym();
      Symbol X2 = sym();
      const Term *E1 = termRef();
      if (!R.ok()) {
        push(ClassTerm, nullptr);
        return;
      }
      const Term *T = K == static_cast<uint8_t>(TermKind::OpenTag)
                          ? C.termOpenTag(V, X1, X2, E1)
                      : K == static_cast<uint8_t>(TermKind::OpenTyVar)
                          ? C.termOpenTyVar(V, X1, X2, E1)
                          : C.termOpenRegion(V, X1, X2, E1);
      push(ClassTerm, T);
      return;
    }
    case TermKind::LetRegion: {
      Symbol X = sym();
      const Term *E1 = termRef();
      push(ClassTerm, R.ok() ? C.termLetRegion(X, E1) : nullptr);
      return;
    }
    case TermKind::Only: {
      RegionSet Keep = regionSet();
      const Term *E1 = termRef();
      push(ClassTerm, R.ok() ? C.termOnly(std::move(Keep), E1) : nullptr);
      return;
    }
    case TermKind::Typecase: {
      const Tag *T = tagRef();
      const Term *E1 = termRef();
      const Term *E2 = termRef();
      Symbol X1 = sym();
      Symbol X2 = sym();
      const Term *E3 = termRef();
      Symbol X3 = sym();
      const Term *E4 = termRef();
      push(ClassTerm, R.ok() ? C.termTypecase(T, E1, E2, X1, X2, E3, X3, E4)
                             : nullptr);
      return;
    }
    case TermKind::IfLeft: {
      Symbol X = sym();
      const Value *V = valueRef();
      const Term *E1 = termRef();
      const Term *E2 = termRef();
      push(ClassTerm, R.ok() ? C.termIfLeft(X, V, E1, E2) : nullptr);
      return;
    }
    case TermKind::If0: {
      const Value *V = valueRef();
      const Term *E1 = termRef();
      const Term *E2 = termRef();
      push(ClassTerm, R.ok() ? C.termIf0(V, E1, E2) : nullptr);
      return;
    }
    case TermKind::Set: {
      const Value *V1 = valueRef();
      const Value *V2 = valueRef();
      const Term *E1 = termRef();
      push(ClassTerm, R.ok() ? C.termSet(V1, V2, E1) : nullptr);
      return;
    }
    case TermKind::LetWiden: {
      Symbol X = sym();
      Region Rg = region();
      const Tag *T = tagRef();
      const Value *V = valueRef();
      const Term *E1 = termRef();
      push(ClassTerm,
           R.ok() ? C.termLetWiden(X, Rg, T, V, E1) : nullptr);
      return;
    }
    }
    R.fail("unknown term kind");
  }

  Reader &R;
  GcContext &C;
  const std::vector<Symbol> &Syms;
  std::vector<NodeRef> Nodes;
};

std::vector<Symbol> sortedRegionSymsOf(
    const std::unordered_map<Symbol, RegionData, SymbolHash> &Regions) {
  std::vector<Symbol> Out;
  Out.reserve(Regions.size());
  for (const auto &KV : Regions)
    Out.push_back(KV.first);
  std::sort(Out.begin(), Out.end(),
            [](Symbol A, Symbol B) { return A.id() < B.id(); });
  return Out;
}

std::vector<Symbol> sortedRegionSymsOf(
    const std::unordered_map<Symbol, RegionType, SymbolHash> &Regions) {
  std::vector<Symbol> Out;
  Out.reserve(Regions.size());
  for (const auto &KV : Regions)
    Out.push_back(KV.first);
  std::sort(Out.begin(), Out.end(),
            [](Symbol A, Symbol B) { return A.id() < B.id(); });
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

Snapshot::~Snapshot() = default;

std::string scav::gc::serializeSnapshot(Machine &M, const SnapshotMeta &Meta) {
  GcContext &C = M.context();
  // Surface every word-written compact cell as a Value: the snapshot writes
  // the decoded view, which is the view both checkers check.
  M.memory().decodeAll();
  // In Env mode this forces the pending environment into a closed term. The
  // nodes land in the machine context's arena (no scope is open here) —
  // snapshotting is a failure-path operation, the transient is acceptable.
  const Term *Cur = M.currentTerm();

  Writer W;
  W.Out.append(Magic, sizeof(Magic));
  W.u32(FormatVersion);

  // Header.
  W.u8(static_cast<uint8_t>(M.level()));
  W.u8(static_cast<uint8_t>(M.memory().layout()));
  W.u8(static_cast<uint8_t>(M.status()));
  W.u8(M.typeTrackingOk() ? 1 : 0);
  W.u64(M.stats().Steps);
  W.str(M.stuckReason());
  W.str(M.typeTrackingError());
  W.str(C.freshNamespace());
  W.u64(C.oracleFreshCtr());
  W.str(Meta.Kind);
  W.str(Meta.Diagnostic);
  W.str(Meta.Checker);
  W.u8(Meta.RestrictToReachable ? 1 : 0);
  W.u8(Meta.CheckCodeRegion ? 1 : 0);

  // The whole symbol table, in id order. This is what makes offline
  // verdicts byte-identical: region orderings (sortedRegionSyms) and
  // fresh() collision-skips replay only if every id and every spelling
  // does. size() is sampled once — a consistent prefix even if another
  // serve session's thread interns concurrently.
  const SymbolTable &Syms = C.symbols();
  uint32_t NumSyms = static_cast<uint32_t>(Syms.size());
  W.u32(NumSyms);
  for (uint32_t I = 0; I != NumSyms; ++I)
    W.str(Syms.name(I));

  // Node stream. Encode roots and cells through one encoder so shared
  // structure (heavy under the sharing-preserving collectors) is written
  // once.
  Encoder Enc;
  uint32_t CurRef = Enc.term(Cur);
  uint32_t HaltRef = Enc.value(M.haltValue());

  std::vector<Symbol> MemSyms = sortedRegionSymsOf(M.memory().Regions);
  std::vector<std::pair<Symbol, std::vector<uint32_t>>> MemCells;
  for (Symbol S : MemSyms) {
    const RegionData &RD = *M.memory().region(S);
    std::vector<uint32_t> Cells;
    Cells.reserve(RD.Cells.size());
    for (const Value *V : RD.Cells)
      Cells.push_back(Enc.value(V));
    MemCells.emplace_back(S, std::move(Cells));
  }

  std::vector<Symbol> PsiSyms = sortedRegionSymsOf(M.psi().Regions);
  std::vector<std::pair<Symbol, std::vector<uint32_t>>> PsiCells;
  for (Symbol S : PsiSyms) {
    const RegionType &PT = *M.psi().region(S);
    std::vector<uint32_t> Cells;
    Cells.reserve(PT.Cells.size());
    for (const Type *T : PT.Cells)
      Cells.push_back(Enc.type(T));
    PsiCells.emplace_back(S, std::move(Cells));
  }

  W.u32(Enc.Count);
  W.Out += Enc.Nodes.Out;
  W.u32(CurRef);
  W.u32(HaltRef);

  // Memory.
  W.u32(static_cast<uint32_t>(MemCells.size()));
  for (auto &[S, Cells] : MemCells) {
    const RegionData &RD = *M.memory().region(S);
    W.u32(S.id());
    W.u32(RD.Capacity);
    W.u64(RD.TotalAllocated);
    W.u64(RD.Epoch);
    W.u32(static_cast<uint32_t>(Cells.size()));
    for (uint32_t Ref : Cells)
      W.u32(Ref);
  }

  // Ψ — exact extents, trailing nulls included: the "Psi types a cell
  // memory does not have" check compares sizes, so the loaded Ψ must have
  // the live one's exact shape.
  W.u32(static_cast<uint32_t>(PsiCells.size()));
  for (auto &[S, Cells] : PsiCells) {
    W.u32(S.id());
    W.u32(static_cast<uint32_t>(Cells.size()));
    for (uint32_t Ref : Cells)
      W.u32(Ref);
  }

  // Delta-journal tail (whatever the machine still retains).
  uint64_t JBase = M.journalBegin();
  uint64_t JEnd = M.journalEnd();
  W.u64(JBase);
  W.u32(static_cast<uint32_t>(JEnd - JBase));
  for (uint64_t I = JBase; I != JEnd; ++I) {
    const DeltaEvent &Ev = M.journalEvent(I);
    W.u8(static_cast<uint8_t>(Ev.Kind));
    W.u32(Ev.R.isValid() ? Ev.R.id() : None);
    W.u32(Ev.R2.isValid() ? Ev.R2.id() : None);
  }

  return std::move(W.Out);
}

bool scav::gc::saveSnapshot(Machine &M, const SnapshotMeta &Meta,
                            const std::string &Path, std::string &Error) {
  std::string Bytes = serializeSnapshot(M, Meta);
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  Out.close();
  if (!Out) {
    Error = "short write to " + Path;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

std::unique_ptr<Snapshot>
scav::gc::parseSnapshot(std::string_view Bytes, std::string &Error,
                        std::optional<HeapLayout> ForceLayout) {
  Reader R(Bytes);
  char Mg[8];
  for (char &Ch : Mg)
    Ch = static_cast<char>(R.u8());
  if (!R.ok() || std::memcmp(Mg, Magic, sizeof(Magic)) != 0) {
    Error = "not a snapshot file (bad magic)";
    return nullptr;
  }
  uint32_t Version = R.u32();
  if (Version != FormatVersion) {
    Error = "unsupported snapshot version " + std::to_string(Version);
    return nullptr;
  }

  auto S = std::make_unique<Snapshot>();
  uint8_t Level = R.u8();
  uint8_t Layout = R.u8();
  uint8_t Status = R.u8();
  S->TypeTrackingOk = R.u8() != 0;
  S->Steps = R.u64();
  S->StuckReason = R.str();
  S->TypeTrackingError = R.str();
  S->FreshNamespace = R.str();
  S->OracleFreshCtr = R.u64();
  S->Meta.Kind = R.str();
  S->Meta.Diagnostic = R.str();
  S->Meta.Checker = R.str();
  S->Meta.RestrictToReachable = R.u8() != 0;
  S->Meta.CheckCodeRegion = R.u8() != 0;
  if (Level > static_cast<uint8_t>(LanguageLevel::Generational) ||
      Layout > static_cast<uint8_t>(HeapLayout::Legacy) ||
      Status > static_cast<uint8_t>(Machine::Status::Stuck))
    R.fail("bad header enum");
  S->Level = static_cast<LanguageLevel>(Level);
  S->Layout = ForceLayout.value_or(static_cast<HeapLayout>(Layout));
  S->Status = static_cast<Machine::Status>(Status);

  S->Ctx = std::make_unique<GcContext>();
  GcContext &C = *S->Ctx;
  // Restore the fresh-name bookkeeping before anything can mint: spellings
  // of checker "o"/"c" mints must replay exactly (see file comment).
  C.setFreshNamespace(S->FreshNamespace);
  C.oracleFreshCtr() = S->OracleFreshCtr;

  // Symbols: intern every spelling in file-id order. A fresh table assigns
  // dense ids in intern order and the file lists unique spellings, so the
  // mapping is order-preserving (identity in practice — "cd"/"t_id" are
  // pre-interned by the context constructor and lead every live table too).
  uint32_t NumSyms = R.u32();
  std::vector<Symbol> Syms;
  if (R.ok())
    Syms.reserve(NumSyms);
  for (uint32_t I = 0; I != NumSyms && R.ok(); ++I)
    Syms.push_back(C.intern(R.str()));

  Decoder Dec(R, C, Syms);
  uint32_t NumNodes = R.u32();
  if (R.ok())
    Dec.decodeAllNodes(NumNodes);
  S->CurrentTerm = Dec.termAt(R.u32());
  S->HaltValue = Dec.valueAt(R.u32());

  // Memory: reconstruct through the public allocation API so the requested
  // layout re-encodes cells (which is what makes cross-layout loading — and
  // hence Compact-vs-Legacy diffs — work), then restore the bookkeeping
  // put() cannot know.
  S->Mem = std::make_unique<Memory>(C.cd().sym(), S->Layout, &C);
  uint32_t NumRegions = R.u32();
  for (uint32_t I = 0; I != NumRegions && R.ok(); ++I) {
    uint32_t SymId = R.u32();
    Symbol RS = SymId < Syms.size() ? Syms[SymId] : Symbol();
    if (!RS.isValid()) {
      R.fail("memory region with bad symbol");
      break;
    }
    uint32_t Capacity = R.u32();
    uint64_t TotalAllocated = R.u64();
    uint64_t Epoch = R.u64();
    uint32_t NumCells = R.u32();
    S->Mem->addRegion(RS, Capacity);
    for (uint32_t Off = 0; Off != NumCells && R.ok(); ++Off) {
      const Value *V = Dec.valueAt(R.u32());
      if (!S->Mem->put(RS, V))
        R.fail("memory reconstruction failed");
    }
    if (RegionData *RD = S->Mem->region(RS)) {
      RD->TotalAllocated = TotalAllocated;
      RD->Epoch = Epoch;
      RD->clearDirty();
    }
  }

  // Ψ: write the exact per-region vectors (MemoryType::set cannot recreate
  // trailing nulls, so Cells is assigned directly).
  uint32_t NumPsi = R.u32();
  for (uint32_t I = 0; I != NumPsi && R.ok(); ++I) {
    uint32_t SymId = R.u32();
    Symbol RS = SymId < Syms.size() ? Syms[SymId] : Symbol();
    if (!RS.isValid()) {
      R.fail("Psi region with bad symbol");
      break;
    }
    uint32_t NumCells = R.u32();
    S->Psi.addRegion(RS);
    RegionType *PT = S->Psi.region(RS);
    PT->Cells.reserve(NumCells);
    for (uint32_t Off = 0; Off != NumCells && R.ok(); ++Off)
      PT->Cells.push_back(Dec.typeAt(R.u32()));
  }

  // Journal tail.
  S->JournalBase = R.u64();
  uint32_t NumEvents = R.u32();
  for (uint32_t I = 0; I != NumEvents && R.ok(); ++I) {
    uint8_t K = R.u8();
    uint32_t RId = R.u32();
    uint32_t R2Id = R.u32();
    if (K > static_cast<uint8_t>(DeltaKind::ExternalMutation)) {
      R.fail("bad journal event kind");
      break;
    }
    DeltaEvent Ev;
    Ev.Kind = static_cast<DeltaKind>(K);
    if (RId != None && RId < Syms.size())
      Ev.R = Syms[RId];
    if (R2Id != None && R2Id < Syms.size())
      Ev.R2 = Syms[R2Id];
    S->Journal.push_back(Ev);
  }

  if (!R.ok() || !R.atEnd()) {
    Error = R.ok() ? "trailing bytes after snapshot" : R.takeError();
    return nullptr;
  }
  return S;
}

std::unique_ptr<Snapshot>
scav::gc::loadSnapshot(const std::string &Path, std::string &Error,
                       std::optional<HeapLayout> ForceLayout) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return nullptr;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Bytes = SS.str();
  return parseSnapshot(Bytes, Error, ForceLayout);
}

//===----------------------------------------------------------------------===//
// Offline re-checking
//===----------------------------------------------------------------------===//

StateCheckResult scav::gc::recheckSnapshot(Snapshot &S) {
  SnapshotSubject Subj(S);
  StateCheckOptions Opts;
  Opts.CheckCodeRegion = S.Meta.CheckCodeRegion;
  Opts.RestrictToReachable = S.Meta.RestrictToReachable;
  return checkState(Subj, Opts);
}

StateCheckResult scav::gc::recheckSnapshotIncremental(Snapshot &S) {
  SnapshotSubject Subj(S);
  IncrementalCheckOptions Opts;
  Opts.CheckCodeRegion = S.Meta.CheckCodeRegion;
  Opts.RestrictToReachable = S.Meta.RestrictToReachable;
  IncrementalStateCheck Inc(Subj, Opts);
  return Inc.check();
}

//===----------------------------------------------------------------------===//
// Diff / describe
//===----------------------------------------------------------------------===//

namespace {

/// Region spellings → symbols, sorted by name: diffing happens across two
/// independent contexts, so names (not ids) are the join key.
template <typename MapT>
std::map<std::string, Symbol> regionsByName(const GcContext &C,
                                            const MapT &Regions) {
  std::map<std::string, Symbol> Out;
  for (const auto &KV : Regions)
    Out.emplace(std::string(C.name(KV.first)), KV.first);
  return Out;
}

constexpr size_t MaxCellDiffs = 16;

} // namespace

std::string scav::gc::diffSnapshots(const Snapshot &A, const Snapshot &B) {
  std::ostringstream Out;
  auto Line = [&](const std::string &S) { Out << S << "\n"; };
  auto Field = [&](const char *Name, const std::string &VA,
                   const std::string &VB) {
    if (VA != VB)
      Line(std::string(Name) + ": " + VA + " vs " + VB);
  };

  Field("level", languageLevelName(A.Level), languageLevelName(B.Level));
  Field("status", std::to_string(static_cast<int>(A.Status)),
        std::to_string(static_cast<int>(B.Status)));
  Field("steps", std::to_string(A.Steps), std::to_string(B.Steps));
  Field("stuck-reason", A.StuckReason, B.StuckReason);
  Field("type-tracking", A.TypeTrackingOk ? "ok" : "failed",
        B.TypeTrackingOk ? "ok" : "failed");
  Field("type-tracking-error", A.TypeTrackingError, B.TypeTrackingError);
  Field("current-term",
        A.CurrentTerm ? printTerm(*A.Ctx, A.CurrentTerm) : "<none>",
        B.CurrentTerm ? printTerm(*B.Ctx, B.CurrentTerm) : "<none>");
  Field("halt-value",
        A.HaltValue ? printValue(*A.Ctx, A.HaltValue) : "<none>",
        B.HaltValue ? printValue(*B.Ctx, B.HaltValue) : "<none>");
  Field("journal-events", std::to_string(A.Journal.size()),
        std::to_string(B.Journal.size()));

  auto RegsA = regionsByName(*A.Ctx, A.Mem->Regions);
  auto RegsB = regionsByName(*B.Ctx, B.Mem->Regions);
  for (const auto &[Name, SymA] : RegsA)
    if (!RegsB.count(Name))
      Line("region only in A: " + Name);
  for (const auto &[Name, SymB] : RegsB)
    if (!RegsA.count(Name))
      Line("region only in B: " + Name);

  for (const auto &[Name, SymA] : RegsA) {
    auto ItB = RegsB.find(Name);
    if (ItB == RegsB.end())
      continue;
    const RegionData &RA = *A.Mem->region(SymA);
    const RegionData &RB = *B.Mem->region(ItB->second);
    if (RA.Capacity != RB.Capacity)
      Line("region " + Name + ": capacity " + std::to_string(RA.Capacity) +
           " vs " + std::to_string(RB.Capacity));
    if (RA.Cells.size() != RB.Cells.size())
      Line("region " + Name + ": cells " + std::to_string(RA.Cells.size()) +
           " vs " + std::to_string(RB.Cells.size()));
    size_t Common = std::min(RA.Cells.size(), RB.Cells.size());
    size_t Shown = 0, Diffs = 0;
    for (size_t Off = 0; Off != Common; ++Off) {
      // Compare decoded printed forms: name-based, so two contexts' nodes
      // compare exactly. Memory::get decodes lazily on demand.
      Address AdA{Region::name(SymA), static_cast<uint32_t>(Off)};
      Address AdB{Region::name(ItB->second), static_cast<uint32_t>(Off)};
      const Value *VA = A.Mem->get(AdA);
      const Value *VB = B.Mem->get(AdB);
      std::string PA = VA ? printValue(*A.Ctx, VA) : "<null>";
      std::string PB = VB ? printValue(*B.Ctx, VB) : "<null>";
      if (PA == PB)
        continue;
      ++Diffs;
      if (Shown < MaxCellDiffs) {
        ++Shown;
        Line("cell " + Name + "." + std::to_string(Off) + ": " + PA +
             " vs " + PB);
      }
    }
    if (Diffs > Shown)
      Line("region " + Name + ": ... (+" + std::to_string(Diffs - Shown) +
           " more cell diffs)");
  }

  auto PsiA = regionsByName(*A.Ctx, A.Psi.Regions);
  auto PsiB = regionsByName(*B.Ctx, B.Psi.Regions);
  for (const auto &[Name, SymA] : PsiA)
    if (!PsiB.count(Name))
      Line("Psi region only in A: " + Name);
  for (const auto &[Name, SymB] : PsiB)
    if (!PsiA.count(Name))
      Line("Psi region only in B: " + Name);
  for (const auto &[Name, SymA] : PsiA) {
    auto ItB = PsiB.find(Name);
    if (ItB == PsiB.end())
      continue;
    const RegionType &TA = *A.Psi.region(SymA);
    const RegionType &TB = *B.Psi.region(ItB->second);
    if (TA.Cells.size() != TB.Cells.size())
      Line("Psi " + Name + ": entries " + std::to_string(TA.Cells.size()) +
           " vs " + std::to_string(TB.Cells.size()));
    size_t Common = std::min(TA.Cells.size(), TB.Cells.size());
    size_t Shown = 0, Diffs = 0;
    for (size_t Off = 0; Off != Common; ++Off) {
      const Type *TyA = TA.Cells[Off];
      const Type *TyB = TB.Cells[Off];
      std::string PA = TyA ? printType(*A.Ctx, TyA) : "<null>";
      std::string PB = TyB ? printType(*B.Ctx, TyB) : "<null>";
      if (PA == PB)
        continue;
      ++Diffs;
      if (Shown < MaxCellDiffs) {
        ++Shown;
        Line("Psi " + Name + "." + std::to_string(Off) + ": " + PA + " vs " +
             PB);
      }
    }
    if (Diffs > Shown)
      Line("Psi " + Name + ": ... (+" + std::to_string(Diffs - Shown) +
           " more entry diffs)");
  }

  return Out.str();
}

std::string scav::gc::describeSnapshot(const Snapshot &S) {
  std::ostringstream Out;
  const char *StatusName =
      S.Status == Machine::Status::Running
          ? "running"
          : (S.Status == Machine::Status::Halted ? "halted" : "stuck");
  Out << "level: " << languageLevelName(S.Level) << "\n";
  Out << "layout: "
      << (S.Layout == HeapLayout::Compact ? "compact" : "legacy") << "\n";
  Out << "status: " << StatusName << "\n";
  Out << "steps: " << S.Steps << "\n";
  if (!S.StuckReason.empty())
    Out << "stuck-reason: " << S.StuckReason << "\n";
  if (!S.TypeTrackingOk)
    Out << "type-tracking-error: " << S.TypeTrackingError << "\n";
  if (!S.Meta.Kind.empty())
    Out << "dump-kind: " << S.Meta.Kind << "\n";
  if (!S.Meta.Checker.empty())
    Out << "checker: " << S.Meta.Checker << "\n";
  if (!S.Meta.Diagnostic.empty())
    Out << "diagnostic: " << S.Meta.Diagnostic << "\n";
  Out << "journal: base=" << S.JournalBase << " events=" << S.Journal.size()
      << "\n";
  Out << "regions: " << S.Mem->numRegions() << "\n";
  for (const auto &[Name, Sym] : regionsByName(*S.Ctx, S.Mem->Regions)) {
    const RegionData &RD = *S.Mem->region(Sym);
    const RegionType *PT = S.Psi.region(Sym);
    Out << "  " << Name << ": cells=" << RD.Cells.size()
        << " capacity=" << RD.Capacity
        << " allocated=" << RD.TotalAllocated
        << " psi=" << (PT ? PT->Cells.size() : 0) << "\n";
  }
  return Out.str();
}
