//===- serve/Manifest.h - Session manifest for certgc_serve -----*- C++ -*-===//
///
/// \file
/// Parses the manifest format driving certgc_serve: one session per line,
/// whitespace-separated `key=value` options, `#` comments. Example:
///
///   # level × eval-mode sweep over generated programs
///   level=base    eval=env  gen-seed=1
///   level=gen     eval=vm   gen-seed=2 capacity=128 check-every=64
///   level=forward eval=subst program=progs/sum.scm max-steps=100000
///
/// Exactly one of `gen-seed=N` (a ProgramGen seed) or `program=PATH` (a
/// source file, resolved relative to the manifest's directory) selects the
/// session's program. Everything else mirrors a certgc_run flag; see
/// parseManifest for the full key list and defaults. Diagnostics carry the
/// 1-based line number.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SERVE_MANIFEST_H
#define SCAV_SERVE_MANIFEST_H

#include "gc/Machine.h"

#include <string>
#include <string_view>
#include <vector>

namespace scav::serve {

/// One session line, fully resolved (paths absolute-ized against the
/// manifest directory, defaults applied).
struct SessionSpec {
  gc::LanguageLevel Level = gc::LanguageLevel::Base;
  gc::EvalMode Eval = gc::EvalMode::Env;
  gc::HeapLayout Layout = gc::defaultHeapLayout();
  /// Program selection: HasGenSeed picks ProgramGen(GenSeed), else
  /// ProgramPath names a source file.
  bool HasGenSeed = false;
  uint64_t GenSeed = 0;
  std::string ProgramPath;
  uint32_t Capacity = 64;
  uint32_t CheckEvery = 0;
  uint32_t FullCheckEvery = 0;
  bool AsyncCheck = false;
  /// Per-session native-GC worker count (ScopedNativeGcThreads);
  /// 0 = the process default.
  unsigned Threads = 0;
  uint64_t MaxSteps = 5'000'000;
  /// Fault-injection knob (tests/CI): wedge the session's step loop at
  /// this 1-based step until the watchdog aborts it
  /// (PipelineOptions::StallAtStep). 0 = off.
  uint64_t StallAtStep = 0;
};

struct Manifest {
  std::vector<SessionSpec> Sessions;
};

/// Parses manifest \p Text. Relative `program=` paths are prefixed with
/// \p BaseDir (pass "" to leave them as-is). On failure returns false and
/// sets \p Error to a "line N: ..." diagnostic.
bool parseManifest(std::string_view Text, std::string_view BaseDir,
                   Manifest &Out, std::string &Error);

/// Reads and parses the manifest at \p Path; BaseDir is Path's directory.
bool loadManifest(const std::string &Path, Manifest &Out, std::string &Error);

} // namespace scav::serve

#endif // SCAV_SERVE_MANIFEST_H
