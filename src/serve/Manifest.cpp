//===- serve/Manifest.cpp - Session manifest parsing -----------------------===//

#include "serve/Manifest.h"

#include "support/ParseInt.h"

#include <fstream>
#include <sstream>

using namespace scav;
using namespace scav::serve;

namespace {

/// Splits a line into whitespace-separated tokens, dropping a trailing
/// `# comment`.
std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Out;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    if (I >= Line.size() || Line[I] == '#')
      break;
    size_t J = I;
    while (J < Line.size() && Line[J] != ' ' && Line[J] != '\t')
      ++J;
    Out.push_back(Line.substr(I, J - I));
    I = J;
  }
  return Out;
}

bool fail(std::string &Error, size_t LineNo, const std::string &Msg) {
  Error = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

/// `key=value` unsigned fields go through the same strict parser as the
/// environment knobs (support/ParseInt.h): no silent garbage acceptance.
bool parseNum(std::string_view Key, std::string_view Val, uint64_t Max,
              uint64_t &Out, size_t LineNo, std::string &Error) {
  std::optional<uint64_t> N = parseUint64(Val);
  if (!N || *N > Max)
    return fail(Error, LineNo,
                std::string(Key) + "=" + std::string(Val) +
                    ": not an unsigned integer in range");
  Out = *N;
  return true;
}

} // namespace

bool scav::serve::parseManifest(std::string_view Text, std::string_view BaseDir,
                                Manifest &Out, std::string &Error) {
  Out.Sessions.clear();
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Nl == std::string_view::npos ? std::string_view::npos
                                          : Nl - Pos);
    ++LineNo;
    Pos = Nl == std::string_view::npos ? Text.size() + 1 : Nl + 1;

    std::vector<std::string_view> Toks = tokenize(Line);
    if (Toks.empty())
      continue;
    SessionSpec S;
    bool HasProgram = false;
    for (std::string_view Tok : Toks) {
      size_t Eq = Tok.find('=');
      if (Eq == std::string_view::npos)
        return fail(Error, LineNo,
                    "expected key=value, got '" + std::string(Tok) + "'");
      std::string_view Key = Tok.substr(0, Eq);
      std::string_view Val = Tok.substr(Eq + 1);
      uint64_t N = 0;
      if (Key == "level") {
        if (Val == "base")
          S.Level = gc::LanguageLevel::Base;
        else if (Val == "forward")
          S.Level = gc::LanguageLevel::Forward;
        else if (Val == "gen")
          S.Level = gc::LanguageLevel::Generational;
        else
          return fail(Error, LineNo,
                      "level=" + std::string(Val) +
                          ": expected base|forward|gen");
      } else if (Key == "eval") {
        std::optional<gc::EvalMode> M = gc::parseEvalMode(Val);
        if (!M)
          return fail(Error, LineNo,
                      "eval=" + std::string(Val) +
                          ": expected env|subst|vm");
        S.Eval = *M;
      } else if (Key == "layout") {
        if (Val == "compact")
          S.Layout = gc::HeapLayout::Compact;
        else if (Val == "legacy")
          S.Layout = gc::HeapLayout::Legacy;
        else
          return fail(Error, LineNo,
                      "layout=" + std::string(Val) +
                          ": expected compact|legacy");
      } else if (Key == "gen-seed") {
        if (!parseNum(Key, Val, UINT64_MAX, N, LineNo, Error))
          return false;
        S.HasGenSeed = true;
        S.GenSeed = N;
      } else if (Key == "program") {
        if (Val.empty())
          return fail(Error, LineNo, "program=: empty path");
        S.ProgramPath = std::string(Val);
        if (!BaseDir.empty() && Val.front() != '/')
          S.ProgramPath = std::string(BaseDir) + "/" + S.ProgramPath;
        HasProgram = true;
      } else if (Key == "capacity") {
        if (!parseNum(Key, Val, UINT32_MAX, N, LineNo, Error))
          return false;
        S.Capacity = static_cast<uint32_t>(N);
      } else if (Key == "check-every") {
        if (!parseNum(Key, Val, UINT32_MAX, N, LineNo, Error))
          return false;
        S.CheckEvery = static_cast<uint32_t>(N);
      } else if (Key == "full-check-every") {
        if (!parseNum(Key, Val, UINT32_MAX, N, LineNo, Error))
          return false;
        S.FullCheckEvery = static_cast<uint32_t>(N);
      } else if (Key == "async-check") {
        if (!parseNum(Key, Val, 1, N, LineNo, Error))
          return false;
        S.AsyncCheck = N != 0;
      } else if (Key == "threads") {
        if (!parseNum(Key, Val, 1024, N, LineNo, Error))
          return false;
        S.Threads = static_cast<unsigned>(N);
      } else if (Key == "max-steps") {
        if (!parseNum(Key, Val, UINT64_MAX, N, LineNo, Error))
          return false;
        S.MaxSteps = N;
      } else if (Key == "stall-at-step") {
        if (!parseNum(Key, Val, UINT64_MAX, N, LineNo, Error))
          return false;
        S.StallAtStep = N;
      } else {
        return fail(Error, LineNo, "unknown key '" + std::string(Key) + "'");
      }
    }
    if (S.HasGenSeed == HasProgram)
      return fail(Error, LineNo,
                  "exactly one of gen-seed=N or program=PATH is required");
    Out.Sessions.push_back(std::move(S));
  }
  if (Out.Sessions.empty()) {
    Error = "manifest has no sessions";
    return false;
  }
  return true;
}

bool scav::serve::loadManifest(const std::string &Path, Manifest &Out,
                               std::string &Error) {
  std::ifstream In{Path};
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  size_t Slash = Path.rfind('/');
  std::string BaseDir =
      Slash == std::string::npos ? std::string() : Path.substr(0, Slash);
  return parseManifest(Buf.str(), BaseDir, Out, Error);
}
