//===- serve/Serve.h - Concurrent multi-session pipeline runner -*- C++ -*-===//
///
/// \file
/// Runs a manifest of pipeline sessions across a pool of worker threads —
/// the batch "service" front-end of DESIGN.md §3.13. Each session owns its
/// whole pipeline (contexts, machine, collector, checker); the only shared
/// mutable substrate is what is thread-safe by design:
///
///  * an optional *frozen* GcContext base (GcContext's shared-base
///    constructor) serving the warm collector vocabulary read-only, with
///    per-session fresh-name namespaces "s<i>." keeping minted spellings
///    disjoint;
///  * the SymbolTable behind it (internally synchronized);
///  * the global TraceSink ring (mutex-protected; per-thread dense tids
///    give each worker its own Perfetto track for free).
///
/// Metrics follow the registry thread model (support/Metrics.h): every
/// session records into its own private registry — including a
/// "machine.collect_pause_ns" histogram fed by the machine's pause hook —
/// and the aggregate is merged single-threaded after the pool joins.
///
/// Session results are deterministic in the worker count: programs are
/// seeded, fresh names are session-namespaced, and the base is frozen, so
/// 1 worker and N workers produce identical verdicts, halt values, and
/// step counts (tests/serve_differential_test.cpp holds this).
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_SERVE_SERVE_H
#define SCAV_SERVE_SERVE_H

#include "serve/Manifest.h"
#include "support/Metrics.h"

#include <functional>
#include <string>
#include <vector>

namespace scav::serve {

struct ServeOptions {
  /// Worker threads; 1 runs every session inline on the calling thread
  /// (the differential baseline).
  unsigned Workers = 1;
  /// Layer every session's GcContext over one frozen base warmed with the
  /// three collector vocabularies. Off = fully private contexts (more
  /// interning work, zero sharing) — kept as a differential baseline.
  bool SharedBase = true;

  // Observability (DESIGN.md §3.14).

  /// When non-empty, failed sessions write dump bundles (harness/Dump.h)
  /// under `<DumpDir>/s<Index>/`; SessionResult::DumpPath names each.
  std::string DumpDir;
  /// Replay command recorded in bundle manifests (the certgc_serve CLI
  /// passes its own invocation; runOne appends the session index).
  std::string ReplayBase;
  /// Per-session wall-clock stall threshold. When > 0, a watchdog thread
  /// samples every running session's heartbeat (its machine step count);
  /// a session whose heartbeat has not advanced for StallSeconds is
  /// aborted — the *session's own thread* notices the flag, writes a
  /// "stall" dump bundle, and fails with a stall error — and counted in
  /// the aggregate `serve.stalled` counter. The watchdog never touches
  /// machine state: it only sets a per-session atomic flag. 0 = off.
  double StallSeconds = 0;
  /// Watchdog sampling cadence (real time, independent of Clock).
  double WatchdogPollSeconds = 0.01;
  /// Injectable monotonic clock in seconds, read only by the watchdog
  /// thread — deterministic stall tests advance it manually. Null = wall
  /// clock (steady_clock).
  std::function<double()> Clock;
};

/// Outcome of one manifest line. Metrics is the session's private registry:
/// machine.*/memory.*/checker.* plus the collect-pause histogram.
struct SessionResult {
  size_t Index = 0;
  bool Ok = false;
  int64_t Value = 0;
  uint64_t Steps = 0;
  std::string Error;
  double Seconds = 0; ///< Wall time of compile + run on its worker.
  /// Dump-bundle directory for a failed session ("" when none was written).
  std::string DumpPath;
  /// True when the watchdog aborted this session.
  bool Stalled = false;
  support::MetricsRegistry Metrics;
};

struct ServeReport {
  std::vector<SessionResult> Sessions; ///< Manifest order.
  unsigned Workers = 0;
  double WallSeconds = 0;
  bool AllOk = false;
  /// Merged view of every session registry (counters/histograms summed)
  /// plus the serve.* gauges: sessions, workers, wall_seconds,
  /// sessions_per_sec, steps_per_sec.
  support::MetricsRegistry Aggregate;
};

/// Runs every session in \p M on \p Opts.Workers threads; blocks until all
/// sessions finish. Never throws on session failure — per-session errors
/// land in SessionResult::Error and clear ServeReport::AllOk.
ServeReport runSessions(const Manifest &M, const ServeOptions &Opts);

} // namespace scav::serve

#endif // SCAV_SERVE_SERVE_H
