//===- serve/Serve.cpp - Concurrent multi-session pipeline runner ----------===//

#include "serve/Serve.h"

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/NativeCollector.h"
#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"
#include "support/Diag.h"
#include "support/Rng.h"
#include "support/Trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>

using namespace scav;
using namespace scav::serve;

namespace {

double secondsSince(const std::chrono::steady_clock::time_point &T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Builds the frozen shared base: one context warmed with all three
/// collector vocabularies (throwaway machines install the code regions;
/// the tags/types/kinds they intern are what sessions share), then frozen
/// so every later mutation attempt is a session-local write by
/// construction.
std::unique_ptr<gc::GcContext> makeFrozenBase() {
  auto Base = std::make_unique<gc::GcContext>();
  for (gc::LanguageLevel L :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    gc::Machine Warm(*Base, L);
    switch (L) {
    case gc::LanguageLevel::Base:
      gc::installBasicCollector(Warm);
      break;
    case gc::LanguageLevel::Forward:
      gc::installForwardCollector(Warm);
      break;
    case gc::LanguageLevel::Generational:
      gc::installGenCollector(Warm);
      gc::installGenFullCollector(Warm);
      break;
    }
  }
  Base->freeze();
  return Base;
}

/// Per-session channel between a worker thread and the watchdog. The
/// worker publishes its step count into Beat and polls Abort; the watchdog
/// reads Beat/State and sets Abort. Nothing else crosses the threads.
struct SessionWatch {
  std::atomic<uint64_t> Beat{0};
  std::atomic<bool> Abort{false};
  /// 0 = not started, 1 = running, 2 = finished.
  std::atomic<uint8_t> State{0};
};

/// Runs one manifest line to completion on the calling thread. Everything
/// the session touches is private except the (frozen) base, the symbol
/// table, and the trace sink — see the file comment in Serve.h.
SessionResult runOne(const SessionSpec &Spec, size_t Index,
                     const gc::GcContext *Base, const ServeOptions &Opts,
                     SessionWatch *Watch) {
  SessionResult Res;
  Res.Index = Index;
  auto T0 = std::chrono::steady_clock::now();

  harness::PipelineOptions PO;
  PO.Level = Spec.Level;
  PO.Machine.Eval = Spec.Eval;
  PO.Machine.Layout = Spec.Layout;
  PO.Machine.DefaultRegionCapacity = Spec.Capacity;
  PO.FullCheckEvery = Spec.FullCheckEvery;
  PO.AsyncCheck = Spec.AsyncCheck;
  PO.SharedBase = Base;
  PO.FreshNamespace = "s" + std::to_string(Index) + ".";
  if (!Opts.DumpDir.empty()) {
    // Per-session subdirectory: concurrent sessions must not race on one
    // bundle name.
    PO.DumpDir = Opts.DumpDir + "/s" + std::to_string(Index);
    PO.DumpMetrics = &Res.Metrics;
    PO.ReplayCmd = Opts.ReplayBase.empty()
                       ? "session " + std::to_string(Index)
                       : Opts.ReplayBase + "  # session " +
                             std::to_string(Index);
  }
  if (Watch) {
    PO.Heartbeat = &Watch->Beat;
    PO.AbortRequested = &Watch->Abort;
    PO.StallAtStep = Spec.StallAtStep;
  }

  // The session's `threads` knob binds to this worker thread only; it must
  // never touch the process default from a pool thread.
  gc::ScopedNativeGcThreads ThreadsOverride(Spec.Threads);

  harness::Pipeline P(PO);
  support::Histogram &Pauses =
      Res.Metrics.histogram("machine.collect_pause_ns");
  P.machine().attachPauseHistogram(&Pauses);

  DiagEngine Diags;
  bool Compiled = false;
  if (Spec.HasGenSeed) {
    Rng R(Spec.GenSeed);
    const lambda::Expr *E = harness::genProgram(P.lambdaContext(), R);
    Compiled = E && P.compileExpr(E, Diags);
  } else {
    std::ifstream In{Spec.ProgramPath};
    if (!In) {
      Res.Error = "cannot open " + Spec.ProgramPath;
      Res.Seconds = secondsSince(T0);
      return Res;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Compiled = P.compile(Buf.str(), Diags);
  }
  if (!Compiled) {
    Res.Error = "compile failed: " + Diags.str();
    Res.Seconds = secondsSince(T0);
    return Res;
  }

  harness::RunResult R = P.runMachine(Spec.MaxSteps, Spec.CheckEvery);
  Res.Ok = R.Ok;
  Res.Value = R.Value;
  Res.Steps = R.Steps;
  Res.Error = R.Error;
  Res.DumpPath = R.DumpPath;
  Res.Stalled = Watch && Watch->Abort.load(std::memory_order_relaxed);
  Res.Seconds = secondsSince(T0);
  P.exportMetrics(Res.Metrics);
  return Res;
}

} // namespace

ServeReport scav::serve::runSessions(const Manifest &M,
                                     const ServeOptions &Opts) {
  ServeReport Rep;
  Rep.Workers = std::max(1u, Opts.Workers);

  std::unique_ptr<gc::GcContext> Base;
  if (Opts.SharedBase)
    Base = makeFrozenBase();

  auto T0 = std::chrono::steady_clock::now();
  Rep.Sessions.resize(M.Sessions.size());

  // Watchdog plumbing: one channel per session, allocated only when the
  // watchdog is armed (the heartbeat store in the step loop is relaxed and
  // cheap, but the no-watchdog fast path should stay byte-for-byte the
  // same run it always was).
  bool Watchdogged = Opts.StallSeconds > 0;
  std::vector<std::unique_ptr<SessionWatch>> Watches;
  if (Watchdogged) {
    Watches.resize(M.Sessions.size());
    for (auto &W : Watches)
      W = std::make_unique<SessionWatch>();
  }

  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I = Next.fetch_add(1); I < M.Sessions.size();
         I = Next.fetch_add(1)) {
      SessionWatch *W = Watchdogged ? Watches[I].get() : nullptr;
      if (W)
        W->State.store(1, std::memory_order_release);
      Rep.Sessions[I] =
          runOne(M.Sessions[I], I, Base.get(), Opts, W);
      if (W)
        W->State.store(2, std::memory_order_release);
    }
  };

  // The watchdog samples heartbeats on the (injectable) clock and flags
  // sessions whose beat stopped moving; the flagged session's own thread
  // dumps and fails. The trace track it emits ("serve.heartbeat") is the
  // sum of all session beats — monotone while everything makes progress.
  std::atomic<bool> PoolDone{false};
  uint64_t StallsFired = 0;
  std::thread Watchdog;
  if (Watchdogged) {
    std::function<double()> Clock = Opts.Clock;
    if (!Clock) {
      auto W0 = std::chrono::steady_clock::now();
      Clock = [W0] { return secondsSince(W0); };
    }
    Watchdog = std::thread([&, Clock] {
      struct Watched {
        uint64_t LastBeat = 0;
        double LastChange = -1; ///< -1: not seen running yet.
        bool Fired = false;
      };
      std::vector<Watched> WS(Watches.size());
      while (!PoolDone.load(std::memory_order_acquire)) {
        double Now = Clock();
        uint64_t TotalBeats = 0;
        for (size_t I = 0; I != Watches.size(); ++I) {
          SessionWatch &W = *Watches[I];
          uint64_t Beat = W.Beat.load(std::memory_order_relaxed);
          TotalBeats += Beat;
          if (W.State.load(std::memory_order_acquire) != 1)
            continue;
          Watched &S = WS[I];
          if (S.LastChange < 0 || Beat != S.LastBeat) {
            S.LastBeat = Beat;
            S.LastChange = Now;
            continue;
          }
          if (!S.Fired && Now - S.LastChange > Opts.StallSeconds) {
            S.Fired = true;
            ++StallsFired;
            TRACE_INSTANT("serve", "watchdog.stall");
            W.Abort.store(true, std::memory_order_release);
          }
        }
        TRACE_COUNTER("serve.heartbeat", TotalBeats);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(0.0, Opts.WatchdogPollSeconds)));
      }
    });
  }

  if (Rep.Workers == 1) {
    // Inline: the serial baseline the differential test compares against.
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Rep.Workers);
    for (unsigned W = 0; W != Rep.Workers; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }
  PoolDone.store(true, std::memory_order_release);
  if (Watchdog.joinable())
    Watchdog.join();
  Rep.WallSeconds = secondsSince(T0);

  // Aggregation is single-threaded (the registry thread model): sum every
  // per-session registry, then stamp the service-level gauges.
  Rep.AllOk = !Rep.Sessions.empty();
  uint64_t TotalSteps = 0;
  for (const SessionResult &S : Rep.Sessions) {
    Rep.AllOk = Rep.AllOk && S.Ok;
    TotalSteps += S.Steps;
    Rep.Aggregate.mergeFrom(S.Metrics);
  }
  Rep.Aggregate.setGauge("serve.sessions",
                         static_cast<double>(Rep.Sessions.size()));
  Rep.Aggregate.setGauge("serve.workers", Rep.Workers);
  if (Watchdogged) {
    // One writer (this thread, after the join): the counter totals
    // watchdog aborts; per-session heartbeat gauges record each final
    // step count.
    Rep.Aggregate.counter("serve.stalled") += StallsFired;
    for (size_t I = 0; I != Watches.size(); ++I)
      Rep.Aggregate.setGauge("serve.heartbeat.s" + std::to_string(I),
                             static_cast<double>(Watches[I]->Beat.load(
                                 std::memory_order_relaxed)));
  }
  Rep.Aggregate.setGauge("serve.wall_seconds", Rep.WallSeconds);
  if (Rep.WallSeconds > 0) {
    Rep.Aggregate.setGauge("serve.sessions_per_sec",
                           Rep.Sessions.size() / Rep.WallSeconds);
    Rep.Aggregate.setGauge("serve.steps_per_sec",
                           static_cast<double>(TotalSteps) / Rep.WallSeconds);
  }
  return Rep;
}
