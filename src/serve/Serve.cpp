//===- serve/Serve.cpp - Concurrent multi-session pipeline runner ----------===//

#include "serve/Serve.h"

#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/NativeCollector.h"
#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"
#include "support/Diag.h"
#include "support/Rng.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>

using namespace scav;
using namespace scav::serve;

namespace {

double secondsSince(const std::chrono::steady_clock::time_point &T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// Builds the frozen shared base: one context warmed with all three
/// collector vocabularies (throwaway machines install the code regions;
/// the tags/types/kinds they intern are what sessions share), then frozen
/// so every later mutation attempt is a session-local write by
/// construction.
std::unique_ptr<gc::GcContext> makeFrozenBase() {
  auto Base = std::make_unique<gc::GcContext>();
  for (gc::LanguageLevel L :
       {gc::LanguageLevel::Base, gc::LanguageLevel::Forward,
        gc::LanguageLevel::Generational}) {
    gc::Machine Warm(*Base, L);
    switch (L) {
    case gc::LanguageLevel::Base:
      gc::installBasicCollector(Warm);
      break;
    case gc::LanguageLevel::Forward:
      gc::installForwardCollector(Warm);
      break;
    case gc::LanguageLevel::Generational:
      gc::installGenCollector(Warm);
      gc::installGenFullCollector(Warm);
      break;
    }
  }
  Base->freeze();
  return Base;
}

/// Runs one manifest line to completion on the calling thread. Everything
/// the session touches is private except the (frozen) base, the symbol
/// table, and the trace sink — see the file comment in Serve.h.
SessionResult runOne(const SessionSpec &Spec, size_t Index,
                     const gc::GcContext *Base) {
  SessionResult Res;
  Res.Index = Index;
  auto T0 = std::chrono::steady_clock::now();

  harness::PipelineOptions PO;
  PO.Level = Spec.Level;
  PO.Machine.Eval = Spec.Eval;
  PO.Machine.Layout = Spec.Layout;
  PO.Machine.DefaultRegionCapacity = Spec.Capacity;
  PO.FullCheckEvery = Spec.FullCheckEvery;
  PO.AsyncCheck = Spec.AsyncCheck;
  PO.SharedBase = Base;
  PO.FreshNamespace = "s" + std::to_string(Index) + ".";

  // The session's `threads` knob binds to this worker thread only; it must
  // never touch the process default from a pool thread.
  gc::ScopedNativeGcThreads ThreadsOverride(Spec.Threads);

  harness::Pipeline P(PO);
  support::Histogram &Pauses =
      Res.Metrics.histogram("machine.collect_pause_ns");
  P.machine().attachPauseHistogram(&Pauses);

  DiagEngine Diags;
  bool Compiled = false;
  if (Spec.HasGenSeed) {
    Rng R(Spec.GenSeed);
    const lambda::Expr *E = harness::genProgram(P.lambdaContext(), R);
    Compiled = E && P.compileExpr(E, Diags);
  } else {
    std::ifstream In{Spec.ProgramPath};
    if (!In) {
      Res.Error = "cannot open " + Spec.ProgramPath;
      Res.Seconds = secondsSince(T0);
      return Res;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Compiled = P.compile(Buf.str(), Diags);
  }
  if (!Compiled) {
    Res.Error = "compile failed: " + Diags.str();
    Res.Seconds = secondsSince(T0);
    return Res;
  }

  harness::RunResult R = P.runMachine(Spec.MaxSteps, Spec.CheckEvery);
  Res.Ok = R.Ok;
  Res.Value = R.Value;
  Res.Steps = R.Steps;
  Res.Error = R.Error;
  Res.Seconds = secondsSince(T0);
  P.exportMetrics(Res.Metrics);
  return Res;
}

} // namespace

ServeReport scav::serve::runSessions(const Manifest &M,
                                     const ServeOptions &Opts) {
  ServeReport Rep;
  Rep.Workers = std::max(1u, Opts.Workers);

  std::unique_ptr<gc::GcContext> Base;
  if (Opts.SharedBase)
    Base = makeFrozenBase();

  auto T0 = std::chrono::steady_clock::now();
  Rep.Sessions.resize(M.Sessions.size());
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I = Next.fetch_add(1); I < M.Sessions.size();
         I = Next.fetch_add(1))
      Rep.Sessions[I] = runOne(M.Sessions[I], I, Base.get());
  };
  if (Rep.Workers == 1) {
    // Inline: the serial baseline the differential test compares against.
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Rep.Workers);
    for (unsigned W = 0; W != Rep.Workers; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }
  Rep.WallSeconds = secondsSince(T0);

  // Aggregation is single-threaded (the registry thread model): sum every
  // per-session registry, then stamp the service-level gauges.
  Rep.AllOk = !Rep.Sessions.empty();
  uint64_t TotalSteps = 0;
  for (const SessionResult &S : Rep.Sessions) {
    Rep.AllOk = Rep.AllOk && S.Ok;
    TotalSteps += S.Steps;
    Rep.Aggregate.mergeFrom(S.Metrics);
  }
  Rep.Aggregate.setGauge("serve.sessions",
                         static_cast<double>(Rep.Sessions.size()));
  Rep.Aggregate.setGauge("serve.workers", Rep.Workers);
  Rep.Aggregate.setGauge("serve.wall_seconds", Rep.WallSeconds);
  if (Rep.WallSeconds > 0) {
    Rep.Aggregate.setGauge("serve.sessions_per_sec",
                           Rep.Sessions.size() / Rep.WallSeconds);
    Rep.Aggregate.setGauge("serve.steps_per_sec",
                           static_cast<double>(TotalSteps) / Rep.WallSeconds);
  }
  return Rep;
}
