//===- serve/certgc_serve.cpp - Multi-session service front-end ------------===//
//
// Batch service driver: runs a manifest of pipeline sessions (serve/
// Manifest.h — one `key=value` line per session) across a pool of worker
// threads and reports per-session verdicts plus aggregate throughput.
//
//   certgc_serve --manifest FILE [options]
//     --manifest FILE        session manifest (required)
//     --workers N            worker threads (0 = hardware concurrency;
//                            default 1)
//     --no-shared-base       give every session a fully private GcContext
//                            instead of layering over one frozen warm base
//     --stats                print the aggregate metrics registry to stderr
//     --stats-json FILE      write the aggregate registry as
//                            "scav-metrics-v1" JSON (includes the merged
//                            collect-pause histogram and serve.* gauges)
//     --trace-out FILE       record a merged Chrome/Perfetto trace; each
//                            worker thread gets its own track (tid)
//     --dump-dir DIR         write post-mortem dump bundles for failed
//                            sessions under DIR/s<index>/ (harness/Dump.h)
//     --stall-seconds S      arm the per-session watchdog: abort (and
//                            dump) any session whose heartbeat stops for
//                            S wall-clock seconds
//
// Exit status is 0 iff every session halted with a passing verdict.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "harness/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

using namespace scav;
using namespace scav::serve;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: certgc_serve --manifest FILE [--workers N]"
               " [--no-shared-base] [--stats] [--stats-json FILE]"
               " [--trace-out FILE] [--dump-dir DIR] [--stall-seconds S]\n");
  return 2;
}

/// Manifest-key spelling, for a compact table (languageLevelName is the
/// λGC-calculus name, too wide for a column).
const char *levelName(gc::LanguageLevel L) {
  switch (L) {
  case gc::LanguageLevel::Base:
    return "base";
  case gc::LanguageLevel::Forward:
    return "forward";
  case gc::LanguageLevel::Generational:
    return "gen";
  }
  return "?";
}

} // namespace

int main(int argc, char **argv) {
  std::string ManifestPath, StatsJson, TraceOut;
  ServeOptions Opts;
  bool Stats = false;
  for (int I = 1; I < argc; ++I) {
    std::string_view A = argv[I];
    auto NextArg = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--manifest") {
      const char *F = NextArg();
      if (!F)
        return usage();
      ManifestPath = F;
    } else if (A == "--workers") {
      const char *N = NextArg();
      if (!N)
        return usage();
      Opts.Workers = static_cast<unsigned>(std::atoi(N));
      if (Opts.Workers == 0) {
        Opts.Workers = std::thread::hardware_concurrency();
        if (Opts.Workers == 0)
          Opts.Workers = 1;
      }
    } else if (A == "--no-shared-base") {
      Opts.SharedBase = false;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--stats-json") {
      const char *F = NextArg();
      if (!F)
        return usage();
      StatsJson = F;
    } else if (A == "--trace-out") {
      const char *F = NextArg();
      if (!F)
        return usage();
      TraceOut = F;
    } else if (A == "--dump-dir") {
      const char *F = NextArg();
      if (!F)
        return usage();
      Opts.DumpDir = F;
    } else if (A == "--stall-seconds") {
      const char *S = NextArg();
      if (!S)
        return usage();
      Opts.StallSeconds = std::atof(S);
      if (Opts.StallSeconds <= 0) {
        std::fprintf(stderr, "--stall-seconds %s: expected a positive "
                             "number of seconds\n",
                     S);
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (ManifestPath.empty())
    return usage();

  // Bundle manifests record how to rerun this exact service invocation.
  for (int I = 0; I < argc; ++I) {
    if (I)
      Opts.ReplayBase += ' ';
    Opts.ReplayBase += argv[I];
  }

  if (!TraceOut.empty()) {
#if SCAV_TRACE_COMPILED_IN
    support::TraceSink::get().enable();
#else
    std::fprintf(stderr,
                 "--trace-out: tracing compiled out (SCAV_TRACE_OFF); "
                 "writing an empty trace\n");
#endif
  } else if (std::optional<std::string> EnvOut = harness::traceOutFromEnv()) {
    TraceOut = *EnvOut;
  }

  Manifest M;
  std::string Error;
  if (!loadManifest(ManifestPath, M, Error)) {
    std::fprintf(stderr, "certgc_serve: %s: %s\n", ManifestPath.c_str(),
                 Error.c_str());
    return 2;
  }

  ServeReport Rep = runSessions(M, Opts);

  std::printf("%-4s %-8s %-6s %-7s %12s %10s %9s %12s\n", "#", "level",
              "eval", "result", "value", "steps", "secs", "p99-pause-us");
  for (const SessionResult &S : Rep.Sessions) {
    const SessionSpec &Spec = M.Sessions[S.Index];
    const auto &Hists = S.Metrics.histograms();
    auto HIt = Hists.find("machine.collect_pause_ns");
    double P99Us = HIt != Hists.end() && HIt->second.count()
                       ? HIt->second.percentile(99) / 1000.0
                       : 0;
    std::printf("%-4zu %-8s %-6s %-7s %12lld %10llu %9.3f %12.1f\n", S.Index,
                levelName(Spec.Level), gc::evalModeName(Spec.Eval),
                S.Ok ? "ok" : "FAIL", static_cast<long long>(S.Value),
                static_cast<unsigned long long>(S.Steps), S.Seconds, P99Us);
    if (!S.Ok)
      std::printf("     error: %s\n", S.Error.c_str());
    if (!S.DumpPath.empty())
      std::printf("     dump: %s\n", S.DumpPath.c_str());
  }
  std::printf("%zu sessions on %u workers in %.3fs: %.1f sessions/sec, "
              "%.3g steps/sec aggregate%s\n",
              Rep.Sessions.size(), Rep.Workers, Rep.WallSeconds,
              Rep.WallSeconds > 0 ? Rep.Sessions.size() / Rep.WallSeconds : 0,
              Rep.WallSeconds > 0
                  ? Rep.Aggregate.gauge("serve.steps_per_sec")
                  : 0,
              Opts.SharedBase ? "" : " (private contexts)");

  if (!TraceOut.empty() &&
      !support::TraceSink::get().writeChromeJson(TraceOut))
    std::fprintf(stderr, "cannot write %s\n", TraceOut.c_str());
  if (!StatsJson.empty())
    support::writeFile(StatsJson, support::writeMetricsJson(Rep.Aggregate));
  if (Stats)
    std::fputs(support::writeMetricsText(Rep.Aggregate).c_str(), stderr);

  return Rep.AllOk ? 0 : 1;
}
