//===- clos/Clos.cpp - λCLOS typechecker, evaluator, printer ---------------===//

#include "clos/Clos.h"

#include <functional>

using namespace scav;
using namespace scav::clos;

static const char *primOpNameOf(lambda::PrimOp P) {
  switch (P) {
  case lambda::PrimOp::Add:
    return "+";
  case lambda::PrimOp::Sub:
    return "-";
  case lambda::PrimOp::Mul:
    return "*";
  case lambda::PrimOp::Le:
    return "<=";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Typechecker
//===----------------------------------------------------------------------===//

const Tag *scav::clos::typeOfVal(ClosContext &C, const Val *V,
                                 const gc::TagEnv &Theta,
                                 const std::map<Symbol, const Tag *> &Gamma,
                                 const std::map<Symbol, const Tag *> &FunTys,
                                 DiagEngine &Diags) {
  GcContext &GC = C.gcContext();
  auto FailT = [&](const std::string &Msg) -> const Tag * {
    Diags.error(Msg);
    return nullptr;
  };
  switch (V->kind()) {
  case ValKind::Int:
    return GC.tagInt();
  case ValKind::Var: {
    auto It = Gamma.find(V->var());
    if (It == Gamma.end())
      return FailT("unbound variable " + std::string(C.name(V->var())));
    return It->second;
  }
  case ValKind::FunName: {
    auto It = FunTys.find(V->var());
    if (It == FunTys.end())
      return FailT("unknown function " + std::string(C.name(V->var())));
    return It->second;
  }
  case ValKind::Pair: {
    const Tag *L = typeOfVal(C, V->first(), Theta, Gamma, FunTys, Diags);
    const Tag *R = typeOfVal(C, V->second(), Theta, Gamma, FunTys, Diags);
    if (!L || !R)
      return nullptr;
    return GC.tagProd(L, R);
  }
  case ValKind::Pack: {
    const gc::Kind *K = gc::kindOfTag(GC, V->witness(), Theta);
    if (!K || !K->isOmega())
      return FailT("ill-formed witness tag in package");
    const Tag *Want = gc::substTag(GC, V->bodyType(), V->var(), V->witness());
    const Tag *Got = typeOfVal(C, V->payload(), Theta, Gamma, FunTys, Diags);
    if (!Got)
      return nullptr;
    if (!gc::tagEqual(GC, Got, Want))
      return FailT("package payload type mismatch: got " +
                   gc::printTag(GC, Got) + ", want " + gc::printTag(GC, Want));
    return GC.tagExists(V->var(), V->bodyType());
  }
  }
  return nullptr;
}

namespace {

struct Checker {
  ClosContext &C;
  GcContext &GC;
  DiagEngine &Diags;
  std::map<Symbol, const Tag *> FunTys; // f ↦ τ→0 (unary arrow tag)

  bool fail(const std::string &Msg) {
    Diags.error(Msg);
    return false;
  }

  bool tagWf(const Tag *T, const gc::TagEnv &Theta) {
    const gc::Kind *K = gc::kindOfTag(GC, T, Theta);
    return K && K->isOmega();
  }

  const Tag *typeOfVal(const Val *V, const gc::TagEnv &Theta,
                       const std::map<Symbol, const Tag *> &Gamma) {
    return clos::typeOfVal(C, V, Theta, Gamma, FunTys, Diags);
  }

  bool checkExp(const Exp *E, gc::TagEnv Theta,
                std::map<Symbol, const Tag *> Gamma) {
    for (const Exp *Cur = E;;) {
      switch (Cur->kind()) {
      case ExpKind::LetVal: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T)
          return false;
        Gamma[Cur->binder()] = T;
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::LetProj1:
      case ExpKind::LetProj2: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T)
          return false;
        const Tag *N = gc::normalizeTag(GC, T);
        if (!N->is(gc::TagKind::Prod))
          return fail("projection from non-pair of type " +
                      gc::printTag(GC, N));
        Gamma[Cur->binder()] =
            Cur->is(ExpKind::LetProj1) ? N->left() : N->right();
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::LetPrim: {
        const Tag *L = typeOfVal(Cur->val1(), Theta, Gamma);
        const Tag *R = typeOfVal(Cur->val2(), Theta, Gamma);
        if (!L || !R)
          return false;
        if (!gc::tagEqual(GC, L, GC.tagInt()) ||
            !gc::tagEqual(GC, R, GC.tagInt()))
          return fail("primitive operands must be Int");
        Gamma[Cur->binder()] = GC.tagInt();
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::App: {
        const Tag *F = typeOfVal(Cur->val1(), Theta, Gamma);
        const Tag *A = typeOfVal(Cur->val2(), Theta, Gamma);
        if (!F || !A)
          return false;
        const Tag *N = gc::normalizeTag(GC, F);
        if (!N->is(gc::TagKind::Arrow) || N->arrowArgs().size() != 1)
          return fail("application of non-function of type " +
                      gc::printTag(GC, N));
        if (!gc::tagEqual(GC, A, N->arrowArgs()[0]))
          return fail("application argument type mismatch: got " +
                      gc::printTag(GC, A) + ", want " +
                      gc::printTag(GC, N->arrowArgs()[0]));
        return true;
      }
      case ExpKind::Open: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T)
          return false;
        const Tag *N = gc::normalizeTag(GC, T);
        if (!N->is(gc::TagKind::Exists))
          return fail("open of non-existential of type " +
                      gc::printTag(GC, N));
        Theta[Cur->tagBinder()] = GC.omega();
        Gamma[Cur->binder()] = gc::substTag(GC, N->body(), N->var(),
                                            GC.tagVar(Cur->tagBinder()));
        Cur = Cur->sub1();
        continue;
      }
      case ExpKind::Halt: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T)
          return false;
        if (!gc::tagEqual(GC, T, GC.tagInt()))
          return fail("halt value must be Int");
        return true;
      }
      case ExpKind::If0: {
        const Tag *T = typeOfVal(Cur->val1(), Theta, Gamma);
        if (!T)
          return false;
        if (!gc::tagEqual(GC, T, GC.tagInt()))
          return fail("if0 scrutinee must be Int");
        if (!checkExp(Cur->sub1(), Theta, Gamma))
          return false;
        Cur = Cur->sub2();
        continue;
      }
      }
      return false;
    }
  }
};

} // namespace

bool scav::clos::typeCheckProgram(ClosContext &C, const Program &P,
                                  DiagEngine &Diags) {
  Checker Ck{C, C.gcContext(), Diags, {}};
  GcContext &GC = C.gcContext();
  for (const FunDef &F : P.Funs)
    Ck.FunTys[F.Name] = GC.tagArrow({F.ParamTy});
  for (const FunDef &F : P.Funs) {
    gc::TagEnv Theta;
    std::map<Symbol, const Tag *> Gamma;
    if (!Ck.tagWf(F.ParamTy, Theta)) {
      Diags.error("ill-formed parameter type for function " +
                  std::string(C.name(F.Name)));
      return false;
    }
    Gamma[F.Param] = F.ParamTy;
    if (!Ck.checkExp(F.Body, Theta, Gamma)) {
      Diags.error("in function " + std::string(C.name(F.Name)));
      return false;
    }
  }
  return Ck.checkExp(P.Main, {}, {});
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

namespace {

struct ClosRt;
using ClosRef = std::shared_ptr<ClosRt>;

struct ClosRt {
  enum class Kind { Int, Pair, Pack, Fun } K;
  int64_t N = 0;
  ClosRef A, B;
  Symbol Fun;
};

} // namespace

ClosEvalResult scav::clos::evaluate(const ClosContext &C, const Program &P,
                                    uint64_t Fuel) {
  ClosEvalResult Res;
  std::map<Symbol, const FunDef *> Funs;
  for (const FunDef &F : P.Funs)
    Funs[F.Name] = &F;

  std::map<Symbol, ClosRef> Env;
  const Exp *E = P.Main;

  auto Fail = [&](const std::string &Msg) {
    Res.Ok = false;
    Res.Error = Msg;
    return Res;
  };

  std::function<ClosRef(const Val *)> Atom = [&](const Val *V) -> ClosRef {
    switch (V->kind()) {
    case ValKind::Int: {
      auto R = std::make_shared<ClosRt>();
      R->K = ClosRt::Kind::Int;
      R->N = V->intValue();
      return R;
    }
    case ValKind::Var: {
      auto It = Env.find(V->var());
      return It == Env.end() ? nullptr : It->second;
    }
    case ValKind::FunName: {
      auto R = std::make_shared<ClosRt>();
      R->K = ClosRt::Kind::Fun;
      R->Fun = V->var();
      return R;
    }
    case ValKind::Pair: {
      ClosRef L = Atom(V->first()), Rr = Atom(V->second());
      if (!L || !Rr)
        return nullptr;
      auto R = std::make_shared<ClosRt>();
      R->K = ClosRt::Kind::Pair;
      R->A = L;
      R->B = Rr;
      ++Res.PairAllocs;
      return R;
    }
    case ValKind::Pack: {
      ClosRef Pl = Atom(V->payload());
      if (!Pl)
        return nullptr;
      auto R = std::make_shared<ClosRt>();
      R->K = ClosRt::Kind::Pack;
      R->A = Pl;
      ++Res.PairAllocs;
      return R;
    }
    }
    return nullptr;
  };

  for (uint64_t Step = 0;; ++Step) {
    if (Step > Fuel)
      return Fail("out of fuel");
    ++Res.Steps;
    switch (E->kind()) {
    case ExpKind::LetVal: {
      ClosRef V = Atom(E->val1());
      if (!V)
        return Fail("unbound variable");
      Env[E->binder()] = V;
      E = E->sub1();
      break;
    }
    case ExpKind::LetProj1:
    case ExpKind::LetProj2: {
      ClosRef P2 = Atom(E->val1());
      if (!P2 || P2->K != ClosRt::Kind::Pair)
        return Fail("projection from non-pair");
      Env[E->binder()] = E->is(ExpKind::LetProj1) ? P2->A : P2->B;
      E = E->sub1();
      break;
    }
    case ExpKind::LetPrim: {
      ClosRef L = Atom(E->val1()), R = Atom(E->val2());
      if (!L || !R || L->K != ClosRt::Kind::Int || R->K != ClosRt::Kind::Int)
        return Fail("primitive on non-integers");
      auto V = std::make_shared<ClosRt>();
      V->K = ClosRt::Kind::Int;
      switch (E->primOp()) {
      case lambda::PrimOp::Add:
        V->N = L->N + R->N;
        break;
      case lambda::PrimOp::Sub:
        V->N = L->N - R->N;
        break;
      case lambda::PrimOp::Mul:
        V->N = L->N * R->N;
        break;
      case lambda::PrimOp::Le:
        V->N = L->N <= R->N ? 1 : 0;
        break;
      }
      Env[E->binder()] = V;
      E = E->sub1();
      break;
    }
    case ExpKind::App: {
      ClosRef F = Atom(E->val1());
      ClosRef A = Atom(E->val2());
      if (!F || !A)
        return Fail("unbound value in application");
      if (F->K != ClosRt::Kind::Fun)
        return Fail("application of non-function");
      auto It = Funs.find(F->Fun);
      if (It == Funs.end())
        return Fail("unknown function");
      Env.clear(); // letrec functions are closed
      Env[It->second->Param] = A;
      E = It->second->Body;
      break;
    }
    case ExpKind::Open: {
      ClosRef V = Atom(E->val1());
      if (!V || V->K != ClosRt::Kind::Pack)
        return Fail("open of non-package");
      Env[E->binder()] = V->A;
      E = E->sub1();
      break;
    }
    case ExpKind::Halt: {
      ClosRef V = Atom(E->val1());
      if (!V || V->K != ClosRt::Kind::Int)
        return Fail("halt of non-integer");
      Res.Ok = true;
      Res.Value = V->N;
      return Res;
    }
    case ExpKind::If0: {
      ClosRef V = Atom(E->val1());
      if (!V || V->K != ClosRt::Kind::Int)
        return Fail("if0 of non-integer");
      E = V->N == 0 ? E->sub1() : E->sub2();
      break;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string scav::clos::printVal(const ClosContext &C, const Val *V) {
  const GcContext &GC = const_cast<ClosContext &>(C).gcContext();
  switch (V->kind()) {
  case ValKind::Int:
    return std::to_string(V->intValue());
  case ValKind::Var:
    return std::string(C.name(V->var()));
  case ValKind::FunName:
    return "@" + std::string(C.name(V->var()));
  case ValKind::Pair:
    return "(" + printVal(C, V->first()) + ", " + printVal(C, V->second()) +
           ")";
  case ValKind::Pack:
    return "pack<" + std::string(C.name(V->var())) + " = " +
           gc::printTag(GC, V->witness()) + ", " + printVal(C, V->payload()) +
           ">";
  }
  return "?";
}

std::string scav::clos::printExp(const ClosContext &C, const Exp *E) {
  switch (E->kind()) {
  case ExpKind::LetVal:
    return "let " + std::string(C.name(E->binder())) + " = " +
           printVal(C, E->val1()) + " in\n" + printExp(C, E->sub1());
  case ExpKind::LetProj1:
  case ExpKind::LetProj2:
    return "let " + std::string(C.name(E->binder())) + " = pi" +
           (E->is(ExpKind::LetProj1) ? "1 " : "2 ") + printVal(C, E->val1()) +
           " in\n" + printExp(C, E->sub1());
  case ExpKind::LetPrim:
    return "let " + std::string(C.name(E->binder())) + " = " +
           printVal(C, E->val1()) + " " + primOpNameOf(E->primOp()) + " " +
           printVal(C, E->val2()) + " in\n" + printExp(C, E->sub1());
  case ExpKind::App:
    return printVal(C, E->val1()) + "(" + printVal(C, E->val2()) + ")";
  case ExpKind::Open:
    return "open " + printVal(C, E->val1()) + " as <" +
           std::string(C.name(E->tagBinder())) + ", " +
           std::string(C.name(E->binder())) + "> in\n" +
           printExp(C, E->sub1());
  case ExpKind::Halt:
    return "halt " + printVal(C, E->val1());
  case ExpKind::If0:
    return "if0 " + printVal(C, E->val1()) + " then " +
           printExp(C, E->sub1()) + " else " + printExp(C, E->sub2());
  }
  return "?";
}

std::string scav::clos::printProgram(const ClosContext &C, const Program &P) {
  const GcContext &GC = const_cast<ClosContext &>(C).gcContext();
  std::string Out;
  for (const FunDef &F : P.Funs) {
    Out += "letrec " + std::string(C.name(F.Name)) + " = \\(" +
           std::string(C.name(F.Param)) + " : " +
           gc::printTag(GC, F.ParamTy) + ").\n" + printExp(C, F.Body) +
           "\n\n";
  }
  Out += "in\n" + printExp(C, P.Main) + "\n";
  return Out;
}
