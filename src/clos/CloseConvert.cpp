//===- clos/CloseConvert.cpp - Typed closure conversion (§3) ---------------===//
///
/// \file
/// Typed closure conversion from the CPS IR into λCLOS, representing
/// closures as existential packages [Minamide–Morrisett–Harper], which is
/// what makes the paper's library GC possible without whole-program
/// analysis (§2.1): the collector traces a closure through the ∃, never
/// needing to know its environment type.
///
/// Every CPS λ is lifted to a top-level letrec function over one parameter
///   p : envTy × argsTy
/// (environments and multi-argument lists are right-nested pairs). A
/// recursive λ (from source `fix`) rebuilds its own closure package from
/// the environment.
///
//===----------------------------------------------------------------------===//

#include "clos/Clos.h"

#include <algorithm>
#include <set>

using namespace scav;
using namespace scav::clos;

const Tag *scav::clos::ccType(ClosContext &C, const cps::Type *T) {
  GcContext &GC = C.gcContext();
  switch (T->kind()) {
  case cps::TypeKind::Int:
    return GC.tagInt();
  case cps::TypeKind::Prod:
    return GC.tagProd(ccType(C, T->left()), ccType(C, T->right()));
  case cps::TypeKind::Code: {
    // ∃t.((t × argsTy) → 0 × t)
    std::vector<const Tag *> Args;
    for (const cps::Type *P : T->params())
      Args.push_back(ccType(C, P));
    const Tag *ArgsTy = nullptr;
    if (Args.empty()) {
      ArgsTy = GC.tagInt();
    } else {
      ArgsTy = Args.back();
      for (size_t I = Args.size() - 1; I-- > 0;)
        ArgsTy = GC.tagProd(Args[I], ArgsTy);
    }
    Symbol TV = GC.fresh("tenv");
    const Tag *CodeTy =
        GC.tagArrow({GC.tagProd(GC.tagVar(TV), ArgsTy)});
    return GC.tagExists(TV, GC.tagProd(CodeTy, GC.tagVar(TV)));
  }
  }
  return nullptr;
}

namespace {

using cps::Exp;
using cps::ExpKind;
using cps::Val;
using cps::ValKind;

/// Free variables of CPS terms (order-stable: sorted by symbol id).
void freeVarsVal(const Val *V, std::set<Symbol> &Bound,
                 std::set<Symbol> &Out);

void freeVarsExp(const Exp *E, std::set<Symbol> &Bound,
                 std::set<Symbol> &Out) {
  switch (E->kind()) {
  case ExpKind::LetVal:
    freeVarsVal(E->val1(), Bound, Out);
    break;
  case ExpKind::LetPair:
  case ExpKind::LetPrim:
    freeVarsVal(E->val1(), Bound, Out);
    freeVarsVal(E->val2(), Bound, Out);
    break;
  case ExpKind::LetProj1:
  case ExpKind::LetProj2:
    freeVarsVal(E->val1(), Bound, Out);
    break;
  case ExpKind::App:
    freeVarsVal(E->val1(), Bound, Out);
    for (const Val *A : E->appArgs())
      freeVarsVal(A, Bound, Out);
    return;
  case ExpKind::If0: {
    freeVarsVal(E->val1(), Bound, Out);
    freeVarsExp(E->sub1(), Bound, Out);
    freeVarsExp(E->sub2(), Bound, Out);
    return;
  }
  case ExpKind::Halt:
    freeVarsVal(E->val1(), Bound, Out);
    return;
  }
  // Let-forms fall through here: bind then continue.
  bool Inserted = Bound.insert(E->binder()).second;
  freeVarsExp(E->sub1(), Bound, Out);
  if (Inserted)
    Bound.erase(E->binder());
}

void freeVarsVal(const Val *V, std::set<Symbol> &Bound,
                 std::set<Symbol> &Out) {
  switch (V->kind()) {
  case ValKind::Int:
    return;
  case ValKind::Var:
    if (!Bound.count(V->var()))
      Out.insert(V->var());
    return;
  case ValKind::Lam: {
    std::set<Symbol> Inner = Bound;
    if (V->self().isValid())
      Inner.insert(V->self());
    for (Symbol P : V->params())
      Inner.insert(P);
    freeVarsExp(V->body(), Inner, Out);
    return;
  }
  }
}

struct CCDriver {
  cps::CpsContext &CC;
  ClosContext &C;
  GcContext &GC;
  DiagEngine &Diags;
  std::vector<FunDef> Funs;
  bool Failed = false;

  const clos::Exp *fail(const std::string &Msg) {
    if (!Failed)
      Diags.error(Msg);
    Failed = true;
    return C.halt(C.intLit(0));
  }

  /// Right-nested tuple of tags; empty ↦ Int (dummy environment slot).
  const Tag *tuple(const std::vector<const Tag *> &Ts) {
    if (Ts.empty())
      return GC.tagInt();
    const Tag *Out = Ts.back();
    for (size_t I = Ts.size() - 1; I-- > 0;)
      Out = GC.tagProd(Ts[I], Out);
    return Out;
  }

  /// The args part of a closure's parameter for the given CPS code type.
  const Tag *argsTuple(const cps::Type *CodeTy) {
    std::vector<const Tag *> Args;
    for (const cps::Type *P : CodeTy->params())
      Args.push_back(ccType(C, P));
    return tuple(Args);
  }

  /// Converts a CPS λ: lifts it to a letrec function and returns the
  /// closure package value (built in the *current* scope).
  const clos::Val *convertLam(const Val *Lam, const cps::TypeEnv &Env) {
    // Free variables, deterministic order.
    std::set<Symbol> Bound, FreeSet;
    freeVarsVal(Lam, Bound, FreeSet);
    std::vector<Symbol> Frees(FreeSet.begin(), FreeSet.end());

    std::vector<const Tag *> FreeTys;
    for (Symbol Y : Frees) {
      auto It = Env.find(Y);
      if (It == Env.end()) {
        fail("free variable of lambda missing from environment");
        return C.intLit(0);
      }
      FreeTys.push_back(ccType(C, It->second));
    }
    const Tag *EnvTy = tuple(FreeTys);

    const cps::Type *CodeTy = CC.tyCode(Lam->paramTypes());
    const Tag *ArgsTy = argsTuple(CodeTy);
    const Tag *ParamTy = GC.tagProd(EnvTy, ArgsTy);

    // Code body: destructure (env, args), rebuild self if recursive,
    // then convert the λ body.
    Symbol FName = GC.fresh("fn");
    Symbol P = GC.fresh("p");

    cps::TypeEnv InnerEnv;
    for (size_t I = 0, N = Frees.size(); I != N; ++I)
      InnerEnv[Frees[I]] = Env.at(Frees[I]);
    for (size_t I = 0, N = Lam->params().size(); I != N; ++I)
      InnerEnv[Lam->params()[I]] = Lam->paramTypes()[I];
    if (Lam->self().isValid())
      InnerEnv[Lam->self()] = CodeTy;

    const clos::Exp *Body = convertExp(Lam->body(), InnerEnv);

    // Bind self closure (if any): rebuild the package from the env tuple.
    if (Lam->self().isValid()) {
      const clos::Val *EnvTuple = tupleVal(Frees);
      Body = C.letVal(Lam->self(), closureValue(FName, EnvTy, ArgsTy,
                                                EnvTuple),
                      Body);
    }
    // Bind parameters from the args tuple.
    Symbol ArgsVar = GC.fresh("args");
    Body = destructure(ArgsVar, Lam->params(), Body);
    // Bind free variables from the env tuple.
    Symbol EnvVar = GC.fresh("env");
    Body = destructure(EnvVar, Frees, Body);
    Body = C.letProj(ArgsVar, 2, C.var(P), Body);
    Body = C.letProj(EnvVar, 1, C.var(P), Body);

    Funs.push_back(FunDef{FName, P, ParamTy, Body});

    // The closure package at the use site.
    return closureValue(FName, EnvTy, ArgsTy, tupleVal(Frees));
  }

  /// Binds each name in \p Names from the right-nested tuple rooted at
  /// \p TupleVar, in front of \p Body.
  const clos::Exp *destructure(Symbol TupleVar, std::vector<Symbol> Names,
                               const clos::Exp *Body) {
    if (Names.empty())
      return Body;
    if (Names.size() == 1)
      return C.letVal(Names[0], C.var(TupleVar), Body);
    // names[0] = π1 t; rest from π2 t.
    Symbol Rest = GC.fresh("rest");
    std::vector<Symbol> Tail(Names.begin() + 1, Names.end());
    const clos::Exp *Inner = destructure(Rest, Tail, Body);
    Inner = C.letProj(Rest, 2, C.var(TupleVar), Inner);
    return C.letProj(Names[0], 1, C.var(TupleVar), Inner);
  }

  /// The right-nested tuple *value* of the given variables.
  const clos::Val *tupleVal(const std::vector<Symbol> &Names) {
    if (Names.empty())
      return C.intLit(0);
    const clos::Val *Out = C.var(Names.back());
    for (size_t I = Names.size() - 1; I-- > 0;)
      Out = C.pair(C.var(Names[I]), Out);
    return Out;
  }

  /// ⟨t = EnvTy, (f, env) : ((t × ArgsTy) → 0) × t⟩.
  const clos::Val *closureValue(Symbol FName, const Tag *EnvTy,
                                const Tag *ArgsTy, const clos::Val *EnvVal) {
    Symbol TV = GC.fresh("tenv");
    const Tag *CodeTy = GC.tagArrow({GC.tagProd(GC.tagVar(TV), ArgsTy)});
    const Tag *BodyTy = GC.tagProd(CodeTy, GC.tagVar(TV));
    return C.pack(TV, EnvTy, C.pair(C.funName(FName), EnvVal), BodyTy);
  }

  const clos::Val *atom(const Val *V, const cps::TypeEnv &Env) {
    switch (V->kind()) {
    case ValKind::Int:
      return C.intLit(V->intValue());
    case ValKind::Var:
      return C.var(V->var());
    case ValKind::Lam:
      return convertLam(V, Env);
    }
    return C.intLit(0);
  }

  const cps::Type *typeOfAtom(const Val *V, const cps::TypeEnv &Env) {
    DiagEngine Scratch;
    return cps::typeOfVal(CC, V, Env, Scratch);
  }

  const clos::Exp *convertExp(const Exp *E, cps::TypeEnv Env) {
    switch (E->kind()) {
    case ExpKind::LetVal: {
      const cps::Type *T = typeOfAtom(E->val1(), Env);
      if (!T)
        return fail("CPS value does not typecheck during closure conversion");
      const clos::Val *V = atom(E->val1(), Env);
      Env[E->binder()] = T;
      return C.letVal(E->binder(), V, convertExp(E->sub1(), Env));
    }
    case ExpKind::LetPair: {
      const cps::Type *L = typeOfAtom(E->val1(), Env);
      const cps::Type *R = typeOfAtom(E->val2(), Env);
      if (!L || !R)
        return fail("CPS pair does not typecheck");
      const clos::Val *V = C.pair(atom(E->val1(), Env), atom(E->val2(), Env));
      Env[E->binder()] = CC.tyProd(L, R);
      return C.letVal(E->binder(), V, convertExp(E->sub1(), Env));
    }
    case ExpKind::LetProj1:
    case ExpKind::LetProj2: {
      const cps::Type *T = typeOfAtom(E->val1(), Env);
      if (!T || !T->is(cps::TypeKind::Prod))
        return fail("CPS projection from non-pair");
      bool First = E->is(ExpKind::LetProj1);
      Env[E->binder()] = First ? T->left() : T->right();
      return C.letProj(E->binder(), First ? 1 : 2, atom(E->val1(), Env),
                       convertExp(E->sub1(), Env));
    }
    case ExpKind::LetPrim: {
      Env[E->binder()] = CC.tyInt();
      return C.letPrim(E->binder(), E->primOp(), atom(E->val1(), Env),
                       atom(E->val2(), Env), convertExp(E->sub1(), Env));
    }
    case ExpKind::App: {
      const cps::Type *FTy = typeOfAtom(E->val1(), Env);
      if (!FTy || !FTy->is(cps::TypeKind::Code))
        return fail("CPS application of non-code value");
      const clos::Val *F = atom(E->val1(), Env);
      // Build the argument tuple.
      const clos::Val *Args = nullptr;
      if (E->appArgs().empty()) {
        Args = C.intLit(0);
      } else {
        Args = atom(E->appArgs().back(), Env);
        for (size_t I = E->appArgs().size() - 1; I-- > 0;)
          Args = C.pair(atom(E->appArgs()[I], Env), Args);
      }
      // open f as ⟨t, p⟩ in let cd = π1 p in let env = π2 p in
      // cd((env, args))
      Symbol TV = GC.fresh("t");
      Symbol PV = GC.fresh("clo");
      Symbol CdV = GC.fresh("code");
      Symbol EnvV = GC.fresh("env");
      const clos::Exp *Call =
          C.app(C.var(CdV), C.pair(C.var(EnvV), Args));
      const clos::Exp *Body = C.letProj(
          CdV, 1, C.var(PV), C.letProj(EnvV, 2, C.var(PV), Call));
      return C.open(F, TV, PV, Body);
    }
    case ExpKind::If0:
      return C.if0(atom(E->val1(), Env), convertExp(E->sub1(), Env),
                   convertExp(E->sub2(), Env));
    case ExpKind::Halt:
      return C.halt(atom(E->val1(), Env));
    }
    return fail("unknown CPS expression kind");
  }
};

} // namespace

bool scav::clos::closureConvert(cps::CpsContext &CC, ClosContext &C,
                                const cps::Exp *E, Program &Out,
                                DiagEngine &Diags) {
  // The input must be well-typed CPS.
  cps::TypeEnv Empty;
  if (!cps::checkExp(CC, E, Empty, Diags))
    return false;
  CCDriver D{CC, C, C.gcContext(), Diags, {}, false};
  const clos::Exp *Main = D.convertExp(E, {});
  if (D.Failed)
    return false;
  Out.Funs = std::move(D.Funs);
  Out.Main = Main;
  return true;
}
