//===- clos/Clos.h - λCLOS: the closure-converted language (§3) -*- C++ -*-===//
///
/// \file
/// λCLOS, the paper's §3 language: CPS + closure-converted simply typed
/// λ-calculus, extended (like every layer here) with integer primitives and
/// if0.
///
///   τ ::= Int | t | τ1 × τ2 | τ → 0 | ∃t.τ
///   v ::= n | f | x | (v1, v2) | ⟨t = τ1, v : τ2⟩
///   e ::= let x = v in e | let x = πi v in e | v1(v2)
///       | open v as ⟨t, x⟩ in e | halt v
///       | let x = v1 ⊕ v2 in e | if0 v e1 e2
///   p ::= letrec ~f = λ(x:τ).e in e
///
/// λCLOS types coincide exactly with λGC *tags* (Fig 3 translates them
/// verbatim), so we represent them as gc::Tag and reuse the gc kinding,
/// substitution, and alpha-equality machinery. Functions are unary; CPS
/// functions take their (argument, continuation) as a pair.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_CLOS_CLOS_H
#define SCAV_CLOS_CLOS_H

#include "cps/Cps.h"
#include "gc/Ops.h"

#include <map>
#include <string>
#include <vector>

namespace scav::clos {

using scav::Symbol;
using gc::GcContext;
using gc::Tag;

enum class ValKind { Int, Var, FunName, Pair, Pack };

class Val {
public:
  ValKind kind() const { return K; }
  bool is(ValKind Which) const { return K == Which; }

  int64_t intValue() const {
    assert(K == ValKind::Int && "not an int");
    return N;
  }
  /// Var: x. FunName: f. Pack: the bound tag variable t.
  Symbol var() const { return X; }

  const Val *first() const {
    assert(K == ValKind::Pair && "not a pair");
    return A;
  }
  const Val *second() const {
    assert(K == ValKind::Pair && "not a pair");
    return B;
  }

  /// Pack ⟨t = τ1, v : τ2⟩.
  const Tag *witness() const {
    assert(K == ValKind::Pack && "not a package");
    return W;
  }
  const Val *payload() const {
    assert(K == ValKind::Pack && "not a package");
    return A;
  }
  const Tag *bodyType() const {
    assert(K == ValKind::Pack && "not a package");
    return BT;
  }

private:
  friend class ClosContext;
  Val(ValKind K) : K(K) {}
  ValKind K;
  int64_t N = 0;
  Symbol X;
  const Val *A = nullptr;
  const Val *B = nullptr;
  const Tag *W = nullptr;
  const Tag *BT = nullptr;
};

enum class ExpKind { LetVal, LetProj1, LetProj2, App, Open, Halt, LetPrim,
                     If0 };

class Exp {
public:
  ExpKind kind() const { return K; }
  bool is(ExpKind Which) const { return K == Which; }

  Symbol binder() const { return X1; }
  /// Open: the bound tag variable; the value variable is binder().
  Symbol tagBinder() const { return X2; }
  const Val *val1() const { return V1; }
  const Val *val2() const { return V2; }
  lambda::PrimOp primOp() const { return P; }
  const Exp *sub1() const { return E1; }
  const Exp *sub2() const { return E2; }

private:
  friend class ClosContext;
  Exp(ExpKind K) : K(K) {}
  ExpKind K;
  Symbol X1;
  Symbol X2;
  const Val *V1 = nullptr;
  const Val *V2 = nullptr;
  lambda::PrimOp P = lambda::PrimOp::Add;
  const Exp *E1 = nullptr;
  const Exp *E2 = nullptr;
};

/// A top-level letrec function f = λ(x:τ).e.
struct FunDef {
  Symbol Name;
  Symbol Param;
  const Tag *ParamTy;
  const Exp *Body;
};

/// A λCLOS program: letrec ~f in main.
struct Program {
  std::vector<FunDef> Funs;
  const Exp *Main = nullptr;
};

/// Owns λCLOS expression nodes; tags live in the shared GcContext.
class ClosContext {
public:
  explicit ClosContext(GcContext &GC) : GC(GC) {}
  ClosContext(const ClosContext &) = delete;
  ClosContext &operator=(const ClosContext &) = delete;

  GcContext &gcContext() { return GC; }
  Symbol intern(std::string_view S) { return GC.intern(S); }
  Symbol fresh(std::string_view S) { return GC.fresh(S); }
  std::string_view name(Symbol S) const { return GC.name(S); }

  const Val *intLit(int64_t N) {
    Val *V = alloc(ValKind::Int);
    V->N = N;
    return V;
  }
  const Val *var(Symbol S) {
    Val *V = alloc(ValKind::Var);
    V->X = S;
    return V;
  }
  const Val *funName(Symbol S) {
    Val *V = alloc(ValKind::FunName);
    V->X = S;
    return V;
  }
  const Val *pair(const Val *L, const Val *R) {
    Val *V = alloc(ValKind::Pair);
    V->A = L;
    V->B = R;
    return V;
  }
  const Val *pack(Symbol TVar, const Tag *Witness, const Val *Payload,
                  const Tag *BodyTy) {
    Val *V = alloc(ValKind::Pack);
    V->X = TVar;
    V->W = Witness;
    V->A = Payload;
    V->BT = BodyTy;
    return V;
  }

  const Exp *letVal(Symbol X, const Val *V, const Exp *Body) {
    Exp *E = alloc(ExpKind::LetVal);
    E->X1 = X;
    E->V1 = V;
    E->E1 = Body;
    return E;
  }
  const Exp *letProj(Symbol X, unsigned Index, const Val *V,
                     const Exp *Body) {
    assert((Index == 1 || Index == 2) && "bad projection index");
    Exp *E = alloc(Index == 1 ? ExpKind::LetProj1 : ExpKind::LetProj2);
    E->X1 = X;
    E->V1 = V;
    E->E1 = Body;
    return E;
  }
  const Exp *app(const Val *F, const Val *Arg) {
    Exp *E = alloc(ExpKind::App);
    E->V1 = F;
    E->V2 = Arg;
    return E;
  }
  const Exp *open(const Val *V, Symbol TVar, Symbol XVar, const Exp *Body) {
    Exp *E = alloc(ExpKind::Open);
    E->V1 = V;
    E->X2 = TVar;
    E->X1 = XVar;
    E->E1 = Body;
    return E;
  }
  const Exp *halt(const Val *V) {
    Exp *E = alloc(ExpKind::Halt);
    E->V1 = V;
    return E;
  }
  const Exp *letPrim(Symbol X, lambda::PrimOp P, const Val *L, const Val *R,
                     const Exp *Body) {
    Exp *E = alloc(ExpKind::LetPrim);
    E->X1 = X;
    E->P = P;
    E->V1 = L;
    E->V2 = R;
    E->E1 = Body;
    return E;
  }
  const Exp *if0(const Val *Scrut, const Exp *Zero, const Exp *NonZero) {
    Exp *E = alloc(ExpKind::If0);
    E->V1 = Scrut;
    E->E1 = Zero;
    E->E2 = NonZero;
    return E;
  }

private:
  Val *alloc(ValKind K) { return Alloc.create<Val>(Val(K)); }
  Exp *alloc(ExpKind K) { return Alloc.create<Exp>(Exp(K)); }

  GcContext &GC;
  Arena Alloc;
};

//===----------------------------------------------------------------------===//
// Typechecker (§3)
//===----------------------------------------------------------------------===//

/// Checks a whole program: every letrec function body and the main term.
bool typeCheckProgram(ClosContext &C, const Program &P, DiagEngine &Diags);

/// Infers the λCLOS type (= λGC tag) of a value. \p FunTys maps letrec
/// function names to their (unary arrow) types. Used by the checker and by
/// the Fig 3 translator, which needs component types for its annotations.
const Tag *typeOfVal(ClosContext &C, const Val *V, const gc::TagEnv &Theta,
                     const std::map<Symbol, const Tag *> &Gamma,
                     const std::map<Symbol, const Tag *> &FunTys,
                     DiagEngine &Diags);

//===----------------------------------------------------------------------===//
// Evaluator (iterative tail-call machine)
//===----------------------------------------------------------------------===//

struct ClosEvalResult {
  bool Ok = false;
  int64_t Value = 0;
  std::string Error;
  uint64_t Steps = 0;
  uint64_t PairAllocs = 0; ///< Heap-cell proxy: pairs + packages created.
};

ClosEvalResult evaluate(const ClosContext &C, const Program &P,
                        uint64_t Fuel = 10'000'000);

//===----------------------------------------------------------------------===//
// Closure conversion from CPS (§3: closures become existential packages)
//===----------------------------------------------------------------------===//

/// Converts a closed, well-typed CPS program. Every λ is lifted to a
/// top-level letrec function taking (environment, arguments) as nested
/// pairs; the closure value is ⟨t = envTy, (f, env)⟩ : ∃t.((t × args) → 0
/// × t). Returns false + diagnostics on failure.
bool closureConvert(cps::CpsContext &CC, ClosContext &C, const cps::Exp *E,
                    Program &Out, DiagEngine &Diags);

/// The closure-conversion type translation, mapping CPS types to λCLOS
/// types (= λGC tags): ⟦(~T)→0⟧ = ∃t.((t × pairup(⟦~T⟧)) → 0 × t).
const Tag *ccType(ClosContext &C, const cps::Type *T);

std::string printVal(const ClosContext &C, const Val *V);
std::string printExp(const ClosContext &C, const Exp *E);
std::string printProgram(const ClosContext &C, const Program &P);

} // namespace scav::clos

#endif // SCAV_CLOS_CLOS_H
