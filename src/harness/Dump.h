//===- harness/Dump.h - Post-mortem dump bundles ----------------*- C++ -*-===//
///
/// \file
/// Crash-dump bundles (DESIGN.md §3.14). When a run fails — a state-checker
/// rejection, a stuck machine, or a serve-session stall — the harness
/// captures everything a post-mortem needs into one directory:
///
///   dump-<kind>-step<N>/
///     snapshot.scavsnap   versioned machine snapshot (gc/Snapshot.h)
///     MANIFEST.txt        kind, diagnostic, checker, level, layout, step,
///                         check options, replay command
///     trace_tail.txt      last trace-ring events (when tracing is on)
///     metrics.json        metrics registry at dump time (when provided)
///     replay.txt          the replay command line, alone, for scripting
///
/// `certgc_inspect` consumes these bundles offline.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_DUMP_H
#define SCAV_HARNESS_DUMP_H

#include "gc/Snapshot.h"
#include "support/Metrics.h"

#include <string>

namespace scav::harness {

/// What to record alongside the snapshot.
struct DumpInfo {
  /// Failure class: "check-failure", "stuck", "stall", "manual".
  std::string Kind;
  /// The live verdict/diagnostic text (empty for healthy snapshots).
  std::string Diagnostic;
  /// Which checker produced Diagnostic ("full", "incremental", "").
  std::string Checker;
  /// The live run's StateCheckOptions (recorded so the offline re-check
  /// runs under identical options).
  bool RestrictToReachable = false;
  bool CheckCodeRegion = false;
  /// Command line that reproduces the failing run (empty to omit).
  std::string ReplayCmd;
  /// Step count at dump time.
  uint64_t Step = 0;
  /// Metrics to dump as metrics.json (null to omit the file).
  const support::MetricsRegistry *Metrics = nullptr;
};

/// Writes a dump bundle for \p M under \p DumpDir (created if needed; the
/// bundle name is uniquified with a -2/-3... suffix on collision). Emits a
/// `dump` instant trace event. \returns the bundle directory path, or ""
/// on I/O failure (dumping is best-effort: failures are reported on stderr
/// but never abort the failing run's own error path).
std::string writeDumpBundle(const std::string &DumpDir, gc::Machine &M,
                            const DumpInfo &Info);

} // namespace scav::harness

#endif // SCAV_HARNESS_DUMP_H
