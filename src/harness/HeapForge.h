//===- harness/HeapForge.h - Direct heap construction -----------*- C++ -*-===//
///
/// \file
/// Builds mutator-view heap structures directly in a machine's memory,
/// bypassing the mutator. Used by the collector benchmarks, which want to
/// measure collection of an N-object heap without paying for the
/// interpreted mutator that would build it.
///
/// The workhorse encoding is the existential list
///
///   L = ∃u.(u × Int)
///
/// whose nodes all carry the *same* finite tag: node_i packs its tail (a
/// value of type M(L)) as the witness-typed payload, so arbitrarily long
/// lists have O(1) tag size. This is exactly the "recursion through the
/// witness" pattern that makes λCLOS closures (and hence this paper's GC
/// story) work without recursive types.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_HEAPFORGE_H
#define SCAV_HARNESS_HEAPFORGE_H

#include "gc/Machine.h"
#include "support/Rng.h"

namespace scav::harness {

struct ForgedHeap {
  const gc::Value *Root = nullptr; ///< Mutator-view root value.
  const gc::Tag *Tag = nullptr;    ///< Its λCLOS tag.
  size_t Cells = 0;                ///< Heap cells allocated.
};

/// The list tag L = ∃u.(u × Int).
const gc::Tag *listTag(gc::GcContext &C);

/// An existential list of \p N nodes in \p R (level-aware: adds the
/// forwarding bit / region packages as the machine's level demands).
/// \p Old is the old generation (Generational level only).
ForgedHeap forgeList(gc::Machine &M, gc::Region R, gc::Region Old, size_t N);

/// A complete binary tree of pairs of the given depth; with \p Share, the
/// two children of every node are the *same* object (a maximal DAG: D+1
/// cells describe 2^(D+1)-1 logical nodes).
ForgedHeap forgeTree(gc::Machine &M, gc::Region R, gc::Region Old,
                     unsigned Depth, bool Share);

/// A random heap: a DAG mixing pair and existential nodes with natural
/// sharing (children are drawn from already-built nodes). \p NodeBudget
/// bounds the number of heap cells.
ForgedHeap forgeRandom(gc::Machine &M, gc::Region R, gc::Region Old,
                       Rng &Rand, size_t NodeBudget);

/// Installs a trivial mutator function fin[][~r](x : M(τ)) = halt 0 that a
/// collector entry point can use as its return continuation.
gc::Address installFinisher(gc::Machine &M, const gc::Tag *Tau);

/// Like installFinisher, but the function first allocates (x, x) into its
/// region, so the post-collection root can be recovered from the last cell
/// of the surviving region (used by the differential oracle tests).
gc::Address installRootCapturingFinisher(gc::Machine &M, const gc::Tag *Tau);

/// Builds the term gc[τ][~r](fin, root) that runs one full collection of
/// the forged heap and halts.
const gc::Term *collectOnceTerm(gc::Machine &M, gc::Address GcAddr,
                                const ForgedHeap &H, gc::Region R,
                                gc::Region Old, gc::Address Finisher);

} // namespace scav::harness

#endif // SCAV_HARNESS_HEAPFORGE_H
