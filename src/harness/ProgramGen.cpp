//===- harness/ProgramGen.cpp - Random well-typed program generator --------===//

#include "harness/ProgramGen.h"

#include <vector>

using namespace scav;
using namespace scav::harness;
using namespace scav::lambda;

namespace {

/// In-scope variables with their types.
struct GenEnv {
  std::vector<std::pair<Symbol, const Type *>> Vars;

  std::vector<Symbol> ofType(const Type *T) const {
    std::vector<Symbol> Out;
    for (const auto &[S, Ty] : Vars)
      if (typeEqual(Ty, T))
        Out.push_back(S);
    return Out;
  }
};

struct Generator {
  LambdaContext &C;
  Rng &R;
  const GenOptions &Opts;

  /// A random type of bounded depth (Int-biased at the leaves).
  const Type *genType(unsigned Depth) {
    if (Depth == 0 || R.chance(1, 2))
      return C.tyInt();
    if (R.chance(1, 2))
      return C.tyProd(genType(Depth - 1), genType(Depth - 1));
    return C.tyArrow(genType(Depth - 1), genType(Depth - 1));
  }

  const Expr *gen(const Type *Want, unsigned Depth, const GenEnv &Env) {
    // Sometimes reuse a variable of the right type.
    std::vector<Symbol> Candidates = Env.ofType(Want);
    if (!Candidates.empty() && R.chance(2, 5))
      return C.var(Candidates[R.below(Candidates.size())]);

    if (Depth == 0)
      return base(Want, Env);

    switch (Want->kind()) {
    case TypeKind::Int:
      switch (R.below(6)) {
      case 0:
        return base(Want, Env);
      case 1: { // primitive
        PrimOp P = static_cast<PrimOp>(R.below(4));
        return C.prim(P, gen(C.tyInt(), Depth - 1, Env),
                      gen(C.tyInt(), Depth - 1, Env));
      }
      case 2: { // if0
        return C.if0(gen(C.tyInt(), Depth - 1, Env),
                     gen(Want, Depth - 1, Env), gen(Want, Depth - 1, Env));
      }
      case 3: { // projection from a random pair type
        const Type *Other = genType(1);
        bool First = R.chance(1, 2);
        const Type *PairTy = First ? C.tyProd(Want, Other)
                                   : C.tyProd(Other, Want);
        const Expr *P = gen(PairTy, Depth - 1, Env);
        return First ? C.fst(P) : C.snd(P);
      }
      case 4: { // application
        const Type *ArgTy = genType(1);
        const Expr *F = gen(C.tyArrow(ArgTy, Want), Depth - 1, Env);
        const Expr *A = gen(ArgTy, Depth - 1, Env);
        return C.app(F, A);
      }
      default: { // let
        const Type *BoundTy = genType(2);
        Symbol X = C.fresh("v");
        const Expr *Bound = gen(BoundTy, Depth - 1, Env);
        GenEnv Inner = Env;
        Inner.Vars.push_back({X, BoundTy});
        return C.let(X, Bound, gen(Want, Depth - 1, Inner));
      }
      }

    case TypeKind::Prod:
      if (R.chance(4, 5))
        return C.pair(gen(Want->left(), Depth - 1, Env),
                      gen(Want->right(), Depth - 1, Env));
      return base(Want, Env);

    case TypeKind::Arrow: {
      Symbol X = C.fresh("x");
      GenEnv Inner = Env;
      Inner.Vars.push_back({X, Want->from()});
      return C.lam(X, Want->from(), gen(Want->to(), Depth - 1, Inner));
    }
    }
    return base(Want, Env);
  }

  /// A minimal inhabitant of the type (leaf case).
  const Expr *base(const Type *Want, const GenEnv &Env) {
    std::vector<Symbol> Candidates = Env.ofType(Want);
    if (!Candidates.empty())
      return C.var(Candidates[R.below(Candidates.size())]);
    switch (Want->kind()) {
    case TypeKind::Int:
      return C.intLit(R.range(-9, 9));
    case TypeKind::Prod:
      return C.pair(base(Want->left(), Env), base(Want->right(), Env));
    case TypeKind::Arrow: {
      Symbol X = C.fresh("x");
      GenEnv Inner = Env;
      Inner.Vars.push_back({X, Want->from()});
      return C.lam(X, Want->from(), base(Want->to(), Inner));
    }
    }
    return C.intLit(0);
  }
};

} // namespace

const Expr *scav::harness::genPure(LambdaContext &C, Rng &R, const Type *Want,
                                   unsigned Depth, const GenOptions &Opts) {
  Generator G{C, R, Opts};
  GenEnv Env;
  return G.gen(Want, Depth, Env);
}

const Expr *scav::harness::genProgram(LambdaContext &C, Rng &R,
                                      const GenOptions &Opts) {
  Generator G{C, R, Opts};
  GenEnv Empty;
  int64_t Iters = R.range(2, Opts.MaxIterations);
  const Type *IntInt = C.tyArrow(C.tyInt(), C.tyInt());

  switch (R.below(4)) {
  case 0: {
    // Loop skeleton: fix f(n) = if0 n BASE (STEP + f(n-1)).
    Symbol F = C.fresh("loop"), N = C.fresh("n");
    GenEnv Env;
    Env.Vars.push_back({N, C.tyInt()});
    const Expr *Base = G.gen(C.tyInt(), Opts.MaxDepth, Env);
    const Expr *Step = G.gen(C.tyInt(), Opts.MaxDepth, Env);
    const Expr *Body = C.if0(
        C.var(N), Base,
        C.prim(PrimOp::Add, Step,
               C.app(C.var(F), C.prim(PrimOp::Sub, C.var(N), C.intLit(1)))));
    const Expr *Fix = C.fix(F, N, C.tyInt(), C.tyInt(), Body);
    return C.app(Fix, C.intLit(Iters));
  }
  case 1: {
    // Closure-chain skeleton: each iteration captures the previous closure.
    Symbol B = C.fresh("build"), N = C.fresh("n"), Gv = C.fresh("g"),
           X = C.fresh("x");
    GenEnv Env;
    Env.Vars.push_back({N, C.tyInt()});
    const Expr *Seed = G.gen(IntInt, Opts.MaxDepth, Env);
    GenEnv Inner = Env;
    Inner.Vars.push_back({Gv, IntInt});
    Inner.Vars.push_back({X, C.tyInt()});
    const Expr *StepBody =
        C.app(C.var(Gv),
              C.prim(PrimOp::Add, C.var(X),
                     G.gen(C.tyInt(), 2, Inner)));
    const Expr *Body = C.if0(
        C.var(N), Seed,
        C.let(Gv,
              C.app(C.var(B), C.prim(PrimOp::Sub, C.var(N), C.intLit(1))),
              C.lam(X, C.tyInt(), StepBody)));
    const Expr *Fix = C.fix(B, N, C.tyInt(), IntInt, Body);
    return C.app(C.app(Fix, C.intLit(Iters)), C.intLit(R.range(0, 100)));
  }
  case 2: {
    // Closure-tree skeleton with sharing: λx. s (s x).
    Symbol T = C.fresh("tree"), D = C.fresh("d"), S = C.fresh("s"),
           X = C.fresh("x");
    GenEnv LeafEnv;
    LeafEnv.Vars.push_back({X, C.tyInt()});
    const Expr *Leaf =
        C.lam(X, C.tyInt(),
              C.prim(PrimOp::Add, C.var(X), G.gen(C.tyInt(), 2, LeafEnv)));
    const Expr *Body = C.if0(
        C.var(D), Leaf,
        C.let(S, C.app(C.var(T), C.prim(PrimOp::Sub, C.var(D), C.intLit(1))),
              C.lam(X, C.tyInt(),
                    C.app(C.var(S), C.app(C.var(S), C.var(X))))));
    int64_t Depth = std::min<int64_t>(Iters, 6);
    const Expr *Fix = C.fix(T, D, C.tyInt(), IntInt, Body);
    return C.app(C.app(Fix, C.intLit(Depth)), C.intLit(R.range(0, 10)));
  }
  default: {
    // Pair-churn skeleton: builds and consumes nested pairs per iteration.
    Symbol F = C.fresh("churn"), N = C.fresh("n"), P = C.fresh("p");
    GenEnv Env;
    Env.Vars.push_back({N, C.tyInt()});
    const Type *PP = C.tyProd(C.tyProd(C.tyInt(), C.tyInt()), C.tyInt());
    const Expr *Mk = G.gen(PP, Opts.MaxDepth, Env);
    GenEnv Inner = Env;
    Inner.Vars.push_back({P, PP});
    const Expr *Use = C.prim(PrimOp::Add, C.snd(C.fst(C.var(P))),
                             C.snd(C.var(P)));
    const Expr *Body = C.if0(
        C.var(N), C.intLit(0),
        C.let(P, Mk,
              C.prim(PrimOp::Add, Use,
                     C.app(C.var(F),
                           C.prim(PrimOp::Sub, C.var(N), C.intLit(1))))));
    const Expr *Fix = C.fix(F, N, C.tyInt(), C.tyInt(), Body);
    return C.app(Fix, C.intLit(Iters));
  }
  }
}
