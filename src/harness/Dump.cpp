//===- harness/Dump.cpp - Post-mortem dump bundles ------------------------===//

#include "harness/Dump.h"

#include "support/Trace.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace scav;
using namespace scav::harness;

namespace fs = std::filesystem;

std::string scav::harness::writeDumpBundle(const std::string &DumpDir,
                                           gc::Machine &M,
                                           const DumpInfo &Info) {
  std::error_code EC;
  fs::create_directories(DumpDir, EC);
  if (EC) {
    std::fprintf(stderr, "dump: cannot create %s: %s\n", DumpDir.c_str(),
                 EC.message().c_str());
    return "";
  }

  std::string Base = "dump-" + (Info.Kind.empty() ? "manual" : Info.Kind) +
                     "-step" + std::to_string(Info.Step);
  fs::path Bundle = fs::path(DumpDir) / Base;
  for (int Suffix = 2; fs::exists(Bundle, EC); ++Suffix)
    Bundle = fs::path(DumpDir) / (Base + "-" + std::to_string(Suffix));
  fs::create_directories(Bundle, EC);
  if (EC) {
    std::fprintf(stderr, "dump: cannot create %s: %s\n",
                 Bundle.string().c_str(), EC.message().c_str());
    return "";
  }

  gc::SnapshotMeta Meta;
  Meta.Kind = Info.Kind;
  Meta.Diagnostic = Info.Diagnostic;
  Meta.Checker = Info.Checker;
  Meta.RestrictToReachable = Info.RestrictToReachable;
  Meta.CheckCodeRegion = Info.CheckCodeRegion;

  std::string Error;
  std::string SnapPath = (Bundle / "snapshot.scavsnap").string();
  if (!gc::saveSnapshot(M, Meta, SnapPath, Error)) {
    std::fprintf(stderr, "dump: %s\n", Error.c_str());
    return "";
  }

  std::string Manifest;
  Manifest += "kind: " + Info.Kind + "\n";
  Manifest += "diagnostic: " + Info.Diagnostic + "\n";
  Manifest += "checker: " + Info.Checker + "\n";
  Manifest += std::string("level: ") + gc::languageLevelName(M.level()) + "\n";
  Manifest += std::string("layout: ") +
              (M.memory().compact() ? "compact" : "legacy") + "\n";
  Manifest += "step: " + std::to_string(Info.Step) + "\n";
  Manifest += std::string("restrict-to-reachable: ") +
              (Info.RestrictToReachable ? "1" : "0") + "\n";
  Manifest += std::string("check-code-region: ") +
              (Info.CheckCodeRegion ? "1" : "0") + "\n";
  Manifest += "replay: " + Info.ReplayCmd + "\n";
  support::writeFile((Bundle / "MANIFEST.txt").string(), Manifest);

  if (!Info.ReplayCmd.empty())
    support::writeFile((Bundle / "replay.txt").string(),
                       Info.ReplayCmd + "\n");

  if (support::TraceSink::enabled())
    support::writeFile((Bundle / "trace_tail.txt").string(),
                       support::TraceSink::get().formatTail(256));

  if (Info.Metrics)
    support::writeFile((Bundle / "metrics.json").string(),
                       support::writeMetricsJson(*Info.Metrics));

  TRACE_INSTANT("dump", support::TraceSink::enabled()
                            ? support::TraceSink::get().intern(
                                  "dump." + Info.Kind)
                            : "dump");
  return Bundle.string();
}
