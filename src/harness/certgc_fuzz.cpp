//===- harness/certgc_fuzz.cpp - Fuzzing and fault-injection driver -------===//
//
// The certgc_fuzz binary (DESIGN.md §3.8). Three seed-deterministic modes:
//
//   certgc_fuzz --mode state    --iters 10000 --level forward
//   certgc_fuzz --mode grammar  --time-budget 120
//   certgc_fuzz --mode pipeline --seed 42
//
// Every failure prints a replay line (same binary, --seed N --iters 1) and
// the full triage report is written to --repro-out on failure, which is
// what the nightly CI job uploads.
//
// Offline tools for crash-class inputs (the parser kills the process, so
// minimization must re-exec):
//
//   certgc_fuzz --parse-one bad.scm            # exit 0 ok/diagnosed, 2 silent
//   certgc_fuzz --minimize bad.scm             # greedy shrink, same failure
//
//===----------------------------------------------------------------------===//

#include "harness/FuzzDriver.h"
#include "harness/Minimize.h"
#include "harness/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace scav;
using namespace scav::harness;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--mode state|grammar|pipeline|all] [--seed N] [--iters N]\n"
      "          [--time-budget SECS] [--level base|forward|gen]\n"
      "          [--corpus FILE]... [--repro-out FILE] [--verbose]\n"
      "          [--trace-out FILE] [--no-trace] [--inject-failure]\n"
      "          [--dump-dir DIR]\n"
      "       %s --parse-one FILE [--gc]\n"
      "       %s --minimize FILE [--gc]\n",
      Argv0, Argv0, Argv0);
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

bool looksLikeGc(const std::string &Path, const std::string &Text) {
  if (Path.size() > 3 && Path.compare(Path.size() - 3, 3, ".gc") == 0)
    return true;
  return Text.find("(program") != std::string::npos;
}

/// Re-exec oracle for --minimize: a candidate "still fails" when a child
/// --parse-one run reproduces the baseline's raw exit status (which keeps
/// crash signals and silent-reject exits distinct).
int parseOneStatus(const std::string &Self, bool IsGc,
                   const std::string &Text) {
  std::string Tmp = "certgc_fuzz.minimize.tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    Out << Text;
  }
  std::string Cmd = "'" + Self + "' --parse-one '" + Tmp + "'" +
                    (IsGc ? " --gc" : "") + " >/dev/null 2>&1";
  return std::system(Cmd.c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  std::string Mode = "all";
  std::string ReproOut = "fuzz-repro.txt";
  std::string TraceOut;
  std::string OneShot, MinimizeFile;
  bool ForceGc = false;
  bool ItersSet = false;

  auto NextArg = [&](int &I) -> const char * {
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "missing value for %s\n", Argv[I]);
      std::exit(2);
    }
    return Argv[++I];
  };

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (!std::strcmp(A, "--mode")) {
      Mode = NextArg(I);
    } else if (!std::strcmp(A, "--seed")) {
      Opts.Seed = std::strtoull(NextArg(I), nullptr, 10);
    } else if (!std::strcmp(A, "--iters")) {
      Opts.Iterations = std::strtoull(NextArg(I), nullptr, 10);
      ItersSet = true;
    } else if (!std::strcmp(A, "--time-budget")) {
      Opts.TimeBudgetSeconds = std::strtod(NextArg(I), nullptr);
    } else if (!std::strcmp(A, "--level")) {
      std::string L = NextArg(I);
      Opts.AllLevels = false;
      if (L == "base")
        Opts.Level = gc::LanguageLevel::Base;
      else if (L == "forward" || L == "forw")
        Opts.Level = gc::LanguageLevel::Forward;
      else if (L == "gen" || L == "generational")
        Opts.Level = gc::LanguageLevel::Generational;
      else
        return usage(Argv[0]);
    } else if (!std::strcmp(A, "--corpus")) {
      std::string Path = NextArg(I);
      auto Text = readFile(Path);
      if (!Text) {
        std::fprintf(stderr, "cannot read corpus file %s\n", Path.c_str());
        return 2;
      }
      Opts.ExtraCorpus.emplace_back(looksLikeGc(Path, *Text), *Text);
    } else if (!std::strcmp(A, "--repro-out")) {
      ReproOut = NextArg(I);
    } else if (!std::strcmp(A, "--verbose")) {
      Opts.Verbose = true;
    } else if (!std::strcmp(A, "--trace-out")) {
      TraceOut = NextArg(I);
    } else if (!std::strcmp(A, "--no-trace")) {
      Opts.TraceRing = false;
    } else if (!std::strcmp(A, "--inject-failure")) {
      Opts.InjectSelfTestFailure = true;
    } else if (!std::strcmp(A, "--dump-dir")) {
      Opts.DumpDir = NextArg(I);
    } else if (!std::strcmp(A, "--parse-one")) {
      OneShot = NextArg(I);
    } else if (!std::strcmp(A, "--minimize")) {
      MinimizeFile = NextArg(I);
    } else if (!std::strcmp(A, "--gc")) {
      ForceGc = true;
    } else {
      return usage(Argv[0]);
    }
  }

  if (!OneShot.empty()) {
    auto Text = readFile(OneShot);
    if (!Text) {
      std::fprintf(stderr, "cannot read %s\n", OneShot.c_str());
      return 2;
    }
    return parseOneForFuzz(ForceGc || looksLikeGc(OneShot, *Text), *Text);
  }

  if (!MinimizeFile.empty()) {
    auto Text = readFile(MinimizeFile);
    if (!Text) {
      std::fprintf(stderr, "cannot read %s\n", MinimizeFile.c_str());
      return 2;
    }
    bool IsGc = ForceGc || looksLikeGc(MinimizeFile, *Text);
    std::string Self = Argv[0];
    int Baseline = parseOneStatus(Self, IsGc, *Text);
    if (Baseline == 0) {
      std::fprintf(stderr,
                   "%s parses cleanly (or with a diagnostic) — nothing to "
                   "minimize\n",
                   MinimizeFile.c_str());
      return 1;
    }
    std::string Min =
        minimizeSExpr(*Text, [&](const std::string &Candidate) {
          return parseOneStatus(Self, IsGc, Candidate) == Baseline;
        });
    std::remove("certgc_fuzz.minimize.tmp");
    std::string OutPath = MinimizeFile + ".min";
    std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
    Out << Min;
    std::printf("%s\n", Min.c_str());
    std::fprintf(stderr, "minimized %zu -> %zu bytes, written to %s\n",
                 Text->size(), Min.size(), OutPath.c_str());
    return 0;
  }

  bool RunState = Mode == "state" || Mode == "all";
  bool RunGrammar = Mode == "grammar" || Mode == "all";
  bool RunPipeline = Mode == "pipeline" || Mode == "all";
  if (!RunState && !RunGrammar && !RunPipeline)
    return usage(Argv[0]);

  // SCAV_TRACE=<file> is the env fallback for --trace-out (the fuzz modes
  // enable the ring themselves unless --no-trace).
  if (TraceOut.empty())
    if (std::optional<std::string> EnvOut = traceOutFromEnv())
      TraceOut = *EnvOut;

  // Per-mode default workloads (state/grammar iterations are cheap; every
  // pipeline iteration compiles and runs four full configurations).
  auto WithIters = [&](uint64_t Default) {
    FuzzOptions O = Opts;
    if (!ItersSet)
      O.Iterations = Default;
    return O;
  };

  FuzzReport Total;
  std::string Reports;
  if (RunState) {
    FuzzReport R = fuzzStates(WithIters(3000));
    Reports += R.summary("state");
    Total.merge(R);
  }
  if (RunGrammar) {
    FuzzReport R = fuzzGrammar(WithIters(5000));
    Reports += R.summary("grammar");
    Total.merge(R);
  }
  if (RunPipeline) {
    FuzzReport R = fuzzPipeline(WithIters(30));
    Reports += R.summary("pipeline");
    Total.merge(R);
  }

  std::fputs(Reports.c_str(), stdout);
  if (!TraceOut.empty() &&
      !support::TraceSink::get().writeChromeJson(TraceOut))
    std::fprintf(stderr, "cannot write %s\n", TraceOut.c_str());
  if (!Total.ok()) {
    std::ofstream Out(ReproOut, std::ios::binary | std::ios::trunc);
    Out << Reports;
    std::fprintf(stderr, "certgc_fuzz: FAILURES — triage report written to %s\n",
                 ReproOut.c_str());
    return 1;
  }
  return 0;
}
