//===- harness/FuzzDriver.cpp - Fuzzing and fault-injection modes ---------===//

#include "harness/FuzzDriver.h"

#include "gc/Parse.h"
#include "harness/Dump.h"
#include "harness/HeapForge.h"
#include "harness/Minimize.h"
#include "harness/Pipeline.h"
#include "harness/ProgramGen.h"

#include <chrono>
#include <cstdio>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

//===----------------------------------------------------------------------===//
// Shared plumbing
//===----------------------------------------------------------------------===//

namespace {

LanguageLevel pickLevel(const FuzzOptions &Opts, Rng &R) {
  if (!Opts.AllLevels)
    return Opts.Level;
  static constexpr LanguageLevel Levels[] = {LanguageLevel::Base,
                                             LanguageLevel::Forward,
                                             LanguageLevel::Generational};
  return Levels[R.below(3)];
}

std::string replayLine(const char *Mode, uint64_t IterSeed,
                       const FuzzOptions &Opts) {
  std::string Out = std::string("certgc_fuzz --mode ") + Mode + " --seed " +
                    std::to_string(IterSeed) + " --iters 1";
  if (!Opts.AllLevels)
    Out += std::string(" --level ") + languageLevelName(Opts.Level);
  return Out;
}

/// The trailing trace window a failure record carries ("" when tracing is
/// off). Captured at failure time, before the ring moves on.
std::string traceTail(const FuzzOptions &Opts) {
  if (!SCAV_TRACE_ENABLED())
    return std::string();
  return support::TraceSink::get().formatTail(Opts.TraceTailEvents);
}

/// Shared per-mode bootstrap: ring on (when asked), synthetic self-test
/// failure in (when asked). Returns through \p Rep.
void fuzzModeSetup(const char *Mode, const FuzzOptions &Opts,
                   FuzzReport &Rep) {
#if SCAV_TRACE_COMPILED_IN
  if (Opts.TraceRing)
    support::TraceSink::get().enable();
#endif
  if (Opts.InjectSelfTestFailure) {
    ++Rep.InvariantViolations;
    TRACE_INSTANT("fuzz", "selftest.failure");
    Rep.Failures.push_back({replayLine(Mode, Opts.Seed, Opts),
                            "injected self-test failure (not a real bug)",
                            std::string(), traceTail(Opts)});
  }
}

/// Runs \p Iter once per iteration seed until the iteration count (or the
/// wall-clock budget, when set) is exhausted.
template <typename Body>
void runLoop(const FuzzOptions &Opts, FuzzReport &Rep, Body Iter) {
  using Clock = std::chrono::steady_clock;
  auto Start = Clock::now();
  uint64_t MaxIters = Opts.TimeBudgetSeconds > 0
                          ? std::max<uint64_t>(Opts.Iterations, 1u << 30)
                          : Opts.Iterations;
  for (uint64_t I = 0; I != MaxIters; ++I) {
    if (Opts.TimeBudgetSeconds > 0 &&
        std::chrono::duration<double>(Clock::now() - Start).count() >=
            Opts.TimeBudgetSeconds)
      break;
    ++Rep.Iterations;
    Iter(Opts.Seed + I);
  }
}

} // namespace

std::string FuzzReport::summary(const char *Mode) const {
  std::string Out;
  auto Line = [&](const char *K, uint64_t V) {
    Out += "  ";
    Out += K;
    Out += ": ";
    Out += std::to_string(V);
    Out += "\n";
  };
  Out += std::string("[certgc_fuzz] mode=") + Mode + " " +
         (ok() ? "OK" : "FAILED") + "\n";
  Line("iterations", Iterations);
  Line("mutations-applied", MutationsApplied);
  Line("skipped", Skipped);
  Line("rejections", Rejections);
  Line("clean-accepts", CleanAccepts);
  Line("false-accepts", FalseAccepts);
  Line("verdict-disagreements", Disagreements);
  Line("invariant-violations", InvariantViolations);
  for (unsigned K = 0; K != NumStateMutationKinds; ++K)
    if (PerKind[K])
      Line(stateMutationName(static_cast<StateMutationKind>(K)), PerKind[K]);
  for (const FuzzFailure &F : Failures) {
    Out += "  FAILURE: " + F.What + "\n";
    Out += "    replay: " + F.Replay + "\n";
    if (!F.BundlePath.empty())
      Out += "    bundle: " + F.BundlePath + "\n";
    if (!F.Input.empty())
      Out += "    input: " + F.Input + "\n";
    if (!F.TraceTail.empty()) {
      Out += "    trace tail:\n";
      Out += F.TraceTail;
    }
  }
  return Out;
}

void FuzzReport::merge(const FuzzReport &Other) {
  Iterations += Other.Iterations;
  MutationsApplied += Other.MutationsApplied;
  Skipped += Other.Skipped;
  Rejections += Other.Rejections;
  CleanAccepts += Other.CleanAccepts;
  FalseAccepts += Other.FalseAccepts;
  Disagreements += Other.Disagreements;
  InvariantViolations += Other.InvariantViolations;
  for (unsigned K = 0; K != NumStateMutationKinds; ++K)
    PerKind[K] += Other.PerKind[K];
  Failures.insert(Failures.end(), Other.Failures.begin(),
                  Other.Failures.end());
}

//===----------------------------------------------------------------------===//
// State-mutation fuzzing
//===----------------------------------------------------------------------===//

namespace {

/// One state-fuzz iteration: forge a heap, start a real collection, attach
/// the incremental checker, run a random prefix, inject one corruption,
/// and demand that both checkers reject and agree.
void stateIteration(uint64_t IterSeed, const FuzzOptions &Opts,
                    FuzzReport &Rep) {
  Rng R(IterSeed);
  LanguageLevel Level = pickLevel(Opts, R);
  bool Restrict = Level == LanguageLevel::Forward;

  GcContext C;
  MachineConfig MC;
  MC.Layout = Opts.Layout;
  Machine M(C, Level, MC);
  Address GcAddr{};
  switch (Level) {
  case LanguageLevel::Base:
    GcAddr = installBasicCollector(M).Gc;
    break;
  case LanguageLevel::Forward:
    GcAddr = installForwardCollector(M).Gc;
    break;
  case LanguageLevel::Generational:
    GcAddr = installGenCollector(M).Gc;
    break;
  }
  Region From = M.createRegion("from", 0);
  Region Old = Level == LanguageLevel::Generational
                   ? M.createRegion("old", 0)
                   : From;
  ForgedHeap H;
  switch (R.below(3)) {
  case 0:
    H = forgeList(M, From, Old, 1 + R.below(24));
    break;
  case 1:
    H = forgeTree(M, From, Old, 1 + static_cast<unsigned>(R.below(5)),
                  R.chance(1, 2));
    break;
  default:
    H = forgeRandom(M, From, Old, R, 4 + R.below(40));
    break;
  }
  Address Fin = installFinisher(M, H.Tag);
  M.start(collectOnceTerm(M, GcAddr, H, From, Old, Fin));

  IncrementalCheckOptions IOpts;
  IOpts.RestrictToReachable = Restrict;
  IncrementalStateCheck Inc(M, IOpts);
  StateCheckOptions FOpts;
  FOpts.CheckCodeRegion = false;
  FOpts.RestrictToReachable = Restrict;

  auto Fail = [&](const char *What, std::string Detail) {
    // Triage bundle: the machine is live at every state-mode failure site,
    // so each report carries a full post-mortem snapshot (harness/Dump.h).
    std::string Bundle;
    if (!Opts.DumpDir.empty()) {
      DumpInfo Info;
      Info.Kind = "fuzz";
      Info.Diagnostic = Detail;
      Info.RestrictToReachable = Restrict;
      Info.ReplayCmd = replayLine("state", IterSeed, Opts);
      Info.Step = M.stats().Steps;
      Bundle = writeDumpBundle(Opts.DumpDir, M, Info);
    }
    Rep.Failures.push_back(
        {replayLine("state", IterSeed, Opts),
         std::string(What) + " [level=" + languageLevelName(Level) + "]",
         std::move(Detail), traceTail(Opts), std::move(Bundle)});
  };

  if (StateCheckResult R0 = Inc.check(); !R0.Ok) {
    ++Rep.InvariantViolations;
    Fail("forged seed state rejected", R0.Error);
    return;
  }

  // Random prefix of the real collection, then the pre-mutation agreement
  // baseline: a healthy state both checkers accept.
  for (uint64_t Steps = R.below(80);
       Steps != 0 && M.status() == Machine::Status::Running; --Steps)
    M.step();
  if (M.status() == Machine::Status::Stuck) {
    ++Rep.InvariantViolations;
    Fail("healthy collection got stuck", M.stuckReason());
    return;
  }
  {
    StateCheckResult RI = Inc.check();
    StateCheckResult RF = checkState(M, FOpts);
    if (RI.Ok != RF.Ok) {
      ++Rep.Disagreements;
      Fail("pre-mutation verdicts disagree", RI.Error + " vs " + RF.Error);
      return;
    }
    if (!RI.Ok) {
      ++Rep.InvariantViolations;
      Fail("healthy state rejected", RI.Error);
      return;
    }
  }

  // Inject: cycle kinds from a random start until one applies.
  std::optional<AppliedMutation> Applied;
  unsigned KStart = static_cast<unsigned>(R.below(NumStateMutationKinds));
  for (unsigned J = 0; J != NumStateMutationKinds && !Applied; ++J)
    Applied = applyStateMutation(
        M, static_cast<StateMutationKind>((KStart + J) % NumStateMutationKinds),
        R, Restrict);
  if (!Applied) {
    ++Rep.Skipped;
    return;
  }
  ++Rep.MutationsApplied;
  ++Rep.PerKind[static_cast<unsigned>(Applied->Kind)];
  if (Opts.Verbose)
    std::fprintf(stderr, "[state seed=%llu level=%s] %s: %s\n",
                 static_cast<unsigned long long>(IterSeed),
                 languageLevelName(Level), stateMutationName(Applied->Kind),
                 Applied->Description.c_str());

  StateCheckResult RI = Inc.check();
  StateCheckResult RF = checkState(M, FOpts);
  std::string Tag =
      std::string(stateMutationName(Applied->Kind)) + ": " +
      Applied->Description;
  if (RI.Ok != RF.Ok) {
    ++Rep.Disagreements;
    Fail("post-mutation verdicts disagree",
         Tag + " | incremental: " + (RI.Ok ? "accept" : RI.Error) +
             " | full: " + (RF.Ok ? "accept" : RF.Error));
    return;
  }
  if (RI.Ok) {
    ++Rep.FalseAccepts;
    Fail("corruption accepted by both checkers", Tag);
    return;
  }
  ++Rep.Rejections;
}

} // namespace

FuzzReport scav::harness::fuzzStates(const FuzzOptions &Opts) {
  FuzzReport Rep;
  fuzzModeSetup("state", Opts, Rep);
  runLoop(Opts, Rep,
          [&](uint64_t Seed) { stateIteration(Seed, Opts, Rep); });
  return Rep;
}

//===----------------------------------------------------------------------===//
// Grammar fuzzing
//===----------------------------------------------------------------------===//

namespace {

enum class CorpusKind : uint8_t {
  LambdaExpr,
  LambdaType,
  GcProgram,
  GcTerm,
  GcType,
  GcTag,
};

struct CorpusEntry {
  CorpusKind Kind;
  std::string Text;
};

/// Valid seed programs covering both grammars; mutated, never run.
std::vector<CorpusEntry> builtinCorpus() {
  return {
      {CorpusKind::LambdaExpr,
       "(app (fix fact (n Int) Int (if0 n 1 (* n (app fact (- n 1))))) 6)"},
      {CorpusKind::LambdaExpr,
       "(app (app (fix build (n Int) (-> Int Int) (if0 n (lam (x Int) x) "
       "(let g (app build (- n 1)) (lam (x Int) (app g (+ x n)))))) 8) 0)"},
      {CorpusKind::LambdaExpr,
       "(let p (pair 1 (pair 2 3)) (+ (fst p) (snd (snd p))))"},
      {CorpusKind::LambdaExpr, "(if0 (<= 2 1) 10 (- 0 10))"},
      {CorpusKind::LambdaType, "(-> (* Int Int) (-> Int Int))"},
      {CorpusKind::GcProgram,
       "(program (fun mu () (r) ((x (M r (* Int Int)))) (ifgc r (app (fn gc) "
       "((* Int Int)) (r) ((fn mu) x)) (let g (get x) (let a (pi1 g) (let b "
       "(pi2 g) (let s (+ a b) (halt s))))))) (main (letregion r (let root "
       "(put r (pair 19 23)) (app (fn mu) () (r) (root))))))"},
      {CorpusKind::GcProgram,
       "(program (main (letregion r (let a (put r (pair 1 2)) (let g (get a) "
       "(let x (pi1 g) (only (r) (halt x))))))))"},
      {CorpusKind::GcTerm,
       "(letregion r (let a (put r (inl (pair 1 2))) (let g (get a) (halt "
       "0))))"},
      {CorpusKind::GcType, "(Er r (ro) (at (* int int) r))"},
      {CorpusKind::GcTag, "(E t (* t Int))"},
  };
}

enum class ParseOutcome { Accepted, Diagnosed, SilentReject };

/// Runs one frontend over \p Text. The never-crash half of the invariant
/// is implicit (a crash kills the fuzzer process); the
/// diagnostic-or-accept half is the SilentReject outcome.
ParseOutcome tryParse(CorpusKind K, const std::string &Text) {
  DiagEngine Diags;
  bool Ok = false;
  switch (K) {
  case CorpusKind::LambdaExpr: {
    SymbolTable Syms;
    lambda::LambdaContext LC{Syms};
    const lambda::Expr *E = lambda::parseExpr(LC, Text, Diags);
    if (E) {
      // Accepted parses continue into the typechecker, which must also
      // diagnose rather than crash.
      DiagEngine TypeDiags;
      (void)lambda::typeCheck(LC, E, TypeDiags);
    }
    Ok = E != nullptr;
    break;
  }
  case CorpusKind::LambdaType: {
    SymbolTable Syms;
    lambda::LambdaContext LC{Syms};
    Ok = lambda::parseType(LC, Text, Diags) != nullptr;
    break;
  }
  case CorpusKind::GcProgram: {
    GcContext C;
    Machine M(C, LanguageLevel::Generational);
    std::map<std::string, Address> Prelude;
    Prelude["gc"] = M.reserveCode("gc");
    Prelude["gcfull"] = M.reserveCode("gcfull");
    Ok = parseGcProgram(M, Text, Diags, Prelude).Ok;
    break;
  }
  case CorpusKind::GcTerm: {
    GcContext C;
    Ok = parseGcTerm(C, Text, Diags) != nullptr;
    break;
  }
  case CorpusKind::GcType: {
    GcContext C;
    Ok = parseGcType(C, Text, Diags) != nullptr;
    break;
  }
  case CorpusKind::GcTag: {
    GcContext C;
    Ok = parseGcTag(C, Text, Diags) != nullptr;
    break;
  }
  }
  if (Ok)
    return ParseOutcome::Accepted;
  return Diags.hasErrors() ? ParseOutcome::Diagnosed
                           : ParseOutcome::SilentReject;
}

void grammarIteration(uint64_t IterSeed, const FuzzOptions &Opts,
                      const std::vector<CorpusEntry> &Corpus,
                      FuzzReport &Rep) {
  Rng R(IterSeed);
  const CorpusEntry &Seed = Corpus[R.below(Corpus.size())];
  unsigned Rounds = 1 + static_cast<unsigned>(R.below(8));
  std::string Mutated = R.chance(1, 2)
                            ? mutateBytes(Seed.Text, R, Rounds)
                            : mutateNodes(Seed.Text, R, Rounds);

  switch (tryParse(Seed.Kind, Mutated)) {
  case ParseOutcome::Accepted:
    ++Rep.CleanAccepts;
    return;
  case ParseOutcome::Diagnosed:
    ++Rep.Rejections;
    return;
  case ParseOutcome::SilentReject: {
    ++Rep.InvariantViolations;
    CorpusKind K = Seed.Kind;
    std::string Minimized = minimizeSExpr(Mutated, [K](const std::string &T) {
      return tryParse(K, T) == ParseOutcome::SilentReject;
    });
    Rep.Failures.push_back({replayLine("grammar", IterSeed, Opts),
                            "parser rejected without a diagnostic",
                            std::move(Minimized), traceTail(Opts)});
    return;
  }
  }
}

} // namespace

int scav::harness::parseOneForFuzz(bool IsGcProgram,
                                   const std::string &Text) {
  ParseOutcome O = tryParse(
      IsGcProgram ? CorpusKind::GcProgram : CorpusKind::LambdaExpr, Text);
  return O == ParseOutcome::SilentReject ? 2 : 0;
}

FuzzReport scav::harness::fuzzGrammar(const FuzzOptions &Opts) {
  std::vector<CorpusEntry> Corpus = builtinCorpus();
  for (const auto &[IsGc, Text] : Opts.ExtraCorpus)
    Corpus.push_back(
        {IsGc ? CorpusKind::GcProgram : CorpusKind::LambdaExpr, Text});
  FuzzReport Rep;
  fuzzModeSetup("grammar", Opts, Rep);
  runLoop(Opts, Rep, [&](uint64_t Seed) {
    grammarIteration(Seed, Opts, Corpus, Rep);
  });
  return Rep;
}

//===----------------------------------------------------------------------===//
// Pipeline fuzzing
//===----------------------------------------------------------------------===//

namespace {

void pipelineIteration(uint64_t IterSeed, const FuzzOptions &Opts,
                       FuzzReport &Rep) {
  Rng R(IterSeed);
  LanguageLevel Level = pickLevel(Opts, R);

  auto Fail = [&](const char *What, std::string Detail,
                  std::string Bundle = std::string()) {
    ++Rep.InvariantViolations;
    Rep.Failures.push_back(
        {replayLine("pipeline", IterSeed, Opts),
         std::string(What) + " [level=" + languageLevelName(Level) + "]",
         std::move(Detail), traceTail(Opts), std::move(Bundle)});
  };

  GenOptions GO;
  GO.MaxDepth = 3 + static_cast<unsigned>(R.below(3));
  GO.MaxIterations = 4 + static_cast<int64_t>(R.below(9));

  // Reference configuration: env-mode machine, certified collector, small
  // regions so collections actually fire, incremental per-N checks.
  PipelineOptions PA;
  PA.Level = Level;
  PA.Machine.Layout = Opts.Layout;
  PA.Machine.DefaultRegionCapacity = 8 + static_cast<uint32_t>(R.below(25));
  // Checker failures and stuck machines in any differential leg dump a
  // bundle themselves (PB/PD/PC copy these fields from PA).
  PA.DumpDir = Opts.DumpDir;
  PA.ReplayCmd = replayLine("pipeline", IterSeed, Opts);
  Pipeline A(PA);
  const lambda::Expr *E = genProgram(A.lambdaContext(), R, GO);
  std::string Text = lambda::printExpr(A.lambdaContext(), E);

  DiagEngine DA;
  if (!A.compileExpr(E, DA)) {
    Fail("generated program failed to compile", DA.str() + "\n" + Text);
    return;
  }
  RunResult Src = A.runSource();
  if (!Src.Ok) {
    Fail("source evaluation failed", Src.Error + "\n" + Text);
    return;
  }
  RunResult RA =
      A.runMachine(3'000'000, 1 + static_cast<uint32_t>(R.below(13)));

  // Differential configurations compile the *printed* program — the
  // round-trip is part of the surface under test.
  PipelineOptions PB = PA;
  PB.Machine.Eval = EvalMode::Subst;
  Pipeline B(PB);
  DiagEngine DB;
  if (!B.compile(Text, DB)) {
    Fail("printed program failed to recompile", DB.str() + "\n" + Text);
    return;
  }
  RunResult RB = B.runMachine(3'000'000, 0);

  // Bytecode VM leg: same collector configuration as the reference, only
  // the execution engine differs — steps, halt values, and stuck verdicts
  // must all be identical to the env machine.
  PipelineOptions PD = PA;
  PD.Machine.Eval = EvalMode::Vm;
  Pipeline D(PD);
  DiagEngine DD;
  if (!D.compile(Text, DD)) {
    Fail("vm-mode recompile failed", DD.str() + "\n" + Text);
    return;
  }
  RunResult RD = D.runMachine(3'000'000, 0);

  PipelineOptions PC = PA;
  PC.InstallCollector = false;
  PC.Machine.DefaultRegionCapacity = 0; // never "full", no collection point
  Pipeline Cp(PC);
  DiagEngine DC;
  if (!Cp.compile(Text, DC)) {
    Fail("collector-free recompile failed", DC.str() + "\n" + Text);
    return;
  }
  RunResult RC = Cp.runMachine(3'000'000, 0);

  auto Verdict = [](const RunResult &Run) {
    return Run.Ok ? "ok(" + std::to_string(Run.Value) + ")"
                  : "fail(" + Run.Error + ")";
  };
  if (!RA.Ok || !RB.Ok || !RD.Ok || !RC.Ok) {
    // The failing leg already wrote its bundle (if dumping is on); attach
    // the first one so the report points straight at it.
    std::string Bundle = !RA.DumpPath.empty()   ? RA.DumpPath
                         : !RB.DumpPath.empty() ? RB.DumpPath
                         : !RD.DumpPath.empty() ? RD.DumpPath
                                                : RC.DumpPath;
    Fail("machine run verdict differs from source",
         "src=" + Verdict(Src) + " env+gc=" + Verdict(RA) +
             " subst+gc=" + Verdict(RB) + " vm+gc=" + Verdict(RD) +
             " nogc=" + Verdict(RC) + "\n" + Text,
         std::move(Bundle));
    return;
  }
  if (RA.Value != Src.Value || RB.Value != Src.Value ||
      RD.Value != Src.Value || RC.Value != Src.Value) {
    Fail("machine value differs from source",
         "src=" + std::to_string(Src.Value) + " env+gc=" +
             std::to_string(RA.Value) + " subst+gc=" +
             std::to_string(RB.Value) + " vm+gc=" + std::to_string(RD.Value) +
             " nogc=" + std::to_string(RC.Value) + "\n" + Text);
    return;
  }
  if (RA.Steps != RB.Steps) {
    Fail("env vs subst step counts differ",
         std::to_string(RA.Steps) + " vs " + std::to_string(RB.Steps) +
             "\n" + Text);
    return;
  }
  if (RA.Steps != RD.Steps) {
    Fail("env vs vm step counts differ",
         std::to_string(RA.Steps) + " vs " + std::to_string(RD.Steps) +
             "\n" + Text);
    return;
  }
  ++Rep.CleanAccepts;
}

} // namespace

FuzzReport scav::harness::fuzzPipeline(const FuzzOptions &Opts) {
  FuzzReport Rep;
  fuzzModeSetup("pipeline", Opts, Rep);
  runLoop(Opts, Rep,
          [&](uint64_t Seed) { pipelineIteration(Seed, Opts, Rep); });
  return Rep;
}
