//===- harness/Minimize.h - S-expression test-case minimization -*- C++ -*-===//
///
/// \file
/// Greedy test-case minimization for the grammar fuzzer: given a failing
/// input and an oracle "does this text still fail?", repeatedly delete
/// S-expression nodes (and raw byte chunks, for inputs too broken to read
/// as S-expressions) and keep every deletion the oracle confirms. The
/// result is the smallest input the greedy pass can reach — in practice a
/// handful of tokens that name the bug.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_MINIMIZE_H
#define SCAV_HARNESS_MINIMIZE_H

#include <functional>
#include <string>

namespace scav::harness {

/// \returns true when the candidate input still triggers the failure under
/// investigation. Must be deterministic.
using MinimizeOracle = std::function<bool(const std::string &)>;

/// Shrinks \p Input while \p StillFails holds, alternating byte-chunk
/// deletion (works on unreadable inputs) with structural node deletion and
/// list-hoisting (when the input reads as an S-expression), until a full
/// pass makes no progress. \p MaxOracleCalls bounds the work.
std::string minimizeSExpr(std::string Input, const MinimizeOracle &StillFails,
                          unsigned MaxOracleCalls = 2000);

} // namespace scav::harness

#endif // SCAV_HARNESS_MINIMIZE_H
