//===- harness/HeapForge.cpp - Direct heap construction --------------------===//

#include "harness/HeapForge.h"

#include "gc/Builder.h"

using namespace scav;
using namespace scav::harness;
using namespace scav::gc;

const Tag *scav::harness::listTag(GcContext &C) {
  Symbol U = C.fresh("u");
  return C.tagExists(U, C.tagProd(C.tagVar(U), C.tagInt()));
}

namespace {

/// Level-aware cell allocation: wraps the content in `inl` at Forward.
const Value *putCell(Machine &M, Region R, const Value *Content) {
  GcContext &C = M.context();
  if (M.level() == LanguageLevel::Forward)
    Content = C.valInl(Content);
  return M.allocate(R, Content);
}

/// Level-aware reference: wraps an address in a region package at
/// Generational (bound {R, Old}, witness R).
const Value *mkRef(Machine &M, Region R, Region Old, const Value *Addr,
                   const Type *BodyUnderR /* binds the fresh r */,
                   Symbol RVar) {
  if (M.level() != LanguageLevel::Generational)
    return Addr;
  GcContext &C = M.context();
  return C.valPackRegion(RVar, RegionSet{R, Old}, R, Addr, BodyUnderR);
}

} // namespace

ForgedHeap scav::harness::forgeList(Machine &M, Region R, Region Old,
                                    size_t N) {
  GcContext &C = M.context();
  bool Gen = M.level() == LanguageLevel::Generational;
  ForgedHeap H;
  H.Tag = listTag(C);

  // node_0: pack⟨u = Int, (0, n)⟩.
  auto PackBodyTy = [&](Symbol U, Region Rr) -> const Type * {
    // M(u × Int) under the pack binder u, in region Rr (or {r, Old} at
    // Generational with the *region* binder handled by the caller).
    if (Gen)
      return C.typeM({Rr, Old}, C.tagProd(C.tagVar(U), C.tagInt()));
    return C.typeM(Rr, C.tagProd(C.tagVar(U), C.tagInt()));
  };

  const Value *Prev = nullptr;
  for (size_t I = 0; I != N; ++I) {
    bool First = I == 0;
    const Tag *Witness = First ? C.tagInt() : H.Tag;
    const Value *Head =
        First ? static_cast<const Value *>(C.valInt(0)) : Prev;
    // The pair cell (head, i).
    const Value *PairAddr =
        putCell(M, R, C.valPair(Head, C.valInt(static_cast<int64_t>(I))));
    ++H.Cells;
    const Value *PairRef;
    if (Gen) {
      Symbol RV = C.fresh("r");
      const Type *Body =
          C.typeProd(C.typeM({Region::var(RV), Old}, Witness),
                     C.typeM({Region::var(RV), Old}, C.tagInt()));
      PairRef = mkRef(M, R, Old, PairAddr, Body, RV);
    } else {
      PairRef = PairAddr;
    }
    // The existential cell pack⟨u = Witness, pairRef⟩.
    Symbol U = C.fresh("u");
    const Value *Pack = C.valPackTag(U, Witness, PairRef, PackBodyTy(U, R));
    const Value *ExAddr = putCell(M, R, Pack);
    ++H.Cells;
    if (Gen) {
      Symbol RV = C.fresh("r");
      Symbol U2 = C.fresh("u");
      const Type *Body = C.typeExistsTag(
          U2, C.omega(),
          C.typeM({Region::var(RV), Old},
                  C.tagProd(C.tagVar(U2), C.tagInt())));
      Prev = mkRef(M, R, Old, ExAddr, Body, RV);
    } else {
      Prev = ExAddr;
    }
  }
  H.Root = Prev;
  return H;
}

namespace {

/// Recursive worker for forgeTree: returns (ref value, tag) of a tree of
/// the given depth and counts cells.
std::pair<const Value *, const Tag *>
forgeTreeRec(Machine &M, Region R, Region Old, unsigned Depth, bool Share,
             size_t &Cells) {
  GcContext &C = M.context();
  bool Gen = M.level() == LanguageLevel::Generational;

  auto RefOf = [&](const Value *Addr, const Tag *LT,
                   const Tag *RT) -> const Value * {
    if (!Gen)
      return Addr;
    Symbol RV = C.fresh("r");
    const Type *Body = C.typeProd(C.typeM({Region::var(RV), Old}, LT),
                                  C.typeM({Region::var(RV), Old}, RT));
    return mkRef(M, R, Old, Addr, Body, RV);
  };

  if (Depth == 0) {
    const Value *Addr =
        putCell(M, R, C.valPair(C.valInt(1), C.valInt(2)));
    ++Cells;
    return {RefOf(Addr, C.tagInt(), C.tagInt()),
            C.tagProd(C.tagInt(), C.tagInt())};
  }

  auto [Left, SubTag] = forgeTreeRec(M, R, Old, Depth - 1, Share, Cells);
  const Value *Right = Left;
  if (!Share)
    Right = forgeTreeRec(M, R, Old, Depth - 1, Share, Cells).first;
  const Value *Addr = putCell(M, R, C.valPair(Left, Right));
  ++Cells;
  return {RefOf(Addr, SubTag, SubTag), C.tagProd(SubTag, SubTag)};
}

} // namespace

ForgedHeap scav::harness::forgeTree(Machine &M, Region R, Region Old,
                                    unsigned Depth, bool Share) {
  ForgedHeap H;
  auto [Root, Tag] = forgeTreeRec(M, R, Old, Depth, Share, H.Cells);
  H.Root = Root;
  H.Tag = Tag;
  return H;
}

ForgedHeap scav::harness::forgeRandom(Machine &M, Region R, Region Old,
                                      Rng &Rand, size_t NodeBudget) {
  GcContext &C = M.context();
  bool Gen = M.level() == LanguageLevel::Generational;

  // Built nodes: mutator-view reference value + its tag. Ints are values
  // without cells; heap nodes are pairs and existentials.
  struct Node {
    const Value *Ref;
    const Tag *T;
  };
  std::vector<Node> Pool;
  auto RandomLeaf = [&]() -> Node {
    return {C.valInt(Rand.range(-50, 50)), C.tagInt()};
  };
  auto Pick = [&]() -> Node {
    if (Pool.empty() || Rand.chance(1, 4))
      return RandomLeaf();
    return Pool[Rand.below(Pool.size())];
  };

  ForgedHeap H;
  for (size_t I = 0; I != NodeBudget; ++I) {
    if (Pool.empty() || Rand.chance(2, 3)) {
      // Pair node (v1, v2).
      Node A = Pick(), B = Pick();
      const Value *Addr = putCell(M, R, C.valPair(A.Ref, B.Ref));
      ++H.Cells;
      const Tag *T = C.tagProd(A.T, B.T);
      const Value *Ref;
      if (Gen) {
        Symbol RV = C.fresh("r");
        const Type *Body = C.typeProd(C.typeM({Region::var(RV), Old}, A.T),
                                      C.typeM({Region::var(RV), Old}, B.T));
        Ref = mkRef(M, R, Old, Addr, Body, RV);
      } else {
        Ref = Addr;
      }
      Pool.push_back({Ref, T});
    } else {
      // Existential node pack⟨u = τ, v⟩ : ∃u.(u × Int).
      Node A = Pick();
      // The payload of tag (u × Int)[A.T/u] is a pair cell.
      const Value *PairAddr = putCell(
          M, R, C.valPair(A.Ref, C.valInt(Rand.range(0, 9))));
      ++H.Cells;
      const Value *PairRef = PairAddr;
      if (Gen) {
        Symbol RV = C.fresh("r");
        const Type *Body = C.typeProd(C.typeM({Region::var(RV), Old}, A.T),
                                      C.typeM({Region::var(RV), Old},
                                              C.tagInt()));
        PairRef = mkRef(M, R, Old, PairAddr, Body, RV);
      }
      Symbol U = C.fresh("u");
      const Type *BodyTy =
          Gen ? C.typeM({R, Old}, C.tagProd(C.tagVar(U), C.tagInt()))
              : C.typeM(R, C.tagProd(C.tagVar(U), C.tagInt()));
      const Value *Pack = C.valPackTag(U, A.T, PairRef, BodyTy);
      const Value *ExAddr = putCell(M, R, Pack);
      ++H.Cells;
      Symbol U2 = C.fresh("u");
      const Tag *T = C.tagExists(U2, C.tagProd(C.tagVar(U2), C.tagInt()));
      const Value *Ref;
      if (Gen) {
        Symbol RV = C.fresh("r");
        Symbol U3 = C.fresh("u");
        const Type *Body = C.typeExistsTag(
            U3, C.omega(),
            C.typeM({Region::var(RV), Old},
                    C.tagProd(C.tagVar(U3), C.tagInt())));
        Ref = mkRef(M, R, Old, ExAddr, Body, RV);
      } else {
        Ref = ExAddr;
      }
      Pool.push_back({Ref, T});
    }
  }
  // Root: a pair of two random pool nodes (guarantees one root value).
  Node A = Pick(), B = Pick();
  const Value *RootAddr = putCell(M, R, C.valPair(A.Ref, B.Ref));
  ++H.Cells;
  H.Tag = C.tagProd(A.T, B.T);
  if (Gen) {
    Symbol RV = C.fresh("r");
    const Type *Body = C.typeProd(C.typeM({Region::var(RV), Old}, A.T),
                                  C.typeM({Region::var(RV), Old}, B.T));
    H.Root = mkRef(M, R, Old, RootAddr, Body, RV);
  } else {
    H.Root = RootAddr;
  }
  return H;
}

Address scav::harness::installFinisher(Machine &M, const Tag *Tau) {
  GcContext &C = M.context();
  CodeBuilder CB(C);
  if (M.level() == LanguageLevel::Generational) {
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    (void)CB.valParam("x", C.typeM({Ry, Ro}, Tau));
  } else {
    Region R = CB.regionParam("r");
    (void)CB.valParam("x", C.typeM(R, Tau));
  }
  return M.installCode("finisher", CB.build(C.termHalt(C.valInt(0))));
}

Address scav::harness::installRootCapturingFinisher(Machine &M,
                                                    const Tag *Tau) {
  GcContext &C = M.context();
  CodeBuilder CB(C);
  const Value *X;
  Region Alloc;
  if (M.level() == LanguageLevel::Generational) {
    Region Ry = CB.regionParam("ry");
    Region Ro = CB.regionParam("ro");
    X = CB.valParam("x", C.typeM({Ry, Ro}, Tau));
    Alloc = Ry;
  } else {
    Region R = CB.regionParam("r");
    X = CB.valParam("x", C.typeM(R, Tau));
    Alloc = R;
  }
  BlockBuilder B(C);
  (void)B.put(Alloc, C.valPair(X, X));
  return M.installCode("finisher",
                       CB.build(B.finish(C.termHalt(C.valInt(0)))));
}

const Term *scav::harness::collectOnceTerm(Machine &M, Address GcAddr,
                                           const ForgedHeap &H, Region R,
                                           Region Old, Address Finisher) {
  GcContext &C = M.context();
  std::vector<Region> Rs;
  if (M.level() == LanguageLevel::Generational)
    Rs = {R, Old};
  else
    Rs = {R};
  return C.termApp(C.valAddr(GcAddr), {H.Tag}, Rs,
                   {C.valAddr(Finisher), H.Root});
}
