//===- harness/Pipeline.cpp - Whole-pipeline driver ------------------------===//

#include "harness/Pipeline.h"

#include "harness/Dump.h"
#include "harness/FuzzMutate.h"
#include "support/ParseInt.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

using namespace scav;
using namespace scav::harness;

Pipeline::Pipeline(PipelineOptions O) : Opts(std::move(O)) {
  if (Opts.SharedBase) {
    assert(!Opts.FreshNamespace.empty() &&
           "sessions over a shared base need a disjoint fresh namespace");
    GC = std::make_unique<gc::GcContext>(*Opts.SharedBase,
                                         Opts.FreshNamespace);
  } else {
    GC = std::make_unique<gc::GcContext>();
    if (!Opts.FreshNamespace.empty())
      GC->setFreshNamespace(Opts.FreshNamespace);
  }
  LC = std::make_unique<lambda::LambdaContext>(GC->symbols());
  CC = std::make_unique<cps::CpsContext>(GC->symbols());
  CL = std::make_unique<clos::ClosContext>(*GC);
  M = std::make_unique<gc::Machine>(*GC, Opts.Level, Opts.Machine);
  if (Opts.Machine.Eval == gc::EvalMode::Vm)
    Vm = std::make_unique<vm::VmExec>(*M);

  if (Opts.InstallCollector) {
    switch (Opts.Level) {
    case gc::LanguageLevel::Base:
      GcEntry = gc::installBasicCollector(*M).Gc;
      break;
    case gc::LanguageLevel::Forward:
      GcEntry = gc::installForwardCollector(*M).Gc;
      break;
    case gc::LanguageLevel::Generational:
      GcEntry = gc::installGenCollector(*M).Gc;
      if (Opts.InstallMajorCollector)
        MajorGcEntry = gc::installGenFullCollector(*M).Gc;
      break;
    }
  }
}

bool Pipeline::compile(std::string_view Source, DiagEngine &Diags) {
  const lambda::Expr *E = lambda::parseExpr(*LC, Source, Diags);
  if (!E)
    return false;
  return compileExpr(E, Diags);
}

bool Pipeline::compileExpr(const lambda::Expr *E, DiagEngine &Diags) {
  Src = E;
  if (!lambda::typeCheck(*LC, Src, Diags))
    return false;
  Cps = cps::cpsConvert(*LC, *CC, Src, Diags);
  if (!Cps)
    return false;
  if (!clos::closureConvert(*CC, *CL, Cps, Clos, Diags))
    return false;
  if (!clos::typeCheckProgram(*CL, Clos, Diags)) {
    Diags.error("closure-converted program does not typecheck");
    return false;
  }
  Translated =
      gc::translateProgram(*M, *CL, Clos, GcEntry, Diags, MajorGcEntry);
  return Translated.Ok;
}

RunResult Pipeline::runSource(uint64_t Fuel) {
  RunResult R;
  lambda::EvalResult E = lambda::evaluate(Src, Fuel);
  R.Steps = E.Steps;
  if (!E.Value) {
    R.Error = E.Error;
    return R;
  }
  if (E.Value->K != lambda::EvalValue::Kind::Int) {
    R.Error = "source program did not produce an integer";
    return R;
  }
  R.Ok = true;
  R.Value = E.Value->N;
  return R;
}

RunResult Pipeline::runCps(uint64_t Fuel) {
  RunResult R;
  cps::CpsEvalResult E = cps::evaluate(Cps, Fuel);
  R.Ok = E.Ok;
  R.Value = E.Value;
  R.Error = E.Error;
  R.Steps = E.Steps;
  return R;
}

RunResult Pipeline::runClos(uint64_t Fuel) {
  RunResult R;
  clos::ClosEvalResult E = clos::evaluate(*CL, Clos, Fuel);
  R.Ok = E.Ok;
  R.Value = E.Value;
  R.Error = E.Error;
  R.Steps = E.Steps;
  return R;
}

uint32_t scav::harness::checkEveryFromEnv(uint32_t Fallback) {
  // Diagnosed fallback (support/ParseInt.h): a typo'd SCAV_CHECK_EVERY used
  // to silently disable the soak cadence it was meant to set.
  return static_cast<uint32_t>(
      envUnsignedOr("SCAV_CHECK_EVERY", Fallback, 0,
                    std::numeric_limits<uint32_t>::max()));
}

gc::EvalMode scav::harness::evalModeFromEnv(gc::EvalMode Fallback) {
  const char *Env = std::getenv("SCAV_EVAL_MODE");
  if (!Env || !*Env)
    return Fallback;
  std::optional<gc::EvalMode> Mode = gc::parseEvalMode(Env);
  if (!Mode) {
    std::fprintf(stderr,
                 "warning: SCAV_EVAL_MODE=\"%s\": unknown eval mode "
                 "(env|subst|vm); keeping the default\n",
                 Env);
    return Fallback;
  }
  return *Mode;
}

std::optional<std::string> scav::harness::traceOutFromEnv() {
#ifdef SCAV_TRACE_OFF
  return std::nullopt;
#else
  const char *Env = std::getenv("SCAV_TRACE");
  if (!Env || !*Env)
    return std::nullopt;
  support::TraceSink::get().enable();
  std::string V = Env;
  // "1"/"on"/"true" mean "trace, no file" — anything else is a path.
  if (V == "1" || V == "on" || V == "true")
    return std::string();
  return V;
#endif
}

void Pipeline::dumpFailure(RunResult &R, const char *Kind,
                           const std::string &Diagnostic, const char *Checker,
                           bool CheckCodeRegion) {
  if (Opts.DumpDir.empty())
    return;
  DumpInfo Info;
  Info.Kind = Kind;
  Info.Diagnostic = Diagnostic;
  Info.Checker = Checker;
  Info.RestrictToReachable = Opts.Level == gc::LanguageLevel::Forward;
  Info.CheckCodeRegion = CheckCodeRegion;
  Info.ReplayCmd = Opts.ReplayCmd;
  Info.Step = M->stats().Steps;
  Info.Metrics = Opts.DumpMetrics;
  R.DumpPath = writeDumpBundle(Opts.DumpDir, *M, Info);
}

RunResult Pipeline::runMachine(uint64_t MaxSteps, uint32_t CheckEveryN) {
  TRACE_SCOPE("pipeline", "run.machine");
  RunResult R;
  if (!Translated.Main) {
    R.Error = "no translated program";
    return R;
  }
  CheckStats = gc::IncrementalCheckStats{};
  AsyncStats = gc::AsyncCheckStats{};
  // Async checking needs the incremental engine and the raw term state;
  // the Vm backend maintains neither, so it silently degrades to the
  // synchronous path (same verdicts, just no pipelining).
  if (Opts.AsyncCheck && Opts.IncrementalCheck && CheckEveryN != 0 &&
      Opts.Machine.Eval != gc::EvalMode::Vm)
    return runMachineAsync(MaxSteps, CheckEveryN);
  M->start(Translated.Main);

  bool Restrict = Opts.Level == gc::LanguageLevel::Forward;
  gc::StateCheckOptions Check;
  Check.RestrictToReachable = Restrict;
  std::optional<gc::IncrementalStateCheck> Inc;
  uint64_t ChecksRun = 0;
  if (CheckEveryN != 0) {
    if (Opts.IncrementalCheck) {
      gc::IncrementalCheckOptions IncOpts;
      IncOpts.RestrictToReachable = Restrict;
      Inc.emplace(*M, IncOpts); // attach: first check() is the full one
      gc::StateCheckResult R0 = Inc->check();
      if (!R0.Ok) {
        dumpFailure(R, "check-failure", R0.Error, "incremental",
                    /*CheckCodeRegion=*/true);
        R.Error = "initial state ill-formed: " + R0.Error;
        return R;
      }
    } else {
      gc::StateCheckResult R0 = gc::checkState(*M, Check);
      if (!R0.Ok) {
        dumpFailure(R, "check-failure", R0.Error, "full",
                    /*CheckCodeRegion=*/true);
        R.Error = "initial state ill-formed: " + R0.Error;
        return R;
      }
    }
    Check.CheckCodeRegion = false;
  }

  // Keep the last checker stats visible after Inc dies with this frame.
  auto SaveStats = [&] {
    if (Inc)
      CheckStats = Inc->stats();
  };

  bool Corrupted = false;
  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M->status() != gc::Machine::Status::Running)
      break;
    // Deterministic wedge for the serve watchdog: sit here polling the
    // abort flag instead of stepping, like a mutator that stopped making
    // progress.
    if (Opts.StallAtStep != 0 && Opts.AbortRequested &&
        I + 1 == Opts.StallAtStep)
      while (!Opts.AbortRequested->load(std::memory_order_relaxed))
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (Opts.AbortRequested &&
        Opts.AbortRequested->load(std::memory_order_relaxed)) {
      std::string Diag =
          "watchdog stall at step " + std::to_string(M->stats().Steps);
      R.Steps = M->stats().Steps;
      SaveStats();
      dumpFailure(R, "stall", Diag, "", /*CheckCodeRegion=*/false);
      R.Error = "session aborted: " + Diag;
      return R;
    }
    gc::Machine::Status S = M->step();
    if (Opts.Heartbeat)
      Opts.Heartbeat->store(M->stats().Steps, std::memory_order_relaxed);
    if (S == gc::Machine::Status::Stuck) {
      R.Steps = M->stats().Steps;
      SaveStats();
      dumpFailure(R, "stuck", M->stuckReason(), "",
                  /*CheckCodeRegion=*/false);
      R.Error = "machine stuck (progress violation): " + M->stuckReason();
      return R;
    }
    // Forced-corruption knob: injected through the same logged mutation
    // paths the fuzzer uses, so the next check rejects with a genuine
    // diagnostic (the CI crash-dump fixture rides this).
    if (Opts.CorruptAtStep != 0 && !Corrupted && I + 1 >= Opts.CorruptAtStep) {
      Corrupted = true;
      Rng CorruptRng(Opts.CorruptSeed);
      for (unsigned J = 0; J != NumStateMutationKinds; ++J)
        if (applyStateMutation(*M,
                               static_cast<StateMutationKind>(
                                   (Opts.CorruptKind + J) %
                                   NumStateMutationKinds),
                               CorruptRng, Check.RestrictToReachable))
          break;
    }
    if (CheckEveryN != 0 && I % CheckEveryN == 0) {
      gc::StateCheckResult Rc = Inc ? Inc->check() : gc::checkState(*M, Check);
      ++ChecksRun;
      if (!Rc.Ok) {
        R.Steps = M->stats().Steps;
        SaveStats();
        dumpFailure(R, "check-failure", Rc.Error,
                    Inc ? "incremental" : "full", Check.CheckCodeRegion);
        R.Error = "preservation violation: " + Rc.Error;
        return R;
      }
      // Configurable oracle cadence: the incremental verdict must agree
      // with the full checker's on every state both see.
      if (Inc && Opts.FullCheckEvery != 0 &&
          ChecksRun % Opts.FullCheckEvery == 0) {
        gc::StateCheckResult Rf = gc::checkState(*M, Check);
        if (!Rf.Ok) {
          R.Steps = M->stats().Steps;
          SaveStats();
          dumpFailure(R, "check-failure", Rf.Error, "full",
                      Check.CheckCodeRegion);
          R.Error = "incremental checker missed a violation: " + Rf.Error;
          return R;
        }
      }
    }
  }
  SaveStats();
  R.Steps = M->stats().Steps;
  if (M->status() != gc::Machine::Status::Halted) {
    R.Error = M->status() == gc::Machine::Status::Running
                  ? "machine did not halt within the step budget"
                  : M->stuckReason();
    return R;
  }
  const gc::Value *V = M->haltValue();
  if (!V || !V->is(gc::ValueKind::Int)) {
    R.Error = "machine halted with a non-integer";
    return R;
  }
  R.Ok = true;
  R.Value = V->intValue();
  return R;
}

RunResult Pipeline::runMachineAsync(uint64_t MaxSteps, uint32_t CheckEveryN) {
  TRACE_SCOPE("pipeline", "run.machine.async");
  RunResult R;
  M->start(Translated.Main);

  bool Restrict = Opts.Level == gc::LanguageLevel::Forward;
  gc::AsyncCheckSession::Options SOpts;
  SOpts.Check.RestrictToReachable = Restrict;
  SOpts.QueueCapacity = Opts.AsyncQueueCapacity;
  gc::AsyncCheckSession Session(*M, SOpts);
  // Oracle cadence (FullCheckEvery) still runs synchronously inline — it
  // is a paranoia cross-check of the engine, not part of the pipeline.
  gc::StateCheckOptions Check;
  Check.RestrictToReachable = Restrict;
  Check.CheckCodeRegion = false;
  uint64_t ChecksRun = 0;

  auto SaveStats = [&](gc::AsyncVerdict &V) {
    AsyncStats = Session.stats();
    CheckStats = AsyncStats.Engine;
    if (!V.Ok) {
      R.Steps = V.Steps;
      // Async caveat: the machine has stepped past the verdict's state by
      // the time the verdict lands, so this bundle records the state at
      // dump time, not at V.Steps (the manifest keeps the verdict text).
      dumpFailure(R, "check-failure", V.Error, "incremental", V.initial());
      R.Error = (V.initial() ? "initial state ill-formed: "
                             : "preservation violation: ") +
                std::move(V.Error);
    }
  };

  Session.capture(); // unit 0: the attach / initial-state check

  for (uint64_t I = 0; I != MaxSteps; ++I) {
    if (M->status() != gc::Machine::Status::Running)
      break;
    if (Session.failed())
      break; // verdict resolved at finish() below
    if (Opts.AbortRequested &&
        Opts.AbortRequested->load(std::memory_order_relaxed)) {
      gc::AsyncVerdict V = Session.finish();
      SaveStats(V);
      if (V.Ok) {
        std::string Diag =
            "watchdog stall at step " + std::to_string(M->stats().Steps);
        R.Steps = M->stats().Steps;
        dumpFailure(R, "stall", Diag, "", /*CheckCodeRegion=*/false);
        R.Error = "session aborted: " + Diag;
      }
      return R;
    }
    gc::Machine::Status S = M->step();
    if (Opts.Heartbeat)
      Opts.Heartbeat->store(M->stats().Steps, std::memory_order_relaxed);
    if (S == gc::Machine::Status::Stuck) {
      // Pending units were captured at earlier steps: a failure among
      // them is what a synchronous run would have stopped on before ever
      // reaching this stuck state, so it takes precedence.
      gc::AsyncVerdict V = Session.finish();
      SaveStats(V);
      if (V.Ok) {
        R.Steps = M->stats().Steps;
        dumpFailure(R, "stuck", M->stuckReason(), "",
                    /*CheckCodeRegion=*/false);
        R.Error = "machine stuck (progress violation): " + M->stuckReason();
      }
      return R;
    }
    if (I % CheckEveryN == 0) {
      if (!Session.capture())
        break;
      ++ChecksRun;
      if (Opts.FullCheckEvery != 0 && ChecksRun % Opts.FullCheckEvery == 0) {
        gc::StateCheckResult Rf = gc::checkState(*M, Check);
        if (!Rf.Ok) {
          // A pending unit at an earlier step outranks the oracle miss,
          // exactly as its synchronous check would have.
          gc::AsyncVerdict V = Session.finish();
          SaveStats(V);
          if (V.Ok) {
            R.Steps = M->stats().Steps;
            dumpFailure(R, "check-failure", Rf.Error, "full",
                        Check.CheckCodeRegion);
            R.Error = "incremental checker missed a violation: " + Rf.Error;
          }
          return R;
        }
      }
    }
  }

  gc::AsyncVerdict V = Session.finish();
  SaveStats(V);
  if (!V.Ok)
    return R;
  R.Steps = M->stats().Steps;
  if (M->status() != gc::Machine::Status::Halted) {
    R.Error = M->status() == gc::Machine::Status::Running
                  ? "machine did not halt within the step budget"
                  : M->stuckReason();
    return R;
  }
  const gc::Value *Val = M->haltValue();
  if (!Val || !Val->is(gc::ValueKind::Int)) {
    R.Error = "machine halted with a non-integer";
    return R;
  }
  R.Ok = true;
  R.Value = Val->intValue();
  return R;
}

bool Pipeline::certify(DiagEngine &Diags) {
  return gc::certifyCodeRegion(*M, Diags);
}

void Pipeline::exportMetrics(support::MetricsRegistry &Reg) const {
  M->exportMetrics(Reg);
  CheckStats.exportTo(Reg);
  // Async-session counters only exist when a run actually pipelined; the
  // embedded engine stats re-export the same checker.* values CheckStats
  // just wrote (they are the same numbers in async mode).
  if (AsyncStats.UnitsCaptured)
    AsyncStats.exportTo(Reg);
}
