//===- harness/FuzzMutate.cpp - State and S-expression mutations ----------===//

#include "harness/FuzzMutate.h"

#include "gc/StateCheck.h"
#include "harness/SExprTree.h"

#include <algorithm>
#include <iterator>

using namespace scav;
using namespace scav::gc;
using namespace scav::harness;

const char *scav::harness::stateMutationName(StateMutationKind K) {
  switch (K) {
  case StateMutationKind::CellDanglingRegion:
    return "cell-dangling-region";
  case StateMutationKind::CellOffsetOverrun:
    return "cell-offset-overrun";
  case StateMutationKind::CellShapeSwap:
    return "cell-shape-swap";
  case StateMutationKind::PsiRetype:
    return "psi-retype";
  case StateMutationKind::PsiPhantomCell:
    return "psi-phantom-cell";
  case StateMutationKind::ForwardBitFlip:
    return "forward-bit-flip";
  case StateMutationKind::StaleRegionRef:
    return "stale-region-ref";
  case StateMutationKind::PackPayloadClobber:
    return "pack-payload-clobber";
  case StateMutationKind::CdCodeClobber:
    return "cd-code-clobber";
  }
  return "?";
}

namespace {

/// Deterministic victim ordering: unordered_map iteration order must never
/// leak into seed replay, so candidate lists are sorted by (region, offset).
void sortAddresses(std::vector<Address> &As) {
  std::sort(As.begin(), As.end(), [](Address A, Address B) {
    if (A.R.sym().id() != B.R.sym().id())
      return A.R.sym().id() < B.R.sym().id();
    return A.Offset < B.Offset;
  });
}

/// All live data (non-cd) cells, restricted to term-reachable ones when
/// \p Restrict — a victim Def 7.1 does not allow either checker to skip.
std::vector<Address> dataCells(Machine &M, bool Restrict) {
  // Compact layout: victim enumeration walks Cells directly, so any
  // word-written cells (collector fast paths) must be decoded first.
  M.memory().decodeAll();
  AddressSet Reach;
  if (Restrict)
    Reach = reachableCells(M);
  Symbol Cd = M.context().cd().sym();
  std::vector<Address> Out;
  for (const auto &[S, RD] : M.memory().Regions) {
    if (S == Cd)
      continue;
    for (uint32_t Off = 0; Off != RD.Cells.size(); ++Off) {
      if (!RD.Cells[Off])
        continue;
      Address A{Region::name(S), Off};
      if (Restrict && !Reach.count(A))
        continue;
      Out.push_back(A);
    }
  }
  sortAddresses(Out);
  return Out;
}

/// Live data region names, sorted.
std::vector<Symbol> dataRegions(Machine &M) {
  Symbol Cd = M.context().cd().sym();
  std::vector<Symbol> Out;
  for (const auto &[S, _] : M.memory().Regions)
    if (S != Cd)
      Out.push_back(S);
  std::sort(Out.begin(), Out.end(),
            [](Symbol A, Symbol B) { return A.id() < B.id(); });
  return Out;
}

/// An address into a region that never existed: ill-typed against every Ψ.
const Value *poison(GcContext &C) {
  return C.valAddr(Address{Region::name(C.fresh("fuzzghost")), 0});
}

std::string describe(Machine &M, const char *What, Address A) {
  return std::string(What) + " at " +
         std::string(M.context().name(A.R.sym())) + "." +
         std::to_string(A.Offset);
}

/// Rebuilds \p V with its existential payload replaced by \p NewPayload,
/// preserving witnesses, ∆ bounds, body types, and any inl/inr wrapper.
/// \returns nullptr when \p V contains no pack to clobber.
const Value *clobberPackPayload(GcContext &C, const Value *V,
                                const Value *NewPayload) {
  switch (V->kind()) {
  case ValueKind::PackTag:
    return C.valPackTag(V->var(), V->tagWitness(), NewPayload, V->bodyType());
  case ValueKind::PackTyVar: {
    RegionSet D = V->delta();
    return C.valPackTyVar(V->var(), std::move(D), V->typeWitness(),
                          NewPayload, V->bodyType());
  }
  case ValueKind::PackRegion: {
    RegionSet D = V->delta();
    return C.valPackRegion(V->var(), std::move(D), V->regionWitness(),
                           NewPayload, V->bodyType());
  }
  case ValueKind::Inl: {
    const Value *Inner = clobberPackPayload(C, V->payload(), NewPayload);
    return Inner ? C.valInl(Inner) : nullptr;
  }
  case ValueKind::Inr: {
    const Value *Inner = clobberPackPayload(C, V->payload(), NewPayload);
    return Inner ? C.valInr(Inner) : nullptr;
  }
  default:
    return nullptr;
  }
}

} // namespace

std::optional<AppliedMutation>
scav::harness::applyStateMutation(Machine &M, StateMutationKind K, Rng &Rand,
                                  bool Restrict) {
  GcContext &C = M.context();
  std::vector<Address> Victims = dataCells(M, Restrict);

  auto Pick = [&]() -> std::optional<Address> {
    if (Victims.empty())
      return std::nullopt;
    return Victims[Rand.below(Victims.size())];
  };
  auto Done = [&](Address A, const char *What) {
    return AppliedMutation{K, A, describe(M, What, A)};
  };

  switch (K) {
  case StateMutationKind::CellDanglingRegion: {
    std::optional<Address> A = Pick();
    if (!A || !M.memory().update(*A, poison(C)))
      return std::nullopt;
    return Done(*A, "dangling-region address planted");
  }

  case StateMutationKind::CellOffsetOverrun: {
    std::optional<Address> A = Pick();
    if (!A)
      return std::nullopt;
    std::vector<Symbol> Rs = dataRegions(M);
    Symbol S = Rs[Rand.below(Rs.size())];
    const RegionData *RD = M.memory().region(S);
    uint64_t Extent = RD->Cells.size();
    if (Extent + 4 >= std::numeric_limits<uint32_t>::max())
      return std::nullopt;
    Address Overrun{Region::name(S),
                    static_cast<uint32_t>(Extent + Rand.below(4))};
    if (!M.memory().update(*A, C.valAddr(Overrun)))
      return std::nullopt;
    return Done(*A, "past-extent address planted");
  }

  case StateMutationKind::CellShapeSwap: {
    // Int cell ↦ pair keeps Ψ(a)=int against a pair; anything else ↦ int
    // only when Ψ(a) is not int (recordPut gives int cells type int, so a
    // non-int value never sits at type int in a well-formed pre-state).
    if (Victims.empty())
      return std::nullopt;
    size_t Start = Rand.below(Victims.size());
    for (size_t I = 0; I != Victims.size(); ++I) {
      Address A = Victims[(Start + I) % Victims.size()];
      const Value *V = M.memory().get(A);
      const Value *Repl = nullptr;
      if (V->is(ValueKind::Int))
        Repl = C.valPair(C.valInt(1), C.valInt(2));
      else if (M.psi().lookup(A) != C.typeInt())
        Repl = C.valInt(0);
      if (Repl && M.memory().update(A, Repl))
        return Done(A, "cell shape swapped");
    }
    return std::nullopt;
  }

  case StateMutationKind::PsiRetype: {
    std::optional<Address> A = Pick();
    if (!A)
      return std::nullopt;
    const Value *V = M.memory().get(*A);
    const Type *IntT = C.typeInt();
    M.psi().set(*A, V->is(ValueKind::Int) ? C.typeProd(IntT, IntT) : IntT);
    return Done(*A, "Psi cell type swapped");
  }

  case StateMutationKind::PsiPhantomCell: {
    std::vector<Symbol> Rs = dataRegions(M);
    if (Rs.empty())
      return std::nullopt;
    Symbol S = Rs[Rand.below(Rs.size())];
    uint64_t Extent = M.memory().region(S)->Cells.size();
    if (Extent + 4 >= std::numeric_limits<uint32_t>::max())
      return std::nullopt;
    Address Phantom{Region::name(S),
                    static_cast<uint32_t>(Extent + Rand.below(3))};
    M.psi().set(Phantom, C.typeInt());
    return Done(Phantom, "phantom Psi entry planted");
  }

  case StateMutationKind::ForwardBitFlip: {
    // A tagged (inl) or forwarding (inr) cell becomes a forwarding pointer
    // to nowhere — the sum header says "moved", the payload dangles.
    if (Victims.empty())
      return std::nullopt;
    size_t Start = Rand.below(Victims.size());
    for (size_t I = 0; I != Victims.size(); ++I) {
      Address A = Victims[(Start + I) % Victims.size()];
      const Value *V = M.memory().get(A);
      if (!V->is(ValueKind::Inl) && !V->is(ValueKind::Inr))
        continue;
      if (M.memory().update(A, C.valInr(poison(C))))
        return Done(A, "forwarding bit corrupted");
    }
    return std::nullopt;
  }

  case StateMutationKind::StaleRegionRef: {
    std::optional<Address> A = Pick();
    if (!A)
      return std::nullopt;
    // Create a region through the machine (journaled), point the victim at
    // a cell in it, then drop the region behind the machine's back —
    // exactly what a buggy `only` would leave. invalidatePutTypeCache
    // journals the external surgery, as the incremental contract demands.
    Region Tmp = M.createRegion("fuzzstale", 0);
    const Value *Cell = M.allocate(Tmp, C.valInt(7));
    if (!Cell || !M.memory().update(*A, C.valAddr(Cell->address())))
      return std::nullopt;
    RegionSet Keep;
    for (const auto &[S, _] : M.memory().Regions)
      if (S != Tmp.sym())
        Keep.insert(Region::name(S));
    M.memory().restrictTo(Keep);
    M.psi().removeRegion(Tmp.sym());
    M.invalidatePutTypeCache();
    return Done(*A, "stale dropped-region reference planted");
  }

  case StateMutationKind::PackPayloadClobber: {
    if (Victims.empty())
      return std::nullopt;
    size_t Start = Rand.below(Victims.size());
    for (size_t I = 0; I != Victims.size(); ++I) {
      Address A = Victims[(Start + I) % Victims.size()];
      const Value *Repl =
          clobberPackPayload(C, M.memory().get(A), poison(C));
      if (Repl && M.memory().update(A, Repl))
        return Done(A, "pack payload clobbered");
    }
    return std::nullopt;
  }

  case StateMutationKind::CdCodeClobber: {
    Symbol Cd = C.cd().sym();
    const RegionData *RD = M.memory().region(Cd);
    if (!RD)
      return std::nullopt;
    std::vector<Address> Code;
    for (uint32_t Off = 0; Off != RD->Cells.size(); ++Off)
      if (RD->Cells[Off])
        Code.push_back(Address{C.cd(), Off});
    if (Code.empty())
      return std::nullopt;
    Address A = Code[Rand.below(Code.size())];
    if (!M.memory().update(A, C.valInt(5)))
      return std::nullopt;
    return Done(A, "code cell overwritten with int");
  }
  }
  return std::nullopt;
}

//===----------------------------------------------------------------------===//
// S-expression text mutation
//===----------------------------------------------------------------------===//

namespace {

constexpr char Alphabet[] = "()()((-0123456789abcdefxyz *+<=.\t\n;";
constexpr size_t AlphabetLen = sizeof(Alphabet) - 1;

/// Hostile replacement atoms: the literals and near-literals that have
/// historically crashed parsers, plus structure-confusing keywords.
const char *const HostileAtoms[] = {
    "-x",
    "-",
    "0",
    "-0",
    "99999999999999999999",
    "-99999999999999999999",
    "9223372036854775807",
    "-9223372036854775808",
    "9223372036854775808",
    "12abc",
    "lam",
    "let",
    "put",
    "halt",
    "Int",
    "fn",
};

} // namespace

std::string scav::harness::mutateBytes(std::string Text, Rng &Rand,
                                       unsigned Rounds) {
  for (unsigned I = 0; I != Rounds; ++I) {
    if (Text.empty()) {
      Text.push_back(Alphabet[Rand.below(AlphabetLen)]);
      continue;
    }
    switch (Rand.below(6)) {
    case 0: // overwrite
      Text[Rand.below(Text.size())] = Alphabet[Rand.below(AlphabetLen)];
      break;
    case 1: // insert
      Text.insert(Text.begin() +
                      static_cast<ptrdiff_t>(Rand.below(Text.size() + 1)),
                  Alphabet[Rand.below(AlphabetLen)]);
      break;
    case 2: // delete
      Text.erase(Text.begin() +
                 static_cast<ptrdiff_t>(Rand.below(Text.size())));
      break;
    case 3: // truncate
      Text.resize(Rand.below(Text.size() + 1));
      break;
    case 4: { // duplicate a chunk in place
      size_t P = Rand.below(Text.size());
      size_t L = 1 + Rand.below(std::min<size_t>(16, Text.size() - P));
      Text.insert(P, Text.substr(P, L));
      break;
    }
    case 5: { // swap two bytes
      size_t A = Rand.below(Text.size()), B = Rand.below(Text.size());
      std::swap(Text[A], Text[B]);
      break;
    }
    }
  }
  return Text;
}

std::string scav::harness::mutateNodes(const std::string &Text, Rng &Rand,
                                       unsigned Rounds) {
  size_t Pos = 0;
  std::optional<SNode> Root = readSNode(Text, Pos);
  if (!Root)
    return mutateBytes(Text, Rand, Rounds);

  for (unsigned I = 0; I != Rounds; ++I) {
    // Node pointers go stale across structural edits: re-collect per round.
    std::vector<SNode *> Lists;
    collectSLists(*Root, Lists);
    std::vector<SNode *> All;
    collectSNodes(*Root, All);

    switch (Rand.below(6)) {
    case 0: { // drop a child
      if (Lists.empty())
        break;
      SNode *L = Lists[Rand.below(Lists.size())];
      L->Kids.erase(L->Kids.begin() +
                    static_cast<ptrdiff_t>(Rand.below(L->Kids.size())));
      break;
    }
    case 1: { // duplicate a child
      if (Lists.empty())
        break;
      SNode *L = Lists[Rand.below(Lists.size())];
      size_t At = Rand.below(L->Kids.size());
      SNode Copy = L->Kids[At];
      L->Kids.insert(L->Kids.begin() + static_cast<ptrdiff_t>(At),
                     std::move(Copy));
      break;
    }
    case 2: { // swap two children
      if (Lists.empty())
        break;
      SNode *L = Lists[Rand.below(Lists.size())];
      size_t A = Rand.below(L->Kids.size()), B = Rand.below(L->Kids.size());
      std::swap(L->Kids[A], L->Kids[B]);
      break;
    }
    case 3: { // replace an atom with a hostile one
      std::vector<SNode *> Atoms;
      for (SNode *N : All)
        if (N->IsAtom)
          Atoms.push_back(N);
      if (Atoms.empty())
        break;
      Atoms[Rand.below(Atoms.size())]->Atom =
          HostileAtoms[Rand.below(std::size(HostileAtoms))];
      break;
    }
    case 4: { // wrap a node in a fresh list
      SNode *N = All[Rand.below(All.size())];
      SNode Wrapped = std::move(*N);
      N->IsAtom = false;
      N->Atom.clear();
      N->Kids.clear();
      SNode Head;
      Head.IsAtom = true;
      Head.Atom = HostileAtoms[Rand.below(std::size(HostileAtoms))];
      N->Kids.push_back(std::move(Head));
      N->Kids.push_back(std::move(Wrapped));
      break;
    }
    case 5: { // hoist: replace a list by one of its children
      if (Lists.empty())
        break;
      SNode *L = Lists[Rand.below(Lists.size())];
      SNode Kid = std::move(L->Kids[Rand.below(L->Kids.size())]);
      *L = std::move(Kid);
      break;
    }
    }
  }

  std::string Out;
  printSNode(*Root, Out);
  return Out;
}
