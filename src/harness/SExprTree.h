//===- harness/SExprTree.h - Tolerant S-expression tree ---------*- C++ -*-===//
///
/// \file
/// A minimal S-expression tree for the fuzzing tools: the node mutator and
/// the test-case minimizer both need to read arbitrary (possibly hostile)
/// text, rewrite the tree, and print it back. Unlike the frontends' readers
/// this one reports failure by value and never diagnoses — callers fall
/// back to byte-level operation on unreadable input.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_SEXPRTREE_H
#define SCAV_HARNESS_SEXPRTREE_H

#include <cctype>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace scav::harness {

struct SNode {
  bool IsAtom = false;
  std::string Atom;
  std::vector<SNode> Kids;
};

/// Reads one S-expression from \p Src starting at \p Pos. Depth-capped;
/// nullopt on any lexical problem (unbalanced parens, empty input).
inline std::optional<SNode> readSNode(std::string_view Src, size_t &Pos,
                                      unsigned Depth = 0) {
  auto SkipWs = [&] {
    while (Pos < Src.size() &&
           (std::isspace(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == ';')) {
      if (Src[Pos] == ';')
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      else
        ++Pos;
    }
  };
  SkipWs();
  if (Pos >= Src.size() || Depth > 200)
    return std::nullopt;
  if (Src[Pos] == '(') {
    ++Pos;
    SNode List;
    for (;;) {
      SkipWs();
      if (Pos >= Src.size())
        return std::nullopt;
      if (Src[Pos] == ')') {
        ++Pos;
        return List;
      }
      auto Kid = readSNode(Src, Pos, Depth + 1);
      if (!Kid)
        return std::nullopt;
      List.Kids.push_back(std::move(*Kid));
    }
  }
  if (Src[Pos] == ')')
    return std::nullopt;
  SNode Atom;
  Atom.IsAtom = true;
  size_t Start = Pos;
  while (Pos < Src.size() &&
         !std::isspace(static_cast<unsigned char>(Src[Pos])) &&
         Src[Pos] != '(' && Src[Pos] != ')' && Src[Pos] != ';')
    ++Pos;
  Atom.Atom = std::string(Src.substr(Start, Pos - Start));
  return Atom;
}

inline void printSNode(const SNode &N, std::string &Out) {
  if (N.IsAtom) {
    Out += N.Atom;
    return;
  }
  Out += '(';
  for (size_t I = 0; I != N.Kids.size(); ++I) {
    if (I)
      Out += ' ';
    printSNode(N.Kids[I], Out);
  }
  Out += ')';
}

/// Every node, pre-order; the root is index 0.
inline void collectSNodes(SNode &N, std::vector<SNode *> &Out) {
  Out.push_back(&N);
  for (SNode &K : N.Kids)
    collectSNodes(K, Out);
}

/// Every non-empty list node, pre-order.
inline void collectSLists(SNode &N, std::vector<SNode *> &Out) {
  if (!N.IsAtom && !N.Kids.empty())
    Out.push_back(&N);
  for (SNode &K : N.Kids)
    collectSLists(K, Out);
}

} // namespace scav::harness

#endif // SCAV_HARNESS_SEXPRTREE_H
