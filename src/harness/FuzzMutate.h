//===- harness/FuzzMutate.h - State and S-expression mutations --*- C++ -*-===//
///
/// \file
/// The mutation library behind certgc_fuzz (DESIGN.md §3.8):
///
///  * State mutations: a taxonomy of heap/Ψ corruptions injected into a
///    *live* λGC machine state — each one a violation of ⊢ (M, e) that both
///    the full checkState and the IncrementalStateCheck must reject (and
///    agree on). Every mutation goes through the machine's logged mutation
///    paths (Memory::update, MemoryType::set) or is followed by
///    Machine::invalidatePutTypeCache, so the incremental checker's
///    journal/dirty-log contract holds and any disagreement is a real
///    checker bug, not harness noise.
///
///  * S-expression text mutations: byte-level and node-level rewrites of
///    valid corpus programs, feeding the grammar fuzzer's
///    diagnostic-or-accept-never-crash invariant.
///
/// Everything is driven by the caller's Rng, so a failing case replays
/// from its printed seed.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_FUZZMUTATE_H
#define SCAV_HARNESS_FUZZMUTATE_H

#include "gc/Machine.h"
#include "support/Rng.h"

#include <optional>
#include <string>

namespace scav::harness {

/// Corruption taxonomy. Each kind is *guaranteed-detect*: given a
/// well-formed pre-state and an applicable victim, the resulting state
/// violates ⊢ (M, e) on a cell both checkers must visit.
enum class StateMutationKind : uint8_t {
  /// A data cell's value becomes an address into a region that never
  /// existed (the classic dangling cross-region pointer).
  CellDanglingRegion,
  /// A data cell's value becomes an address past a live region's extent.
  CellOffsetOverrun,
  /// A data cell's value is swapped for a differently-shaped value (int
  /// cell ↦ pair, non-int cell ↦ int) while Ψ keeps the old type.
  CellShapeSwap,
  /// Ψ(a) is retyped against the stored value (Ψ-cell-type swap).
  PsiRetype,
  /// Ψ gains an entry past the region's memory extent — a cell that does
  /// not exist. Fuzzer-found: the checkers' region-wise domain comparison
  /// could not see this until the extent check was added.
  PsiPhantomCell,
  /// λGC-forw forwarding-bit corruption: a tagged cell is rebuilt as
  /// inr(dangling), a forwarding pointer to nowhere.
  ForwardBitFlip,
  /// A reachable cell is pointed at a fresh region which is then dropped
  /// behind the machine's back (stale `only`-dropped region reference).
  StaleRegionRef,
  /// A pack value (∃t / ∃α / ∃r) is rebuilt with the same witness and
  /// body type but a dangling payload.
  PackPayloadClobber,
  /// A cd code cell is overwritten with an integer.
  CdCodeClobber,
};

inline constexpr unsigned NumStateMutationKinds = 9;

const char *stateMutationName(StateMutationKind K);

struct AppliedMutation {
  StateMutationKind Kind;
  gc::Address Target;      ///< The corrupted (or pointing) cell.
  std::string Description; ///< Human-readable triage line.
};

/// Injects one corruption of kind \p K into \p M. Victims are drawn
/// deterministically from \p Rand over a sorted cell list; when
/// \p Restrict (Def 7.1 levels), only term-reachable victims are eligible,
/// so the corruption cannot be tolerated as unreachable garbage.
/// \returns nullopt when no applicable victim exists (e.g. ForwardBitFlip
/// with no tagged cells) — the state is left untouched in that case.
std::optional<AppliedMutation> applyStateMutation(gc::Machine &M,
                                                  StateMutationKind K,
                                                  Rng &Rand, bool Restrict);

/// \p Rounds random byte edits (overwrite / insert / delete / truncate /
/// duplicate-chunk / swap) over S-expression-flavored text.
std::string mutateBytes(std::string Text, Rng &Rand, unsigned Rounds);

/// \p Rounds structural edits (drop / duplicate / swap children, replace
/// atoms with hostile ones, wrap, hoist) on the parsed node tree. Falls
/// back to byte mutation when \p Text is not a readable S-expression.
std::string mutateNodes(const std::string &Text, Rng &Rand, unsigned Rounds);

} // namespace scav::harness

#endif // SCAV_HARNESS_FUZZMUTATE_H
