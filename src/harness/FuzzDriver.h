//===- harness/FuzzDriver.h - Fuzzing and fault-injection modes -*- C++ -*-===//
///
/// \file
/// The three certgc_fuzz modes (DESIGN.md §3.8):
///
///  * fuzzStates     — fault injection into live λGC machine states; the
///                     differential oracle is full checkState vs the
///                     IncrementalStateCheck: both must reject every
///                     injected corruption, and always agree.
///  * fuzzGrammar    — byte/node mutations of valid corpus programs thrown
///                     at both S-expression frontends; the invariant is
///                     diagnostic-or-accept, never crash and never a silent
///                     failure (rejection without a diagnostic).
///  * fuzzPipeline   — ProgramGen programs run end-to-end under differing
///                     configurations (env vs subst evaluation, collector
///                     on/off) with value / step-count / verdict
///                     comparison against the source-level evaluator.
///
/// Every iteration derives its own Rng from BaseSeed + Index, and every
/// failure record starts with a replay line — rerunning with the printed
/// seed and --iters 1 reproduces the exact case.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_FUZZDRIVER_H
#define SCAV_HARNESS_FUZZDRIVER_H

#include "harness/FuzzMutate.h"

#include <array>
#include <string>
#include <vector>

namespace scav::harness {

struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 1000;
  /// When nonzero, run until the wall-clock budget is spent instead of a
  /// fixed iteration count (Iterations then only caps runaway loops).
  double TimeBudgetSeconds = 0;
  /// Restrict to one language level; fuzz all three when unset.
  bool AllLevels = true;
  gc::LanguageLevel Level = gc::LanguageLevel::Base;
  /// Heap layout for every machine the fuzzer builds. Pinning it lets the
  /// compact-vs-legacy differential test run the same seeds under both
  /// representations and demand identical reports.
  gc::HeapLayout Layout = gc::defaultHeapLayout();
  /// Extra corpus entries for the grammar fuzzer, as (is-gc?, text).
  std::vector<std::pair<bool, std::string>> ExtraCorpus;
  /// Print every applied mutation (triage spelunking).
  bool Verbose = false;
  /// Record into the global trace ring while fuzzing so every failure can
  /// capture its trailing event window (fuzzing is not latency-sensitive).
  /// No-op when tracing is compiled out (SCAV_TRACE_OFF).
  bool TraceRing = true;
  /// How many trailing trace events a failure record captures.
  size_t TraceTailEvents = 32;
  /// Deterministic self-test hook: record one synthetic failure before the
  /// first iteration, exercising the whole triage path (replay line, trace
  /// dump, exit code) without needing a real bug. Used by the smoke test.
  bool InjectSelfTestFailure = false;
  /// When non-empty, every failure with a live machine writes a dump
  /// bundle (harness/Dump.h) under this directory and its FuzzFailure
  /// carries the bundle path. Grammar-mode failures (no machine) and the
  /// self-test failure have no bundle.
  std::string DumpDir;
};

struct FuzzFailure {
  std::string Replay;     ///< Command-line fragment that reproduces.
  std::string What;       ///< Invariant that broke.
  std::string Input;      ///< Minimized input (grammar mode) or detail.
  std::string TraceTail;  ///< Last trace events at failure time (may be "").
  std::string BundlePath; ///< Dump bundle (see FuzzOptions::DumpDir).
};

struct FuzzReport {
  uint64_t Iterations = 0;
  uint64_t MutationsApplied = 0;
  uint64_t Skipped = 0; ///< No applicable victim / corpus for the draw.
  /// Healthy outcomes: corruptions rejected by both checkers, mutated
  /// programs cleanly diagnosed or (still well-formed) accepted.
  uint64_t Rejections = 0;
  uint64_t CleanAccepts = 0;
  // Failure outcomes.
  uint64_t FalseAccepts = 0;   ///< Both checkers accepted a corruption.
  uint64_t Disagreements = 0;  ///< Incremental vs full verdicts split.
  uint64_t InvariantViolations = 0;
  std::array<uint64_t, NumStateMutationKinds> PerKind{};
  std::vector<FuzzFailure> Failures;

  bool ok() const {
    return FalseAccepts == 0 && Disagreements == 0 &&
           InvariantViolations == 0;
  }
  /// Crash-triage summary table, one block per run.
  std::string summary(const char *Mode) const;
  void merge(const FuzzReport &Other);
};

FuzzReport fuzzStates(const FuzzOptions &Opts);
FuzzReport fuzzGrammar(const FuzzOptions &Opts);
FuzzReport fuzzPipeline(const FuzzOptions &Opts);

/// One-shot frontend run for certgc_fuzz --parse-one (and the re-exec
/// oracle behind --minimize): \returns 0 when the input is accepted or
/// cleanly diagnosed, 2 when it is rejected without a diagnostic. A crash
/// never returns — which is exactly what the re-exec oracle watches for.
int parseOneForFuzz(bool IsGcProgram, const std::string &Text);

} // namespace scav::harness

#endif // SCAV_HARNESS_FUZZDRIVER_H
