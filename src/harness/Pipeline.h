//===- harness/Pipeline.h - Whole-pipeline driver ---------------*- C++ -*-===//
///
/// \file
/// Drives a source program through the full certified-GC pipeline:
///
///   STLC source ──cps──▶ CPS IR ──cc──▶ λCLOS ──Fig 3──▶ λGC machine
///                                                        + collector
///
/// and can evaluate the program at every stage, which is how the
/// differential-semantics tests (T4) and all the benchmarks are built.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_PIPELINE_H
#define SCAV_HARNESS_PIPELINE_H

#include "clos/Clos.h"
#include "gc/AsyncCheck.h"
#include "gc/CollectorBasic.h"
#include "gc/CollectorForward.h"
#include "gc/CollectorGen.h"
#include "gc/StateCheck.h"
#include "gc/Translate.h"
#include "vm/Vm.h"

#include <atomic>
#include <memory>
#include <optional>

namespace scav::harness {

struct PipelineOptions {
  gc::LanguageLevel Level = gc::LanguageLevel::Base;
  gc::MachineConfig Machine;
  /// Install the level's certified collector and wire ifgc to it. When
  /// false, translated functions have no collection point (baseline runs).
  bool InstallCollector = true;
  /// Generational level only: also install the certified *major* collector
  /// and trigger it when the old generation fills.
  bool InstallMajorCollector = false;
  /// Use the incremental checker (delta journal + cached cell judgments,
  /// StateCheck.h) for runMachine's per-N checks instead of re-running the
  /// full checkState each time. The full checker remains the oracle; see
  /// FullCheckEvery.
  bool IncrementalCheck = true;
  /// When nonzero (and IncrementalCheck is on), every N-th per-step check
  /// also runs the full checkState and requires verdict agreement — a
  /// configurable full-check cadence for paranoid runs. 0 = incremental
  /// only.
  uint32_t FullCheckEvery = 0;
  /// Run the per-N checks on a dedicated checker thread (gc/AsyncCheck.h):
  /// runMachine captures state deltas at every check point and keeps
  /// stepping while the checker validates them in order. Verdicts — the
  /// diagnostic text and the step they apply to — are byte-identical to a
  /// synchronous incremental run's. Requires IncrementalCheck; Vm eval
  /// mode falls back to synchronous checking (the bytecode backend does
  /// not maintain the raw term/environment pair captures ship).
  bool AsyncCheck = false;
  /// Async only: check units in flight before capture blocks; when the
  /// checker falls a full queue + timeout behind, the lag net certifies
  /// synchronously and resyncs (see AsyncCheckSession::Options).
  size_t AsyncQueueCapacity = 256;
  /// Layer this pipeline's GcContext over a *frozen* read-only shared base
  /// (GcContext's shared-base constructor): the base's interning tables
  /// serve the warm common vocabulary, session-local inserts stay local.
  /// The base must outlive the pipeline. nullptr = own a standalone
  /// context, as before.
  const gc::GcContext *SharedBase = nullptr;
  /// Fresh-name namespace for this pipeline's context (e.g. "s3." for
  /// serve session 3). Must end in a separator character so namespaces
  /// are prefix-free across sessions ("s3." vs "s31."). Empty = the
  /// default global namespace. Required non-empty when SharedBase is set —
  /// concurrent sessions over one base must mint disjoint spellings.
  std::string FreshNamespace;

  // Observability (DESIGN.md §3.14).

  /// When non-empty, a failed runMachine (checker rejection, stuck
  /// machine, watchdog abort) writes a dump bundle (harness/Dump.h) under
  /// this directory; RunResult::DumpPath names the bundle.
  std::string DumpDir;
  /// Replay command line recorded in dump-bundle manifests.
  std::string ReplayCmd;
  /// Metrics registry snapshotted into bundles (null = no metrics.json).
  const support::MetricsRegistry *DumpMetrics = nullptr;
  /// When set, the step loop publishes the machine's step count here after
  /// every step (relaxed) — the serve watchdog's per-session heartbeat.
  std::atomic<uint64_t> *Heartbeat = nullptr;
  /// When set and it becomes true, the step loop abandons the run with a
  /// stall diagnostic (and a "stall" dump bundle). The watchdog thread
  /// only ever *sets* this flag; the session thread itself notices it and
  /// writes the dump, so machine state is never touched cross-thread.
  std::atomic<bool> *AbortRequested = nullptr;
  /// Fault-injection knob (tests/CI): busy-wait before executing this
  /// 1-based step, polling AbortRequested — a deterministic wedged mutator
  /// for the watchdog path. Requires AbortRequested (a no-op otherwise);
  /// synchronous step loop only. 0 = off.
  uint64_t StallAtStep = 0;
  /// Fault-injection knob (tests/CI): corrupt the machine state right
  /// after this 1-based step (FuzzMutate taxonomy, kind CorruptKind mod 9,
  /// rng seed CorruptSeed) so a healthy program forces a checker rejection
  /// — and hence a dump bundle. Synchronous step loop only. 0 = off.
  uint64_t CorruptAtStep = 0;
  unsigned CorruptKind = 0;
  uint64_t CorruptSeed = 1;
};

struct RunResult {
  bool Ok = false;
  int64_t Value = 0;
  std::string Error;
  uint64_t Steps = 0;
  /// Dump-bundle directory for a failed run ("" when dumping is off, the
  /// run succeeded, or the bundle write itself failed).
  std::string DumpPath;
};

/// Resolves the per-step check cadence: the SCAV_CHECK_EVERY environment
/// variable when set to a valid unsigned integer, else \p Fallback —
/// malformed values are diagnosed on stderr before falling back
/// (support/ParseInt.h). Shared by the drivers so one env var steers every
/// harness entry point.
uint32_t checkEveryFromEnv(uint32_t Fallback);

/// Resolves the default evaluation mode: SCAV_EVAL_MODE when set to a valid
/// mode name (env|subst|vm), else \p Fallback; malformed values are
/// diagnosed on stderr before falling back. Drivers that prefer to
/// hard-fail on a bad value (certgc_run) parse the variable themselves.
gc::EvalMode evalModeFromEnv(gc::EvalMode Fallback);

/// Shared trace bootstrap for every driver: when the SCAV_TRACE environment
/// variable is set (and tracing is compiled in), enables the global trace
/// ring and returns the Chrome-JSON output path the caller should write at
/// exit — the variable's value, or the empty string for values like "1"
/// that just switch tracing on. Returns nullopt when unset (or compiled
/// out): tracing stays disabled.
std::optional<std::string> traceOutFromEnv();

/// Owns every context of one compilation pipeline.
class Pipeline {
public:
  explicit Pipeline(PipelineOptions Opts = {});

  /// Parses + typechecks + lowers \p Source all the way into the machine.
  bool compile(std::string_view Source, DiagEngine &Diags);

  /// Same, from an already-built source AST (must live in lambdaContext()).
  bool compileExpr(const lambda::Expr *E, DiagEngine &Diags);

  // Stage artifacts (valid after compile succeeds).
  const lambda::Expr *sourceExpr() const { return Src; }
  const cps::Exp *cpsExp() const { return Cps; }
  const clos::Program &closProgram() const { return Clos; }
  const gc::Term *mainTerm() const { return Translated.Main; }
  gc::Address gcEntry() const { return GcEntry; }
  gc::Address majorGcEntry() const { return MajorGcEntry; }

  // Contexts.
  gc::GcContext &gcContext() { return *GC; }
  lambda::LambdaContext &lambdaContext() { return *LC; }
  cps::CpsContext &cpsContext() { return *CC; }
  clos::ClosContext &closContext() { return *CL; }
  gc::Machine &machine() { return *M; }

  /// Reference evaluations at each stage.
  RunResult runSource(uint64_t Fuel = 10'000'000);
  RunResult runCps(uint64_t Fuel = 10'000'000);
  RunResult runClos(uint64_t Fuel = 10'000'000);

  /// Runs the translated program on the λGC machine. With CheckEveryN != 0,
  /// re-establishes ⊢ (M, e) every N steps (1 = per-step) and checks
  /// progress throughout.
  RunResult runMachine(uint64_t MaxSteps = 5'000'000,
                       uint32_t CheckEveryN = 0);

  /// Re-runs compile-time certification of the cd region (collector +
  /// translated mutator code).
  bool certify(DiagEngine &Diags);

  /// Publishes machine counters/gauges plus the last runMachine's checker
  /// stats into the shared registry ("machine.*", "memory.*", "checker.*").
  void exportMetrics(support::MetricsRegistry &Reg) const;

  /// Stats from the incremental checker of the most recent runMachine
  /// (all-zero if checking was off or ran the full checker). In async mode
  /// these are the mirror-side engine's counters.
  const gc::IncrementalCheckStats &checkerStats() const { return CheckStats; }

  /// Async-session stats of the most recent runMachine (all-zero unless
  /// Opts.AsyncCheck took effect).
  const gc::AsyncCheckStats &asyncCheckStats() const { return AsyncStats; }

private:
  PipelineOptions Opts;
  std::unique_ptr<gc::GcContext> GC;
  std::unique_ptr<lambda::LambdaContext> LC;
  std::unique_ptr<cps::CpsContext> CC;
  std::unique_ptr<clos::ClosContext> CL;
  std::unique_ptr<gc::Machine> M;
  /// Bytecode backend, constructed only when Opts.Machine.Eval == Vm.
  /// Declared after M so it detaches/destructs first.
  std::unique_ptr<vm::VmExec> Vm;

  const lambda::Expr *Src = nullptr;
  const cps::Exp *Cps = nullptr;
  clos::Program Clos;
  gc::TranslatedProgram Translated;
  gc::Address GcEntry = gc::noCollector();
  gc::Address MajorGcEntry = gc::noCollector();
  gc::IncrementalCheckStats CheckStats;
  gc::AsyncCheckStats AsyncStats;

  RunResult runMachineAsync(uint64_t MaxSteps, uint32_t CheckEveryN);

  /// Writes a dump bundle for the current machine state when Opts.DumpDir
  /// is set; fills \p R.DumpPath. \p Diagnostic is the raw checker/stuck
  /// text (no "preservation violation: " prefix — certgc_inspect compares
  /// it byte-for-byte against the offline re-check).
  void dumpFailure(RunResult &R, const char *Kind,
                   const std::string &Diagnostic, const char *Checker,
                   bool CheckCodeRegion);
};

} // namespace scav::harness

#endif // SCAV_HARNESS_PIPELINE_H
