//===- harness/Minimize.cpp - S-expression test-case minimization ---------===//

#include "harness/Minimize.h"

#include "harness/SExprTree.h"

#include <algorithm>

using namespace scav;
using namespace scav::harness;

namespace {

struct Budget {
  unsigned Left;
  bool spend() {
    if (Left == 0)
      return false;
    --Left;
    return true;
  }
};

/// One pass of byte-chunk deletion, largest chunks first (ddmin-flavored):
/// works on inputs too broken to read as S-expressions. Returns true when
/// anything shrank.
bool chunkPass(std::string &Text, const MinimizeOracle &StillFails,
               Budget &B) {
  bool Progress = false;
  for (size_t Chunk = std::max<size_t>(1, Text.size() / 2); Chunk >= 1;
       Chunk /= 2) {
    for (size_t At = 0; At + Chunk <= Text.size();) {
      std::string Candidate = Text.substr(0, At) + Text.substr(At + Chunk);
      if (!B.spend())
        return Progress;
      if (StillFails(Candidate)) {
        Text = std::move(Candidate);
        Progress = true;
        // Same At now names the next chunk.
      } else {
        At += Chunk;
      }
    }
    if (Chunk == 1)
      break;
  }
  return Progress;
}

/// One pass of structural shrinking: try deleting every node (children of
/// lists) and hoisting every list to each of its children. Returns true
/// when anything shrank; false also when the text is not an S-expression.
bool nodePass(std::string &Text, const MinimizeOracle &StillFails,
              Budget &B) {
  bool Progress = false;
  for (bool Again = true; Again;) {
    Again = false;
    size_t Pos = 0;
    std::optional<SNode> Root = readSNode(Text, Pos);
    if (!Root)
      return Progress;

    std::vector<SNode *> Lists;
    collectSLists(*Root, Lists);
    // Try each (list, child) deletion against the oracle; restart the
    // whole pass after a hit since every node pointer is stale.
    for (SNode *L : Lists) {
      for (size_t I = 0; I != L->Kids.size(); ++I) {
        SNode Removed = std::move(L->Kids[I]);
        L->Kids.erase(L->Kids.begin() + static_cast<ptrdiff_t>(I));
        std::string Candidate;
        printSNode(*Root, Candidate);
        if (!B.spend())
          return Progress;
        if (StillFails(Candidate)) {
          Text = std::move(Candidate);
          Progress = Again = true;
          break;
        }
        L->Kids.insert(L->Kids.begin() + static_cast<ptrdiff_t>(I),
                       std::move(Removed));
      }
      if (Again)
        break;
    }
    if (Again)
      continue;

    // Hoist: replace the whole input by each root child in turn.
    if (!Root->IsAtom) {
      for (const SNode &Kid : Root->Kids) {
        std::string Candidate;
        printSNode(Kid, Candidate);
        if (Candidate.size() >= Text.size())
          continue;
        if (!B.spend())
          return Progress;
        if (StillFails(Candidate)) {
          Text = std::move(Candidate);
          Progress = Again = true;
          break;
        }
      }
    }
  }
  return Progress;
}

} // namespace

std::string scav::harness::minimizeSExpr(std::string Input,
                                         const MinimizeOracle &StillFails,
                                         unsigned MaxOracleCalls) {
  Budget B{MaxOracleCalls};
  for (bool Progress = true; Progress && B.Left;) {
    Progress = false;
    if (nodePass(Input, StillFails, B))
      Progress = true;
    if (chunkPass(Input, StillFails, B))
      Progress = true;
  }
  return Input;
}
