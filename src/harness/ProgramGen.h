//===- harness/ProgramGen.h - Random well-typed program generator -*-C++-*-=//
///
/// \file
/// Generates random *well-typed, terminating* source programs for the
/// property-based soundness tests (T1) and the differential tests (T4).
///
/// Two layers:
///  * genPure: type-directed generation of non-recursive expressions
///    (always terminates, exercises pairs/closures/higher-order code);
///  * genProgram: wraps pure expressions into one of several recursion
///    skeletons (loops, closure chains, closure trees) whose recursion
///    variable strictly decreases — the generated heap churn is what makes
///    collections fire.
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_HARNESS_PROGRAMGEN_H
#define SCAV_HARNESS_PROGRAMGEN_H

#include "lambda/Lambda.h"
#include "support/Rng.h"

namespace scav::harness {

struct GenOptions {
  /// Maximum expression depth of pure subterms.
  unsigned MaxDepth = 5;
  /// Iteration bound fed to the recursion skeletons.
  int64_t MaxIterations = 12;
};

/// Generates a closed expression of the given type. Always terminating.
const lambda::Expr *genPure(lambda::LambdaContext &C, Rng &R,
                            const lambda::Type *Want, unsigned Depth,
                            const GenOptions &Opts = {});

/// Generates a whole random program of type Int that allocates enough to
/// drive collections.
const lambda::Expr *genProgram(lambda::LambdaContext &C, Rng &R,
                               const GenOptions &Opts = {});

} // namespace scav::harness

#endif // SCAV_HARNESS_PROGRAMGEN_H
