//===- lambda/TypeCheck.cpp - STLC typechecker -----------------------------===//

#include "lambda/Lambda.h"

using namespace scav;
using namespace scav::lambda;

bool scav::lambda::typeEqual(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Int:
    return true;
  case TypeKind::Arrow:
    return typeEqual(A->from(), B->from()) && typeEqual(A->to(), B->to());
  case TypeKind::Prod:
    return typeEqual(A->left(), B->left()) && typeEqual(A->right(), B->right());
  }
  return false;
}

const Type *scav::lambda::typeOf(LambdaContext &C, const Expr *E,
                                 const TypeEnv &Env, DiagEngine &Diags) {
  auto Fail = [&](const std::string &Msg) -> const Type * {
    Diags.error(Msg);
    return nullptr;
  };

  switch (E->kind()) {
  case ExprKind::Int:
    return C.tyInt();

  case ExprKind::Var: {
    auto It = Env.find(E->var());
    if (It == Env.end())
      return Fail("unbound variable " + std::string(C.name(E->var())));
    return It->second;
  }

  case ExprKind::Lam: {
    TypeEnv Inner = Env;
    Inner[E->var()] = E->annot();
    const Type *Body = typeOf(C, E->sub1(), Inner, Diags);
    if (!Body)
      return nullptr;
    return C.tyArrow(E->annot(), Body);
  }

  case ExprKind::Fix: {
    const Type *FnTy = C.tyArrow(E->annot(), E->annot2());
    TypeEnv Inner = Env;
    Inner[E->var()] = FnTy;
    Inner[E->var2()] = E->annot();
    const Type *Body = typeOf(C, E->sub1(), Inner, Diags);
    if (!Body)
      return nullptr;
    if (!typeEqual(Body, E->annot2()))
      return Fail("fix body type does not match declared result type");
    return FnTy;
  }

  case ExprKind::App: {
    const Type *Fun = typeOf(C, E->sub1(), Env, Diags);
    const Type *Arg = typeOf(C, E->sub2(), Env, Diags);
    if (!Fun || !Arg)
      return nullptr;
    if (!Fun->is(TypeKind::Arrow))
      return Fail("application of non-function of type " + printType(C, Fun));
    if (!typeEqual(Fun->from(), Arg))
      return Fail("argument type mismatch: expected " +
                  printType(C, Fun->from()) + ", got " + printType(C, Arg));
    return Fun->to();
  }

  case ExprKind::Pair: {
    const Type *L = typeOf(C, E->sub1(), Env, Diags);
    const Type *R = typeOf(C, E->sub2(), Env, Diags);
    if (!L || !R)
      return nullptr;
    return C.tyProd(L, R);
  }

  case ExprKind::Fst:
  case ExprKind::Snd: {
    const Type *P = typeOf(C, E->sub1(), Env, Diags);
    if (!P)
      return nullptr;
    if (!P->is(TypeKind::Prod))
      return Fail("projection from non-pair of type " + printType(C, P));
    return E->is(ExprKind::Fst) ? P->left() : P->right();
  }

  case ExprKind::Let: {
    const Type *Bound = typeOf(C, E->sub1(), Env, Diags);
    if (!Bound)
      return nullptr;
    TypeEnv Inner = Env;
    Inner[E->var()] = Bound;
    return typeOf(C, E->sub2(), Inner, Diags);
  }

  case ExprKind::Prim: {
    const Type *L = typeOf(C, E->sub1(), Env, Diags);
    const Type *R = typeOf(C, E->sub2(), Env, Diags);
    if (!L || !R)
      return nullptr;
    if (!L->is(TypeKind::Int) || !R->is(TypeKind::Int))
      return Fail("primitive operands must be Int");
    return C.tyInt();
  }

  case ExprKind::If0: {
    const Type *S = typeOf(C, E->sub1(), Env, Diags);
    if (!S)
      return nullptr;
    if (!S->is(TypeKind::Int))
      return Fail("if0 scrutinee must be Int");
    const Type *Z = typeOf(C, E->sub2(), Env, Diags);
    const Type *N = typeOf(C, E->sub3(), Env, Diags);
    if (!Z || !N)
      return nullptr;
    if (!typeEqual(Z, N))
      return Fail("if0 branches have different types: " + printType(C, Z) +
                  " vs " + printType(C, N));
    return Z;
  }
  }
  return nullptr;
}

const Type *scav::lambda::typeCheck(LambdaContext &C, const Expr *E,
                                    DiagEngine &Diags) {
  TypeEnv Empty;
  return typeOf(C, E, Empty, Diags);
}
