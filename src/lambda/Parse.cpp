//===- lambda/Parse.cpp - S-expression parser and printer -------------------===//

#include "lambda/Lambda.h"

#include "support/ParseInt.h"

#include <cctype>

using namespace scav;
using namespace scav::lambda;

namespace {

/// A parsed s-expression: an atom or a list.
struct SExpr {
  bool IsAtom = false;
  std::string Atom;
  std::vector<SExpr> Items;
};

/// Lists beyond this nesting depth are rejected with a diagnostic: the
/// reader (and the AST builder after it) recurse per nesting level, so
/// unbounded depth is a stack overflow waiting for adversarial input. Far
/// deeper than any program the pipeline emits.
constexpr unsigned MaxNestingDepth = 1000;

struct SParser {
  std::string_view Src;
  size_t Pos = 0;
  DiagEngine &Diags;
  unsigned Depth = 0;

  void skipWs() {
    while (Pos < Src.size()) {
      if (std::isspace(static_cast<unsigned char>(Src[Pos]))) {
        ++Pos;
      } else if (Src[Pos] == ';') { // comment to end of line
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool atEnd() {
    skipWs();
    return Pos >= Src.size();
  }

  std::optional<SExpr> parse() {
    skipWs();
    if (Pos >= Src.size()) {
      Diags.error("unexpected end of input");
      return std::nullopt;
    }
    if (Src[Pos] == '(') {
      if (++Depth > MaxNestingDepth) {
        Diags.error("expression nesting too deep (limit " +
                    std::to_string(MaxNestingDepth) + ")");
        return std::nullopt;
      }
      ++Pos;
      SExpr List;
      for (;;) {
        skipWs();
        if (Pos >= Src.size()) {
          Diags.error("unterminated list");
          return std::nullopt;
        }
        if (Src[Pos] == ')') {
          ++Pos;
          --Depth;
          return List;
        }
        auto Item = parse();
        if (!Item)
          return std::nullopt;
        List.Items.push_back(std::move(*Item));
      }
    }
    if (Src[Pos] == ')') {
      Diags.error("unexpected ')'");
      return std::nullopt;
    }
    SExpr Atom;
    Atom.IsAtom = true;
    size_t Start = Pos;
    while (Pos < Src.size() &&
           !std::isspace(static_cast<unsigned char>(Src[Pos])) &&
           Src[Pos] != '(' && Src[Pos] != ')' && Src[Pos] != ';')
      ++Pos;
    Atom.Atom = std::string(Src.substr(Start, Pos - Start));
    return Atom;
  }
};

/// Binder names must not look like integer literals.
static bool isIdent(const std::string &A) {
  if (A.empty())
    return false;
  if (std::isdigit(static_cast<unsigned char>(A[0])))
    return false;
  if (A[0] == '-' && A.size() > 1 &&
      std::isdigit(static_cast<unsigned char>(A[1])))
    return false;
  return true;
}

struct AstBuilder {
  LambdaContext &C;
  DiagEngine &Diags;

  const Type *fail(const std::string &Msg) {
    Diags.error(Msg);
    return nullptr;
  }
  const Expr *failE(const std::string &Msg) {
    Diags.error(Msg);
    return nullptr;
  }

  const Type *type(const SExpr &S) {
    if (S.IsAtom) {
      if (S.Atom == "Int")
        return C.tyInt();
      return fail("unknown type atom '" + S.Atom + "'");
    }
    if (S.Items.size() == 3 && S.Items[0].IsAtom) {
      const Type *A = type(S.Items[1]);
      const Type *B = type(S.Items[2]);
      if (!A || !B)
        return nullptr;
      if (S.Items[0].Atom == "->")
        return C.tyArrow(A, B);
      if (S.Items[0].Atom == "*")
        return C.tyProd(A, B);
    }
    return fail("malformed type");
  }

  std::optional<PrimOp> primOf(const std::string &A) {
    if (A == "+")
      return PrimOp::Add;
    if (A == "-")
      return PrimOp::Sub;
    if (A == "*")
      return PrimOp::Mul;
    if (A == "<=")
      return PrimOp::Le;
    return std::nullopt;
  }

  const Expr *expr(const SExpr &S) {
    if (S.IsAtom) {
      const std::string &A = S.Atom;
      // Digit-shaped atoms must parse fully as int64 or be diagnosed:
      // std::stoll here aborted the process on atoms like `12abc`
      // (invalid_argument after the digits) or `99999999999999999999`
      // (out_of_range). Atoms like `-x` are identifiers, matching isIdent.
      if (!A.empty() &&
          (std::isdigit(static_cast<unsigned char>(A[0])) ||
           (A[0] == '-' && A.size() > 1 &&
            std::isdigit(static_cast<unsigned char>(A[1]))))) {
        if (std::optional<int64_t> N = parseInt64(A))
          return C.intLit(*N);
        return failE("malformed or out-of-range integer literal '" + A +
                     "'");
      }
      return C.var(C.intern(A));
    }
    if (S.Items.empty() || !S.Items[0].IsAtom)
      return failE("malformed expression");
    const std::string &Head = S.Items[0].Atom;
    auto Arity = [&](size_t N) {
      if (S.Items.size() == N + 1)
        return true;
      Diags.error("'" + Head + "' expects " + std::to_string(N) +
                  " arguments");
      return false;
    };

    if (Head == "lam") {
      // (lam (x T) body)
      if (!Arity(2) || S.Items[1].IsAtom || S.Items[1].Items.size() != 2 ||
          !S.Items[1].Items[0].IsAtom || !isIdent(S.Items[1].Items[0].Atom))
        return failE("malformed lam");
      const Type *T = type(S.Items[1].Items[1]);
      const Expr *Body = expr(S.Items[2]);
      if (!T || !Body)
        return nullptr;
      return C.lam(C.intern(S.Items[1].Items[0].Atom), T, Body);
    }
    if (Head == "fix") {
      // (fix f (x T) RetT body)
      if (S.Items.size() != 5 || !S.Items[1].IsAtom ||
          !isIdent(S.Items[1].Atom) || S.Items[2].IsAtom ||
          S.Items[2].Items.size() != 2 || !S.Items[2].Items[0].IsAtom ||
          !isIdent(S.Items[2].Items[0].Atom))
        return failE("malformed fix");
      const Type *PT = type(S.Items[2].Items[1]);
      const Type *RT = type(S.Items[3]);
      const Expr *Body = expr(S.Items[4]);
      if (!PT || !RT || !Body)
        return nullptr;
      return C.fix(C.intern(S.Items[1].Atom),
                   C.intern(S.Items[2].Items[0].Atom), PT, RT, Body);
    }
    if (Head == "app") {
      if (!Arity(2))
        return nullptr;
      const Expr *F = expr(S.Items[1]);
      const Expr *A = expr(S.Items[2]);
      return F && A ? C.app(F, A) : nullptr;
    }
    if (Head == "pair") {
      if (!Arity(2))
        return nullptr;
      const Expr *L = expr(S.Items[1]);
      const Expr *R = expr(S.Items[2]);
      return L && R ? C.pair(L, R) : nullptr;
    }
    if (Head == "fst" || Head == "snd") {
      if (!Arity(1))
        return nullptr;
      const Expr *P = expr(S.Items[1]);
      if (!P)
        return nullptr;
      return Head == "fst" ? C.fst(P) : C.snd(P);
    }
    if (Head == "let") {
      // (let x e1 e2)
      if (!Arity(3) || !S.Items[1].IsAtom || !isIdent(S.Items[1].Atom))
        return failE("malformed let");
      const Expr *E1 = expr(S.Items[2]);
      const Expr *E2 = expr(S.Items[3]);
      return E1 && E2 ? C.let(C.intern(S.Items[1].Atom), E1, E2) : nullptr;
    }
    if (Head == "if0") {
      if (!Arity(3))
        return nullptr;
      const Expr *A = expr(S.Items[1]);
      const Expr *B = expr(S.Items[2]);
      const Expr *D = expr(S.Items[3]);
      return A && B && D ? C.if0(A, B, D) : nullptr;
    }
    if (auto P = primOf(Head)) {
      if (!Arity(2))
        return nullptr;
      const Expr *L = expr(S.Items[1]);
      const Expr *R = expr(S.Items[2]);
      return L && R ? C.prim(*P, L, R) : nullptr;
    }
    return failE("unknown form '" + Head + "'");
  }
};

} // namespace

const Expr *scav::lambda::parseExpr(LambdaContext &C, std::string_view Src,
                                    DiagEngine &Diags) {
  SParser P{Src, 0, Diags};
  auto S = P.parse();
  if (!S)
    return nullptr;
  if (!P.atEnd()) {
    Diags.error("trailing input after expression");
    return nullptr;
  }
  AstBuilder B{C, Diags};
  return B.expr(*S);
}

const Type *scav::lambda::parseType(LambdaContext &C, std::string_view Src,
                                    DiagEngine &Diags) {
  SParser P{Src, 0, Diags};
  auto S = P.parse();
  if (!S)
    return nullptr;
  AstBuilder B{C, Diags};
  return B.type(*S);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string scav::lambda::printType(const LambdaContext &C, const Type *T) {
  switch (T->kind()) {
  case TypeKind::Int:
    return "Int";
  case TypeKind::Arrow:
    return "(-> " + printType(C, T->from()) + " " + printType(C, T->to()) +
           ")";
  case TypeKind::Prod:
    return "(* " + printType(C, T->left()) + " " + printType(C, T->right()) +
           ")";
  }
  return "?";
}

std::string scav::lambda::printExpr(const LambdaContext &C, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Int:
    return std::to_string(E->intValue());
  case ExprKind::Var:
    return std::string(C.name(E->var()));
  case ExprKind::Lam:
    return "(lam (" + std::string(C.name(E->var())) + " " +
           printType(C, E->annot()) + ") " + printExpr(C, E->sub1()) + ")";
  case ExprKind::Fix:
    return "(fix " + std::string(C.name(E->var())) + " (" +
           std::string(C.name(E->var2())) + " " + printType(C, E->annot()) +
           ") " + printType(C, E->annot2()) + " " + printExpr(C, E->sub1()) +
           ")";
  case ExprKind::App:
    return "(app " + printExpr(C, E->sub1()) + " " + printExpr(C, E->sub2()) +
           ")";
  case ExprKind::Pair:
    return "(pair " + printExpr(C, E->sub1()) + " " + printExpr(C, E->sub2()) +
           ")";
  case ExprKind::Fst:
    return "(fst " + printExpr(C, E->sub1()) + ")";
  case ExprKind::Snd:
    return "(snd " + printExpr(C, E->sub1()) + ")";
  case ExprKind::Let:
    return "(let " + std::string(C.name(E->var())) + " " +
           printExpr(C, E->sub1()) + " " + printExpr(C, E->sub2()) + ")";
  case ExprKind::Prim: {
    const char *Op = "+";
    switch (E->primOp()) {
    case PrimOp::Add:
      Op = "+";
      break;
    case PrimOp::Sub:
      Op = "-";
      break;
    case PrimOp::Mul:
      Op = "*";
      break;
    case PrimOp::Le:
      Op = "<=";
      break;
    }
    return std::string("(") + Op + " " + printExpr(C, E->sub1()) + " " +
           printExpr(C, E->sub2()) + ")";
  }
  case ExprKind::If0:
    return "(if0 " + printExpr(C, E->sub1()) + " " + printExpr(C, E->sub2()) +
           " " + printExpr(C, E->sub3()) + ")";
  }
  return "?";
}
