//===- lambda/Eval.cpp - Big-step evaluator ---------------------------------===//
///
/// \file
/// Environment-based big-step evaluation with fuel. This is the reference
/// semantics for the whole pipeline: the differential tests require
/// evaluate(e) == λCLOS-eval(cc(cps(e))) == λGC-machine(translate(...)).
///
//===----------------------------------------------------------------------===//

#include "lambda/Lambda.h"

using namespace scav;
using namespace scav::lambda;

namespace {

struct Evaluator {
  uint64_t Fuel;
  uint64_t Steps = 0;
  std::string Error;

  EvalValueRef fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return nullptr;
  }

  EvalValueRef eval(const Expr *E, const std::map<Symbol, EvalValueRef> &Env) {
    if (++Steps > Fuel)
      return fail("out of fuel");

    switch (E->kind()) {
    case ExprKind::Int: {
      auto V = std::make_shared<EvalValue>();
      V->K = EvalValue::Kind::Int;
      V->N = E->intValue();
      return V;
    }
    case ExprKind::Var: {
      auto It = Env.find(E->var());
      if (It == Env.end())
        return fail("unbound variable at runtime");
      return It->second;
    }
    case ExprKind::Lam:
    case ExprKind::Fix: {
      auto V = std::make_shared<EvalValue>();
      V->K = EvalValue::Kind::Closure;
      V->Fun = E;
      V->Env = Env;
      return V;
    }
    case ExprKind::App: {
      EvalValueRef F = eval(E->sub1(), Env);
      EvalValueRef A = eval(E->sub2(), Env);
      if (!F || !A)
        return nullptr;
      if (F->K != EvalValue::Kind::Closure)
        return fail("application of non-closure");
      std::map<Symbol, EvalValueRef> Inner = F->Env;
      if (F->Fun->is(ExprKind::Fix)) {
        Inner[F->Fun->var()] = F;
        Inner[F->Fun->var2()] = A;
      } else {
        Inner[F->Fun->var()] = A;
      }
      return eval(F->Fun->sub1(), Inner);
    }
    case ExprKind::Pair: {
      EvalValueRef L = eval(E->sub1(), Env);
      EvalValueRef R = eval(E->sub2(), Env);
      if (!L || !R)
        return nullptr;
      auto V = std::make_shared<EvalValue>();
      V->K = EvalValue::Kind::Pair;
      V->A = L;
      V->B = R;
      return V;
    }
    case ExprKind::Fst:
    case ExprKind::Snd: {
      EvalValueRef P = eval(E->sub1(), Env);
      if (!P)
        return nullptr;
      if (P->K != EvalValue::Kind::Pair)
        return fail("projection from non-pair");
      return E->is(ExprKind::Fst) ? P->A : P->B;
    }
    case ExprKind::Let: {
      EvalValueRef B = eval(E->sub1(), Env);
      if (!B)
        return nullptr;
      std::map<Symbol, EvalValueRef> Inner = Env;
      Inner[E->var()] = B;
      return eval(E->sub2(), Inner);
    }
    case ExprKind::Prim: {
      EvalValueRef L = eval(E->sub1(), Env);
      EvalValueRef R = eval(E->sub2(), Env);
      if (!L || !R)
        return nullptr;
      if (L->K != EvalValue::Kind::Int || R->K != EvalValue::Kind::Int)
        return fail("primitive on non-integers");
      auto V = std::make_shared<EvalValue>();
      V->K = EvalValue::Kind::Int;
      switch (E->primOp()) {
      case PrimOp::Add:
        V->N = L->N + R->N;
        break;
      case PrimOp::Sub:
        V->N = L->N - R->N;
        break;
      case PrimOp::Mul:
        V->N = L->N * R->N;
        break;
      case PrimOp::Le:
        V->N = L->N <= R->N ? 1 : 0;
        break;
      }
      return V;
    }
    case ExprKind::If0: {
      EvalValueRef S = eval(E->sub1(), Env);
      if (!S)
        return nullptr;
      if (S->K != EvalValue::Kind::Int)
        return fail("if0 of non-integer");
      return eval(S->N == 0 ? E->sub2() : E->sub3(), Env);
    }
    }
    return fail("unknown expression kind");
  }
};

} // namespace

EvalResult scav::lambda::evaluate(const Expr *E, uint64_t Fuel) {
  Evaluator Ev{Fuel, 0, {}};
  std::map<Symbol, EvalValueRef> Empty;
  EvalValueRef V = Ev.eval(E, Empty);
  return EvalResult{V, Ev.Error, Ev.Steps};
}
