//===- lambda/Lambda.h - Typechecker, evaluator, parser, printer -*- C++-*-=//
///
/// \file
/// The rest of the source-language toolkit: a typechecker, a big-step
/// evaluator (closures as values; fuel-limited), an s-expression parser for
/// the textual syntax used by the examples, and a printer.
///
/// Textual syntax:
///   (lam (x Int) body)            λx:Int.body
///   (fix f (x Int) Int body)      fix f(x:Int):Int.body
///   (app f a)                     f a
///   (pair a b) (fst p) (snd p)
///   (let x e1 e2)
///   (+ a b) (- a b) (* a b) (<= a b)
///   (if0 c z nz)
///   Types: Int, (-> T1 T2), (* T1 T2)
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_LAMBDA_LAMBDA_H
#define SCAV_LAMBDA_LAMBDA_H

#include "lambda/Ast.h"
#include "support/Diag.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace scav::lambda {

//===----------------------------------------------------------------------===//
// Typechecker
//===----------------------------------------------------------------------===//

bool typeEqual(const Type *A, const Type *B);

using TypeEnv = std::map<Symbol, const Type *>;

/// Infers the type of \p E under \p Env; nullptr + diagnostics on error.
const Type *typeOf(LambdaContext &C, const Expr *E, const TypeEnv &Env,
                   DiagEngine &Diags);

/// Whole-program check: \p E must be closed and well-typed.
const Type *typeCheck(LambdaContext &C, const Expr *E, DiagEngine &Diags);

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

struct EvalValue;
using EvalValueRef = std::shared_ptr<EvalValue>;

/// Runtime values of the big-step evaluator.
struct EvalValue {
  enum class Kind { Int, Pair, Closure } K;
  int64_t N = 0;
  EvalValueRef A, B;
  // Closure:
  const Expr *Fun = nullptr; // Lam or Fix node
  std::map<Symbol, EvalValueRef> Env;
};

struct EvalResult {
  EvalValueRef Value; ///< null on failure
  std::string Error;
  uint64_t Steps = 0;
};

/// Evaluates a closed expression with a fuel limit.
EvalResult evaluate(const Expr *E, uint64_t Fuel = 10'000'000);

//===----------------------------------------------------------------------===//
// Parser / printer
//===----------------------------------------------------------------------===//

/// Parses the s-expression syntax; nullptr + diagnostics on error.
const Expr *parseExpr(LambdaContext &C, std::string_view Src,
                      DiagEngine &Diags);
const Type *parseType(LambdaContext &C, std::string_view Src,
                      DiagEngine &Diags);

std::string printType(const LambdaContext &C, const Type *T);
std::string printExpr(const LambdaContext &C, const Expr *E);

} // namespace scav::lambda

#endif // SCAV_LAMBDA_LAMBDA_H
