//===- lambda/Ast.h - The source language: STLC + fix ----------*- C++ -*-===//
///
/// \file
/// The source language of §3 — the simply typed λ-calculus — extended with
/// `fix` (recursive functions), integer primitives, and `if0` (see
/// DESIGN.md: the paper's λCLOS has top-level `letrec`, so recursion is
/// already in its world; without it no mutator can build unbounded heap
/// structures for the collectors to trace).
///
///   T ::= Int | T1 → T2 | T1 × T2
///   e ::= n | x | λx:T.e | fix f(x:T):T.e | e1 e2 | (e1, e2)
///       | fst e | snd e | let x = e1 in e2 | e1 ⊕ e2
///       | if0 e then e1 else e2
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_LAMBDA_AST_H
#define SCAV_LAMBDA_AST_H

#include "support/Arena.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <string_view>

namespace scav::lambda {

using scav::Symbol;

enum class TypeKind { Int, Arrow, Prod };

class Type {
public:
  TypeKind kind() const { return K; }
  bool is(TypeKind Which) const { return K == Which; }

  const Type *from() const {
    assert(K == TypeKind::Arrow && "not an arrow");
    return A;
  }
  const Type *to() const {
    assert(K == TypeKind::Arrow && "not an arrow");
    return B;
  }
  const Type *left() const {
    assert(K == TypeKind::Prod && "not a product");
    return A;
  }
  const Type *right() const {
    assert(K == TypeKind::Prod && "not a product");
    return B;
  }

private:
  friend class LambdaContext;
  Type(TypeKind K) : K(K) {}
  TypeKind K;
  const Type *A = nullptr;
  const Type *B = nullptr;
};

enum class PrimOp { Add, Sub, Mul, Le };

enum class ExprKind {
  Int,
  Var,
  Lam,
  Fix,
  App,
  Pair,
  Fst,
  Snd,
  Let,
  Prim,
  If0,
};

class Expr {
public:
  ExprKind kind() const { return K; }
  bool is(ExprKind Which) const { return K == Which; }

  int64_t intValue() const {
    assert(K == ExprKind::Int && "not an int literal");
    return N;
  }

  /// Var: x. Lam: the parameter. Fix: the function name (param in var2()).
  /// Let: the bound variable.
  Symbol var() const { return X1; }
  /// Fix: the parameter name.
  Symbol var2() const { return X2; }

  /// Lam/Fix: parameter type. Fix: result type in annot2().
  const Type *annot() const { return T1; }
  const Type *annot2() const { return T2; }

  /// Sub-expressions: Lam/Fix/Fst/Snd: E1. App/Pair/Let/Prim: E1, E2.
  /// If0: E1 (scrutinee), E2 (zero), E3 (nonzero).
  const Expr *sub1() const { return E1; }
  const Expr *sub2() const { return E2; }
  const Expr *sub3() const { return E3; }

  PrimOp primOp() const {
    assert(K == ExprKind::Prim && "not a primitive");
    return P;
  }

private:
  friend class LambdaContext;
  Expr(ExprKind K) : K(K) {}
  ExprKind K;
  int64_t N = 0;
  Symbol X1;
  Symbol X2;
  const Type *T1 = nullptr;
  const Type *T2 = nullptr;
  const Expr *E1 = nullptr;
  const Expr *E2 = nullptr;
  const Expr *E3 = nullptr;
  PrimOp P = PrimOp::Add;
};

/// Owns the AST nodes of one source program. The symbol table is external
/// and shared across the whole pipeline (lambda → cps → clos → gc), so
/// variable names survive every translation.
class LambdaContext {
public:
  explicit LambdaContext(SymbolTable &Syms) : Syms(Syms) {
    IntTy = Alloc.create<Type>(Type(TypeKind::Int));
  }
  LambdaContext(const LambdaContext &) = delete;
  LambdaContext &operator=(const LambdaContext &) = delete;

  SymbolTable &symbols() { return Syms; }
  Symbol intern(std::string_view S) { return Syms.intern(S); }
  Symbol fresh(std::string_view S) { return Syms.fresh(S); }
  std::string_view name(Symbol S) const { return Syms.name(S); }

  const Type *tyInt() const { return IntTy; }
  const Type *tyArrow(const Type *From, const Type *To) {
    Type *T = Alloc.create<Type>(Type(TypeKind::Arrow));
    T->A = From;
    T->B = To;
    return T;
  }
  const Type *tyProd(const Type *L, const Type *R) {
    Type *T = Alloc.create<Type>(Type(TypeKind::Prod));
    T->A = L;
    T->B = R;
    return T;
  }

  const Expr *intLit(int64_t N) {
    Expr *E = alloc(ExprKind::Int);
    E->N = N;
    return E;
  }
  const Expr *var(Symbol S) {
    Expr *E = alloc(ExprKind::Var);
    E->X1 = S;
    return E;
  }
  const Expr *lam(Symbol X, const Type *T, const Expr *Body) {
    Expr *E = alloc(ExprKind::Lam);
    E->X1 = X;
    E->T1 = T;
    E->E1 = Body;
    return E;
  }
  const Expr *fix(Symbol F, Symbol X, const Type *ParamTy, const Type *RetTy,
                  const Expr *Body) {
    Expr *E = alloc(ExprKind::Fix);
    E->X1 = F;
    E->X2 = X;
    E->T1 = ParamTy;
    E->T2 = RetTy;
    E->E1 = Body;
    return E;
  }
  const Expr *app(const Expr *Fun, const Expr *Arg) {
    Expr *E = alloc(ExprKind::App);
    E->E1 = Fun;
    E->E2 = Arg;
    return E;
  }
  const Expr *pair(const Expr *L, const Expr *R) {
    Expr *E = alloc(ExprKind::Pair);
    E->E1 = L;
    E->E2 = R;
    return E;
  }
  const Expr *fst(const Expr *P) {
    Expr *E = alloc(ExprKind::Fst);
    E->E1 = P;
    return E;
  }
  const Expr *snd(const Expr *P) {
    Expr *E = alloc(ExprKind::Snd);
    E->E1 = P;
    return E;
  }
  const Expr *let(Symbol X, const Expr *Bound, const Expr *Body) {
    Expr *E = alloc(ExprKind::Let);
    E->X1 = X;
    E->E1 = Bound;
    E->E2 = Body;
    return E;
  }
  const Expr *prim(PrimOp P, const Expr *L, const Expr *R) {
    Expr *E = alloc(ExprKind::Prim);
    E->P = P;
    E->E1 = L;
    E->E2 = R;
    return E;
  }
  const Expr *if0(const Expr *Scrut, const Expr *Zero, const Expr *NonZero) {
    Expr *E = alloc(ExprKind::If0);
    E->E1 = Scrut;
    E->E2 = Zero;
    E->E3 = NonZero;
    return E;
  }

private:
  Expr *alloc(ExprKind K) { return Alloc.create<Expr>(Expr(K)); }

  Arena Alloc;
  SymbolTable &Syms;
  const Type *IntTy;
};

} // namespace scav::lambda

#endif // SCAV_LAMBDA_AST_H
