//===- cps/Support.cpp - CPS typechecker, evaluator, printer ---------------===//

#include "cps/Cps.h"

using namespace scav;
using namespace scav::cps;

//===----------------------------------------------------------------------===//
// Typechecker
//===----------------------------------------------------------------------===//

bool scav::cps::typeEqual(const Type *A, const Type *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Int:
    return true;
  case TypeKind::Prod:
    return typeEqual(A->left(), B->left()) &&
           typeEqual(A->right(), B->right());
  case TypeKind::Code: {
    if (A->params().size() != B->params().size())
      return false;
    for (size_t I = 0, E = A->params().size(); I != E; ++I)
      if (!typeEqual(A->params()[I], B->params()[I]))
        return false;
    return true;
  }
  }
  return false;
}

const Type *scav::cps::typeOfVal(CpsContext &C, const Val *V,
                                 const TypeEnv &Env, DiagEngine &Diags) {
  switch (V->kind()) {
  case ValKind::Int:
    return C.tyInt();
  case ValKind::Var: {
    auto It = Env.find(V->var());
    if (It == Env.end()) {
      Diags.error("unbound CPS variable " + std::string(C.name(V->var())));
      return nullptr;
    }
    return It->second;
  }
  case ValKind::Lam: {
    const Type *Ty = C.tyCode(V->paramTypes());
    TypeEnv Inner = Env;
    if (V->self().isValid())
      Inner[V->self()] = Ty;
    for (size_t I = 0, E = V->params().size(); I != E; ++I)
      Inner[V->params()[I]] = V->paramTypes()[I];
    if (!checkExp(C, V->body(), Inner, Diags))
      return nullptr;
    return Ty;
  }
  }
  return nullptr;
}

bool scav::cps::checkExp(CpsContext &C, const Exp *E, const TypeEnv &Env,
                         DiagEngine &Diags) {
  auto Fail = [&](const std::string &Msg) {
    Diags.error(Msg);
    return false;
  };

  switch (E->kind()) {
  case ExpKind::LetVal: {
    const Type *T = typeOfVal(C, E->val1(), Env, Diags);
    if (!T)
      return false;
    TypeEnv Inner = Env;
    Inner[E->binder()] = T;
    return checkExp(C, E->sub1(), Inner, Diags);
  }
  case ExpKind::LetPair: {
    const Type *L = typeOfVal(C, E->val1(), Env, Diags);
    const Type *R = typeOfVal(C, E->val2(), Env, Diags);
    if (!L || !R)
      return false;
    TypeEnv Inner = Env;
    Inner[E->binder()] = C.tyProd(L, R);
    return checkExp(C, E->sub1(), Inner, Diags);
  }
  case ExpKind::LetProj1:
  case ExpKind::LetProj2: {
    const Type *P = typeOfVal(C, E->val1(), Env, Diags);
    if (!P)
      return false;
    if (!P->is(TypeKind::Prod))
      return Fail("CPS projection from non-pair");
    TypeEnv Inner = Env;
    Inner[E->binder()] =
        E->is(ExpKind::LetProj1) ? P->left() : P->right();
    return checkExp(C, E->sub1(), Inner, Diags);
  }
  case ExpKind::LetPrim: {
    const Type *L = typeOfVal(C, E->val1(), Env, Diags);
    const Type *R = typeOfVal(C, E->val2(), Env, Diags);
    if (!L || !R)
      return false;
    if (!L->is(TypeKind::Int) || !R->is(TypeKind::Int))
      return Fail("CPS primitive on non-integers");
    TypeEnv Inner = Env;
    Inner[E->binder()] = C.tyInt();
    return checkExp(C, E->sub1(), Inner, Diags);
  }
  case ExpKind::App: {
    const Type *F = typeOfVal(C, E->val1(), Env, Diags);
    if (!F)
      return false;
    if (!F->is(TypeKind::Code))
      return Fail("CPS application of non-code value");
    if (F->params().size() != E->appArgs().size())
      return Fail("CPS application arity mismatch");
    for (size_t I = 0, N = E->appArgs().size(); I != N; ++I) {
      const Type *A = typeOfVal(C, E->appArgs()[I], Env, Diags);
      if (!A)
        return false;
      if (!typeEqual(A, F->params()[I]))
        return Fail("CPS application argument type mismatch");
    }
    return true;
  }
  case ExpKind::If0: {
    const Type *S = typeOfVal(C, E->val1(), Env, Diags);
    if (!S)
      return false;
    if (!S->is(TypeKind::Int))
      return Fail("CPS if0 scrutinee must be Int");
    return checkExp(C, E->sub1(), Env, Diags) &&
           checkExp(C, E->sub2(), Env, Diags);
  }
  case ExpKind::Halt: {
    const Type *V = typeOfVal(C, E->val1(), Env, Diags);
    if (!V)
      return false;
    if (!V->is(TypeKind::Int))
      return Fail("CPS halt value must be Int");
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

namespace {

struct RtVal;
using RtRef = std::shared_ptr<RtVal>;

struct RtVal {
  enum class Kind { Int, Pair, Closure } K;
  int64_t N = 0;
  RtRef A, B;
  const Val *Lam = nullptr;
  std::map<Symbol, RtRef> Env;
};

RtRef mkInt(int64_t N) {
  auto V = std::make_shared<RtVal>();
  V->K = RtVal::Kind::Int;
  V->N = N;
  return V;
}

} // namespace

CpsEvalResult scav::cps::evaluate(const Exp *Start, uint64_t Fuel) {
  const Exp *E = Start;
  std::map<Symbol, RtRef> Env;
  CpsEvalResult Res;

  auto Fail = [&](const std::string &Msg) {
    Res.Ok = false;
    Res.Error = Msg;
    return Res;
  };

  auto Atom = [&](const Val *V) -> RtRef {
    switch (V->kind()) {
    case ValKind::Int:
      return mkInt(V->intValue());
    case ValKind::Var: {
      auto It = Env.find(V->var());
      return It == Env.end() ? nullptr : It->second;
    }
    case ValKind::Lam: {
      auto C = std::make_shared<RtVal>();
      C->K = RtVal::Kind::Closure;
      C->Lam = V;
      C->Env = Env;
      return C;
    }
    }
    return nullptr;
  };

  for (uint64_t Step = 0;; ++Step) {
    if (Step > Fuel)
      return Fail("out of fuel");
    ++Res.Steps;
    switch (E->kind()) {
    case ExpKind::LetVal: {
      RtRef V = Atom(E->val1());
      if (!V)
        return Fail("unbound variable");
      Env[E->binder()] = V;
      E = E->sub1();
      break;
    }
    case ExpKind::LetPair: {
      RtRef L = Atom(E->val1()), R = Atom(E->val2());
      if (!L || !R)
        return Fail("unbound variable");
      auto P = std::make_shared<RtVal>();
      P->K = RtVal::Kind::Pair;
      P->A = L;
      P->B = R;
      Env[E->binder()] = P;
      E = E->sub1();
      break;
    }
    case ExpKind::LetProj1:
    case ExpKind::LetProj2: {
      RtRef P = Atom(E->val1());
      if (!P || P->K != RtVal::Kind::Pair)
        return Fail("projection from non-pair");
      Env[E->binder()] = E->is(ExpKind::LetProj1) ? P->A : P->B;
      E = E->sub1();
      break;
    }
    case ExpKind::LetPrim: {
      RtRef L = Atom(E->val1()), R = Atom(E->val2());
      if (!L || !R || L->K != RtVal::Kind::Int || R->K != RtVal::Kind::Int)
        return Fail("primitive on non-integers");
      int64_t N = 0;
      switch (E->primOp()) {
      case lambda::PrimOp::Add:
        N = L->N + R->N;
        break;
      case lambda::PrimOp::Sub:
        N = L->N - R->N;
        break;
      case lambda::PrimOp::Mul:
        N = L->N * R->N;
        break;
      case lambda::PrimOp::Le:
        N = L->N <= R->N ? 1 : 0;
        break;
      }
      Env[E->binder()] = mkInt(N);
      E = E->sub1();
      break;
    }
    case ExpKind::App: {
      RtRef F = Atom(E->val1());
      if (!F || F->K != RtVal::Kind::Closure)
        return Fail("application of non-closure");
      if (F->Lam->params().size() != E->appArgs().size())
        return Fail("application arity mismatch");
      std::vector<RtRef> Args;
      for (const Val *A : E->appArgs()) {
        RtRef V = Atom(A);
        if (!V)
          return Fail("unbound argument");
        Args.push_back(V);
      }
      std::map<Symbol, RtRef> NewEnv = F->Env;
      if (F->Lam->self().isValid())
        NewEnv[F->Lam->self()] = F;
      for (size_t I = 0, N = Args.size(); I != N; ++I)
        NewEnv[F->Lam->params()[I]] = Args[I];
      Env = std::move(NewEnv);
      E = F->Lam->body();
      break;
    }
    case ExpKind::If0: {
      RtRef S = Atom(E->val1());
      if (!S || S->K != RtVal::Kind::Int)
        return Fail("if0 of non-integer");
      E = S->N == 0 ? E->sub1() : E->sub2();
      break;
    }
    case ExpKind::Halt: {
      RtRef V = Atom(E->val1());
      if (!V || V->K != RtVal::Kind::Int)
        return Fail("halt of non-integer");
      Res.Ok = true;
      Res.Value = V->N;
      return Res;
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

std::string scav::cps::printType(const CpsContext &C, const Type *T) {
  switch (T->kind()) {
  case TypeKind::Int:
    return "Int";
  case TypeKind::Prod:
    return "(* " + printType(C, T->left()) + " " + printType(C, T->right()) +
           ")";
  case TypeKind::Code: {
    std::string Out = "((";
    for (size_t I = 0, E = T->params().size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += printType(C, T->params()[I]);
    }
    return Out + ") -> 0)";
  }
  }
  return "?";
}

namespace {

std::string printVal(const CpsContext &C, const Val *V) {
  switch (V->kind()) {
  case ValKind::Int:
    return std::to_string(V->intValue());
  case ValKind::Var:
    return std::string(C.name(V->var()));
  case ValKind::Lam: {
    std::string Out = "(lam";
    if (V->self().isValid())
      Out += "[" + std::string(C.name(V->self())) + "]";
    Out += " (";
    for (size_t I = 0, E = V->params().size(); I != E; ++I) {
      if (I)
        Out += " ";
      Out += std::string(C.name(V->params()[I])) + ":" +
             printType(C, V->paramTypes()[I]);
    }
    return Out + ") " + printExp(C, V->body()) + ")";
  }
  }
  return "?";
}

} // namespace

std::string scav::cps::printExp(const CpsContext &C, const Exp *E) {
  switch (E->kind()) {
  case ExpKind::LetVal:
    return "(let " + std::string(C.name(E->binder())) + " " +
           printVal(C, E->val1()) + " " + printExp(C, E->sub1()) + ")";
  case ExpKind::LetPair:
    return "(letpair " + std::string(C.name(E->binder())) + " " +
           printVal(C, E->val1()) + " " + printVal(C, E->val2()) + " " +
           printExp(C, E->sub1()) + ")";
  case ExpKind::LetProj1:
  case ExpKind::LetProj2:
    return std::string("(let") +
           (E->is(ExpKind::LetProj1) ? "fst " : "snd ") +
           std::string(C.name(E->binder())) + " " + printVal(C, E->val1()) +
           " " + printExp(C, E->sub1()) + ")";
  case ExpKind::LetPrim:
    return "(letprim " + std::string(C.name(E->binder())) + " " +
           printVal(C, E->val1()) + " " + printVal(C, E->val2()) + " " +
           printExp(C, E->sub1()) + ")";
  case ExpKind::App: {
    std::string Out = "(" + printVal(C, E->val1());
    for (const Val *A : E->appArgs())
      Out += " " + printVal(C, A);
    return Out + ")";
  }
  case ExpKind::If0:
    return "(if0 " + printVal(C, E->val1()) + " " + printExp(C, E->sub1()) +
           " " + printExp(C, E->sub2()) + ")";
  case ExpKind::Halt:
    return "(halt " + printVal(C, E->val1()) + ")";
  }
  return "?";
}
