//===- cps/Convert.cpp - CPS conversion from the source STLC ---------------===//
///
/// \file
/// Standard call-by-value CPS conversion [Danvy–Filinski, §3 of the paper].
/// The converter is written with meta-continuations: convert(e, κ) produces
/// CPS code that computes e and hands the resulting atom to κ. Reified
/// continuations are created at applications and as if0 join points.
///
//===----------------------------------------------------------------------===//

#include "cps/Cps.h"

#include <functional>

using namespace scav;
using namespace scav::cps;

const Type *scav::cps::cpsType(CpsContext &C, const lambda::Type *T) {
  switch (T->kind()) {
  case lambda::TypeKind::Int:
    return C.tyInt();
  case lambda::TypeKind::Prod:
    return C.tyProd(cpsType(C, T->left()), cpsType(C, T->right()));
  case lambda::TypeKind::Arrow: {
    const Type *Arg = cpsType(C, T->from());
    const Type *Ret = cpsType(C, T->to());
    const Type *Kont = C.tyCode({Ret});
    return C.tyCode({Arg, Kont});
  }
  }
  return nullptr;
}

namespace {

using lambda::Expr;
using lambda::ExprKind;
using lambda::LambdaContext;

/// The meta-continuation: given an atom and its source type, produce the
/// rest of the CPS program.
using MetaK =
    std::function<const Exp *(const Val *, const lambda::Type *)>;

struct Converter {
  LambdaContext &LC;
  CpsContext &C;
  DiagEngine &Diags;
  bool Failed = false;

  const Exp *fail(const std::string &Msg) {
    if (!Failed)
      Diags.error(Msg);
    Failed = true;
    return C.halt(C.intLit(0));
  }

  const Exp *convert(const Expr *E, const lambda::TypeEnv &Env,
                     const MetaK &K) {
    switch (E->kind()) {
    case ExprKind::Int:
      return K(C.intLit(E->intValue()), LC.tyInt());

    case ExprKind::Var: {
      auto It = Env.find(E->var());
      if (It == Env.end())
        return fail("unbound variable during CPS conversion");
      return K(C.var(E->var()), It->second);
    }

    case ExprKind::Lam:
    case ExprKind::Fix: {
      bool IsFix = E->is(ExprKind::Fix);
      Symbol Self = IsFix ? E->var() : Symbol();
      Symbol Param = IsFix ? E->var2() : E->var();
      const lambda::Type *ParamSrcTy = E->annot();
      DiagEngine ScratchDiags;
      lambda::TypeEnv Inner = Env;
      Inner[Param] = ParamSrcTy;
      const lambda::Type *FnTy;
      const lambda::Type *RetTy;
      if (IsFix) {
        FnTy = LC.tyArrow(E->annot(), E->annot2());
        RetTy = E->annot2();
        Inner[Self] = FnTy;
      } else {
        RetTy = lambda::typeOf(LC, E->sub1(), Inner, ScratchDiags);
        if (!RetTy)
          return fail("lambda body does not typecheck");
        FnTy = LC.tyArrow(ParamSrcTy, RetTy);
      }
      Symbol KVar = C.fresh("k");
      const Type *KontTy = C.tyCode({cpsType(C, RetTy)});
      const Exp *Body =
          convert(E->sub1(), Inner,
                  [&](const Val *R, const lambda::Type *) -> const Exp * {
                    return C.app(C.var(KVar), {R});
                  });
      const Val *Lam = C.lam(Self, {Param, KVar},
                             {cpsType(C, ParamSrcTy), KontTy}, Body);
      Symbol F = C.fresh("f");
      return C.letVal(F, Lam, K(C.var(F), FnTy));
    }

    case ExprKind::App: {
      return convert(
          E->sub1(), Env,
          [&, E](const Val *F, const lambda::Type *FTy) -> const Exp * {
            if (!FTy->is(lambda::TypeKind::Arrow))
              return fail("application of non-function");
            const lambda::Type *RetTy = FTy->to();
            return convert(
                E->sub2(), Env,
                [&, F, RetTy](const Val *A,
                              const lambda::Type *) -> const Exp * {
                  // Reify the continuation.
                  Symbol R = C.fresh("r");
                  const Exp *KBody = K(C.var(R), RetTy);
                  const Val *Kont =
                      C.lam(Symbol(), {R}, {cpsType(C, RetTy)}, KBody);
                  Symbol KV = C.fresh("k");
                  return C.letVal(KV, Kont,
                                  C.app(F, {A, C.var(KV)}));
                });
          });
    }

    case ExprKind::Pair: {
      return convert(
          E->sub1(), Env,
          [&, E](const Val *L, const lambda::Type *LTy) -> const Exp * {
            return convert(
                E->sub2(), Env,
                [&, L, LTy](const Val *R,
                            const lambda::Type *RTy) -> const Exp * {
                  Symbol P = C.fresh("p");
                  return C.letPair(P, L, R,
                                   K(C.var(P), LC.tyProd(LTy, RTy)));
                });
          });
    }

    case ExprKind::Fst:
    case ExprKind::Snd: {
      bool First = E->is(ExprKind::Fst);
      return convert(
          E->sub1(), Env,
          [&, First](const Val *P, const lambda::Type *PTy) -> const Exp * {
            if (!PTy->is(lambda::TypeKind::Prod))
              return fail("projection from non-pair");
            Symbol X = C.fresh("x");
            const lambda::Type *Ty = First ? PTy->left() : PTy->right();
            return C.letProj(X, First ? 1 : 2, P, K(C.var(X), Ty));
          });
    }

    case ExprKind::Let: {
      return convert(
          E->sub1(), Env,
          [&, E](const Val *B, const lambda::Type *BTy) -> const Exp * {
            lambda::TypeEnv Inner = Env;
            Inner[E->var()] = BTy;
            return C.letVal(E->var(), B, convert(E->sub2(), Inner, K));
          });
    }

    case ExprKind::Prim: {
      return convert(
          E->sub1(), Env,
          [&, E](const Val *L, const lambda::Type *) -> const Exp * {
            return convert(
                E->sub2(), Env,
                [&, L, E](const Val *R, const lambda::Type *) -> const Exp * {
                  Symbol X = C.fresh("n");
                  return C.letPrim(X, E->primOp(), L, R,
                                   K(C.var(X), LC.tyInt()));
                });
          });
    }

    case ExprKind::If0: {
      return convert(
          E->sub1(), Env,
          [&, E](const Val *S, const lambda::Type *) -> const Exp * {
            // Reify a join continuation so K is emitted once.
            DiagEngine ScratchDiags;
            const lambda::Type *BrTy =
                lambda::typeOf(LC, E->sub2(), Env, ScratchDiags);
            if (!BrTy)
              return fail("if0 branch does not typecheck");
            Symbol R = C.fresh("r");
            const Exp *JBody = K(C.var(R), BrTy);
            const Val *Join =
                C.lam(Symbol(), {R}, {cpsType(C, BrTy)}, JBody);
            Symbol J = C.fresh("j");
            MetaK CallJoin = [&, J](const Val *V,
                                    const lambda::Type *) -> const Exp * {
              return C.app(C.var(J), {V});
            };
            const Exp *Zero = convert(E->sub2(), Env, CallJoin);
            const Exp *NonZero = convert(E->sub3(), Env, CallJoin);
            return C.letVal(J, Join, C.if0(S, Zero, NonZero));
          });
    }
    }
    return fail("unknown expression kind in CPS conversion");
  }
};

} // namespace

const Exp *scav::cps::cpsConvert(lambda::LambdaContext &LC, CpsContext &C,
                                 const lambda::Expr *E, DiagEngine &Diags) {
  const lambda::Type *Ty = lambda::typeCheck(LC, E, Diags);
  if (!Ty)
    return nullptr;
  if (!Ty->is(lambda::TypeKind::Int)) {
    Diags.error("whole program must have type Int (it is halted with)");
    return nullptr;
  }
  Converter Cv{LC, C, Diags};
  lambda::TypeEnv Empty;
  const Exp *Out = Cv.convert(
      E, Empty, [&](const Val *V, const lambda::Type *) -> const Exp * {
        return C.halt(V);
      });
  return Cv.Failed ? nullptr : Out;
}
