//===- cps/Cps.h - The CPS intermediate language ----------------*- C++ -*-===//
///
/// \file
/// The continuation-passing-style intermediate language sitting between the
/// source STLC and λCLOS (§3: "we need to convert the source program into a
/// continuation passing style form"). Functions never return (code type
/// (~T) → 0); the IR is in A-normal form, which makes the subsequent typed
/// closure conversion a local transformation.
///
///   T ::= Int | T1 × T2 | (~T) → 0
///   v ::= n | x | λ(~x:~T).e            (possibly recursive via self name)
///   e ::= let x = v in e | let x = (v1, v2) in e | let x = πi v in e
///       | let x = v1 ⊕ v2 in e | v(~v) | if0 v e1 e2 | halt v
///
//===----------------------------------------------------------------------===//

#ifndef SCAV_CPS_CPS_H
#define SCAV_CPS_CPS_H

#include "lambda/Lambda.h"
#include "support/Arena.h"
#include "support/Symbol.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace scav::cps {

using scav::Symbol;
using scav::SymbolTable;

enum class TypeKind { Int, Prod, Code };

class Type {
public:
  TypeKind kind() const { return K; }
  bool is(TypeKind Which) const { return K == Which; }

  const Type *left() const {
    assert(K == TypeKind::Prod && "not a product");
    return A;
  }
  const Type *right() const {
    assert(K == TypeKind::Prod && "not a product");
    return B;
  }
  const std::vector<const Type *> &params() const {
    assert(K == TypeKind::Code && "not a code type");
    return Params;
  }

private:
  friend class CpsContext;
  Type(TypeKind K) : K(K) {}
  TypeKind K;
  const Type *A = nullptr;
  const Type *B = nullptr;
  std::vector<const Type *> Params;
};

enum class ValKind { Int, Var, Lam };

class Exp;

class Val {
public:
  ValKind kind() const { return K; }
  bool is(ValKind Which) const { return K == Which; }

  int64_t intValue() const {
    assert(K == ValKind::Int && "not an int");
    return N;
  }
  Symbol var() const {
    assert(K == ValKind::Var && "not a variable");
    return X;
  }

  /// Lam: the optional self-reference name (fix); invalid Symbol if none.
  Symbol self() const {
    assert(K == ValKind::Lam && "not a lambda");
    return X;
  }
  const std::vector<Symbol> &params() const {
    assert(K == ValKind::Lam && "not a lambda");
    return Params;
  }
  const std::vector<const Type *> &paramTypes() const {
    assert(K == ValKind::Lam && "not a lambda");
    return ParamTys;
  }
  const Exp *body() const {
    assert(K == ValKind::Lam && "not a lambda");
    return Body;
  }

private:
  friend class CpsContext;
  Val(ValKind K) : K(K) {}
  ValKind K;
  int64_t N = 0;
  Symbol X;
  std::vector<Symbol> Params;
  std::vector<const Type *> ParamTys;
  const Exp *Body = nullptr;
};

enum class ExpKind { LetVal, LetPair, LetProj1, LetProj2, LetPrim, App, If0,
                     Halt };

class Exp {
public:
  ExpKind kind() const { return K; }
  bool is(ExpKind Which) const { return K == Which; }

  Symbol binder() const { return X; }
  const Val *val1() const { return V1; }
  const Val *val2() const { return V2; }
  lambda::PrimOp primOp() const { return P; }
  const Exp *sub1() const { return E1; }
  const Exp *sub2() const { return E2; }
  const std::vector<const Val *> &appArgs() const {
    assert(K == ExpKind::App && "not an application");
    return Args;
  }

private:
  friend class CpsContext;
  Exp(ExpKind K) : K(K) {}
  ExpKind K;
  Symbol X;
  const Val *V1 = nullptr;
  const Val *V2 = nullptr;
  lambda::PrimOp P = lambda::PrimOp::Add;
  const Exp *E1 = nullptr;
  const Exp *E2 = nullptr;
  std::vector<const Val *> Args;
};

class CpsContext {
public:
  explicit CpsContext(SymbolTable &Syms) : Syms(Syms) {
    IntTy = Alloc.create<Type>(Type(TypeKind::Int));
  }
  CpsContext(const CpsContext &) = delete;
  CpsContext &operator=(const CpsContext &) = delete;

  SymbolTable &symbols() { return Syms; }
  Symbol intern(std::string_view S) { return Syms.intern(S); }
  Symbol fresh(std::string_view S) { return Syms.fresh(S); }
  std::string_view name(Symbol S) const { return Syms.name(S); }

  const Type *tyInt() const { return IntTy; }
  const Type *tyProd(const Type *L, const Type *R) {
    Type *T = Alloc.create<Type>(Type(TypeKind::Prod));
    T->A = L;
    T->B = R;
    return T;
  }
  const Type *tyCode(std::vector<const Type *> Params) {
    Type *T = Alloc.create<Type>(Type(TypeKind::Code));
    T->Params = std::move(Params);
    return T;
  }

  const Val *intLit(int64_t N) {
    Val *V = Alloc.create<Val>(Val(ValKind::Int));
    V->N = N;
    return V;
  }
  const Val *var(Symbol S) {
    Val *V = Alloc.create<Val>(Val(ValKind::Var));
    V->X = S;
    return V;
  }
  const Val *lam(Symbol Self, std::vector<Symbol> Params,
                 std::vector<const Type *> ParamTys, const Exp *Body) {
    assert(Params.size() == ParamTys.size() && "mismatched parameters");
    Val *V = Alloc.create<Val>(Val(ValKind::Lam));
    V->X = Self;
    V->Params = std::move(Params);
    V->ParamTys = std::move(ParamTys);
    V->Body = Body;
    return V;
  }

  const Exp *letVal(Symbol X, const Val *V, const Exp *Body) {
    Exp *E = alloc(ExpKind::LetVal);
    E->X = X;
    E->V1 = V;
    E->E1 = Body;
    return E;
  }
  const Exp *letPair(Symbol X, const Val *L, const Val *R, const Exp *Body) {
    Exp *E = alloc(ExpKind::LetPair);
    E->X = X;
    E->V1 = L;
    E->V2 = R;
    E->E1 = Body;
    return E;
  }
  const Exp *letProj(Symbol X, unsigned Index, const Val *V,
                     const Exp *Body) {
    assert((Index == 1 || Index == 2) && "bad projection index");
    Exp *E = alloc(Index == 1 ? ExpKind::LetProj1 : ExpKind::LetProj2);
    E->X = X;
    E->V1 = V;
    E->E1 = Body;
    return E;
  }
  const Exp *letPrim(Symbol X, lambda::PrimOp P, const Val *L, const Val *R,
                     const Exp *Body) {
    Exp *E = alloc(ExpKind::LetPrim);
    E->X = X;
    E->P = P;
    E->V1 = L;
    E->V2 = R;
    E->E1 = Body;
    return E;
  }
  const Exp *app(const Val *F, std::vector<const Val *> Args) {
    Exp *E = alloc(ExpKind::App);
    E->V1 = F;
    E->Args = std::move(Args);
    return E;
  }
  const Exp *if0(const Val *Scrut, const Exp *Zero, const Exp *NonZero) {
    Exp *E = alloc(ExpKind::If0);
    E->V1 = Scrut;
    E->E1 = Zero;
    E->E2 = NonZero;
    return E;
  }
  const Exp *halt(const Val *V) {
    Exp *E = alloc(ExpKind::Halt);
    E->V1 = V;
    return E;
  }

private:
  Exp *alloc(ExpKind K) { return Alloc.create<Exp>(Exp(K)); }

  Arena Alloc;
  SymbolTable &Syms;
  const Type *IntTy;
};

//===----------------------------------------------------------------------===//
// Typechecker
//===----------------------------------------------------------------------===//

bool typeEqual(const Type *A, const Type *B);

using TypeEnv = std::map<Symbol, const Type *>;

const Type *typeOfVal(CpsContext &C, const Val *V, const TypeEnv &Env,
                      DiagEngine &Diags);
bool checkExp(CpsContext &C, const Exp *E, const TypeEnv &Env,
              DiagEngine &Diags);

//===----------------------------------------------------------------------===//
// Evaluator (iterative — CPS programs only make tail calls)
//===----------------------------------------------------------------------===//

struct CpsEvalResult {
  bool Ok = false;
  int64_t Value = 0; ///< CPS programs halt with an integer.
  std::string Error;
  uint64_t Steps = 0;
};

CpsEvalResult evaluate(const Exp *E, uint64_t Fuel = 10'000'000);

//===----------------------------------------------------------------------===//
// CPS conversion from the source language
//===----------------------------------------------------------------------===//

/// The CPS type translation:
///   ⟦Int⟧ = Int,  ⟦T1×T2⟧ = ⟦T1⟧×⟦T2⟧,
///   ⟦T1→T2⟧ = (⟦T1⟧, (⟦T2⟧)→0) → 0.
const Type *cpsType(CpsContext &C, const lambda::Type *T);

/// Converts a closed, well-typed source program of type Int.
/// Returns nullptr + diagnostics on failure.
const Exp *cpsConvert(lambda::LambdaContext &LC, CpsContext &C,
                      const lambda::Expr *E, DiagEngine &Diags);

std::string printType(const CpsContext &C, const Type *T);
std::string printExp(const CpsContext &C, const Exp *E);

} // namespace scav::cps

#endif // SCAV_CPS_CPS_H
